//! Cross-crate property-based tests (proptest) on the invariants the
//! runtime's correctness rests on.

use proptest::prelude::*;

use gnnadvisor_repro::core::compute::{aggregate_grouped, aggregate_reference, Aggregation};
use gnnadvisor_repro::core::memory::organize::organize_shared;
use gnnadvisor_repro::core::workload::group::partition_groups;
use gnnadvisor_repro::graph::generators::{community_graph, erdos_renyi, CommunityParams};
use gnnadvisor_repro::graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_repro::graph::{Csr, EdgeList, Permutation};
use gnnadvisor_repro::tensor::init::random_features;

/// Strategy: a random symmetric graph with 2..=60 nodes.
fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        2usize..=60,
        proptest::collection::vec((0u32..60, 0u32..60), 0..200),
    )
        .prop_map(|(n, edges)| {
            let mut el = EdgeList::new(n);
            for (u, v) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    el.push_undirected(u, v);
                }
            }
            el.dedup();
            el.into_csr().expect("bounded ids are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Group partitioning tiles `col_idx` exactly: every edge appears in
    /// exactly one group, in CSR order, and no group exceeds the size cap.
    #[test]
    fn groups_tile_every_edge(graph in arb_graph(), gs in 1usize..10) {
        let groups = partition_groups(&graph, gs).expect("gs > 0");
        let mut cursor = 0u32;
        for g in &groups {
            prop_assert_eq!(g.start, cursor);
            prop_assert!(!g.is_empty() && g.len() <= gs);
            // The group's node must own this col_idx range.
            let (s, e) = (graph.row_ptr()[g.node as usize], graph.row_ptr()[g.node as usize + 1]);
            prop_assert!(g.start as usize >= s && g.end as usize <= e);
            cursor = g.end;
        }
        prop_assert_eq!(cursor as usize, graph.num_edges());
    }

    /// The renumbering permutation is a bijection that preserves the edge
    /// multiset (checked via degree sequence and edge count).
    #[test]
    fn renumbering_is_a_bijection(seed in 0u64..50) {
        let params = CommunityParams {
            num_nodes: 120,
            num_edges: 1200,
            mean_community: 20,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        };
        let (graph, _) = community_graph(&params, seed).expect("valid params");
        let r = renumber(&graph, &RenumberConfig::default()).expect("renumber runs");
        // Bijection: inverse composes to identity.
        prop_assert!(r.permutation.then(&r.permutation.inverse()).expect("same length").is_identity());
        let p = graph.permute(&r.permutation).expect("valid");
        prop_assert_eq!(p.num_edges(), graph.num_edges());
        let mut before: Vec<usize> = (0..graph.num_nodes() as u32).map(|v| graph.degree(v)).collect();
        let mut after: Vec<usize> = (0..p.num_nodes() as u32).map(|v| p.degree(v)).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    /// Algorithm 1 invariants for any partition and block shape: one leader
    /// per node-run per block, slot shared exactly by one node per block,
    /// and slot count bounded by groups-per-block.
    #[test]
    fn algorithm1_invariants(graph in arb_graph(), gs in 1usize..6, gpb in 1usize..20) {
        let groups = partition_groups(&graph, gs).expect("gs > 0");
        let layout = organize_shared(&groups, gpb);
        prop_assert!(layout.max_slots as usize <= gpb.max(1));
        for (b, chunk) in groups.chunks(gpb).enumerate() {
            let base = b * gpb;
            let mut slot_owner: std::collections::HashMap<u32, u32> = Default::default();
            let mut prev = None;
            for (i, g) in chunk.iter().enumerate() {
                let idx = base + i;
                prop_assert_eq!(layout.leader[idx], prev != Some(g.node));
                let slot = layout.shared_addr[idx];
                match slot_owner.get(&slot) {
                    Some(&owner) => prop_assert_eq!(owner, g.node),
                    None => { slot_owner.insert(slot, g.node); }
                }
                prev = Some(g.node);
            }
        }
    }

    /// Grouped (leader-scheme) execution computes exactly the sequential
    /// reference for every aggregation operator.
    #[test]
    fn grouped_aggregation_matches_reference(graph in arb_graph(), gs in 1usize..8, dim in 1usize..12) {
        let features = random_features(graph.num_nodes(), dim, 99);
        let groups = partition_groups(&graph, gs).expect("gs > 0");
        for op in [Aggregation::Sum, Aggregation::GcnNorm, Aggregation::Mean] {
            let reference = aggregate_reference(&graph, &features, op);
            let grouped = aggregate_grouped(&graph, &features, &groups, op);
            prop_assert!(reference.max_abs_diff(&grouped) < 1e-4);
        }
    }

    /// Aggregation is equivariant under renumbering: permute-then-aggregate
    /// equals aggregate-then-permute.
    #[test]
    fn aggregation_commutes_with_renumbering(seed in 0u64..30, dim in 1usize..8) {
        let graph = erdos_renyi(40, 120, seed).expect("valid");
        let features = random_features(40, dim, seed);
        let r = renumber(&graph, &RenumberConfig::default()).expect("runs");
        let pgraph = graph.permute(&r.permutation).expect("valid");
        let pfeat_vec = r.permutation.permute_rows(features.as_slice(), dim);
        let pfeat = gnnadvisor_repro::tensor::Matrix::from_vec(40, dim, pfeat_vec).expect("shape");

        let direct = aggregate_reference(&graph, &features, Aggregation::Sum);
        let permuted = aggregate_reference(&pgraph, &pfeat, Aggregation::Sum);
        // Map direct output through the permutation and compare.
        let mapped_vec = r.permutation.permute_rows(direct.as_slice(), dim);
        let mapped = gnnadvisor_repro::tensor::Matrix::from_vec(40, dim, mapped_vec).expect("shape");
        prop_assert!(mapped.max_abs_diff(&permuted) < 1e-4);
    }

    /// Permutation round-trip on matrices: applying a permutation then its
    /// inverse restores the original rows.
    #[test]
    fn permutation_roundtrip_on_rows(n in 1usize..40, dim in 1usize..6, seed in 0u64..20) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let perm = Permutation::from_order(order).expect("valid");
        let data: Vec<f32> = (0..n * dim).map(|i| i as f32).collect();
        let there = perm.permute_rows(&data, dim);
        let back = perm.inverse().permute_rows(&there, dim);
        prop_assert_eq!(back, data);
    }
}
