//! End-to-end integration: full GNN forward passes across dataset types,
//! frameworks, and devices.

use gnnadvisor_repro::core::frameworks::{aggregate_with, Framework};
use gnnadvisor_repro::core::input::AggOrder;
use gnnadvisor_repro::core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_repro::datasets::{table1_by_name, DatasetType};
use gnnadvisor_repro::gpu::{Engine, GpuSpec};
use gnnadvisor_repro::models::{Gcn, Gin, GraphSage, ModelExec};
use gnnadvisor_repro::tensor::init::random_features;

/// A small-cache spec proportional to the test scale, mirroring the bench
/// harness methodology.
fn spec() -> GpuSpec {
    let mut s = GpuSpec::quadro_p6000();
    s.l2_bytes = 96 * 1024;
    s
}

fn advisor_for(
    ds: &gnnadvisor_repro::datasets::Dataset,
    order: AggOrder,
    hidden: usize,
) -> Advisor {
    Advisor::new(
        &ds.graph,
        ds.feat_dim,
        hidden,
        ds.num_classes,
        order,
        AdvisorConfig {
            spec: spec(),
            ..Default::default()
        },
    )
    .expect("advisor builds")
}

#[test]
fn gcn_runs_on_every_dataset_type() {
    for name in ["Cora", "PROTEINS_full", "artist"] {
        let ds = table1_by_name(name)
            .expect("present")
            .generate(0.02)
            .expect("generates");
        let advisor = advisor_for(&ds, AggOrder::UpdateThenAggregate, 16);
        let engine = Engine::new(spec());
        let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 1);
        let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
        let model = Gcn::paper_default(ds.feat_dim, ds.num_classes, 0);
        let r = model.forward(&exec, &features).expect("forward runs");
        assert_eq!(
            r.output.shape(),
            (ds.graph.num_nodes(), ds.num_classes),
            "{name}"
        );
        assert!(r.metrics.total_ms() > 0.0, "{name}");
    }
}

#[test]
fn gin_and_sage_run_end_to_end() {
    let ds = table1_by_name("PPI")
        .expect("present")
        .generate(0.02)
        .expect("generates");
    let engine = Engine::new(spec());
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 2);

    let gin_adv = advisor_for(&ds, AggOrder::AggregateThenUpdate, 64);
    let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&gin_adv));
    let gin = Gin::paper_default(ds.feat_dim, ds.num_classes, 0);
    let r = gin.forward(&exec, &features).expect("GIN runs");
    assert_eq!(r.output.cols(), ds.num_classes);

    let sage_adv = advisor_for(&ds, AggOrder::UpdateThenAggregate, 16);
    let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&sage_adv));
    let sage = GraphSage::paper_default(ds.feat_dim, ds.num_classes, 0);
    let r = sage.forward(&exec, &features).expect("GraphSage runs");
    assert_eq!(r.output.cols(), ds.num_classes);
}

#[test]
fn model_outputs_are_framework_invariant() {
    // The execution strategy changes cost, never numerics.
    let ds = table1_by_name("Cora")
        .expect("present")
        .generate(0.05)
        .expect("generates");
    let engine = Engine::new(spec());
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 3);
    let model = Gcn::paper_default(ds.feat_dim, ds.num_classes, 9);
    let advisor = advisor_for(&ds, AggOrder::UpdateThenAggregate, 16);

    let mut outputs = Vec::new();
    for (fw, adv) in [
        (Framework::GnnAdvisor, Some(&advisor)),
        (Framework::Dgl, None),
        (Framework::Pyg, None),
        (Framework::EdgeCentric, None),
    ] {
        let exec = ModelExec::new(&engine, &ds.graph, fw, adv);
        outputs.push(model.forward(&exec, &features).expect("runs").output);
    }
    for pair in outputs.windows(2) {
        assert!(pair[0].max_abs_diff(&pair[1]) < 1e-5);
    }
}

#[test]
fn advisor_beats_all_baselines_on_type3_aggregation() {
    let ds = table1_by_name("soc-BlogCatalog")
        .expect("present")
        .generate(0.03)
        .expect("generates");
    let advisor = advisor_for(&ds, AggOrder::UpdateThenAggregate, 16);
    let engine = Engine::new(spec());
    let ours = aggregate_with(
        Framework::GnnAdvisor,
        &engine,
        &ds.graph,
        16,
        Some(&advisor),
    )
    .expect("runs")
    .total_ms();
    for fw in [
        Framework::Dgl,
        Framework::Pyg,
        Framework::Gunrock,
        Framework::NodeCentric,
        Framework::EdgeCentric,
    ] {
        let theirs = aggregate_with(fw, &engine, &ds.graph, 16, None)
            .expect("runs")
            .total_ms();
        assert!(
            ours < theirs,
            "advisor {ours:.4} ms must beat {} at {theirs:.4} ms",
            fw.name()
        );
    }
}

#[test]
fn end_to_end_is_deterministic() {
    let ds = table1_by_name("Citeseer")
        .expect("present")
        .generate(0.05)
        .expect("generates");
    let engine = Engine::new(spec());
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 4);
    let run = || {
        let advisor = advisor_for(&ds, AggOrder::UpdateThenAggregate, 16);
        let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
        Gcn::paper_default(ds.feat_dim, ds.num_classes, 5)
            .forward(&exec, &features)
            .expect("runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.output, b.output);
    assert_eq!(a.metrics, b.metrics);
}

#[test]
fn v100_outruns_p6000_end_to_end() {
    let ds = table1_by_name("artist")
        .expect("present")
        .generate(0.02)
        .expect("generates");
    let mut times = Vec::new();
    for dev in [GpuSpec::quadro_p6000(), GpuSpec::tesla_v100()] {
        let advisor = Advisor::new(
            &ds.graph,
            ds.feat_dim,
            16,
            ds.num_classes,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig {
                spec: dev.clone(),
                ..Default::default()
            },
        )
        .expect("builds");
        let engine = Engine::new(dev);
        let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 6);
        let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
        let r = Gcn::paper_default(ds.feat_dim, ds.num_classes, 0)
            .forward(&exec, &features)
            .expect("runs");
        times.push(r.metrics.total_ms());
    }
    assert!(
        times[1] < times[0],
        "V100 {} ms vs P6000 {} ms",
        times[1],
        times[0]
    );
}

#[test]
fn dataset_types_have_expected_structure() {
    // Type II: block-diagonal, tiny edge spans. Type III: latent community
    // structure that renumbering can exploit.
    let t2 = table1_by_name("OVCAR-8H").expect("present");
    assert_eq!(t2.ty, DatasetType::TypeII);
    let d2 = t2.generate(0.005).expect("generates");
    assert!(d2.graph.mean_edge_span() < 100.0);

    let t3 = table1_by_name("com-amazon").expect("present");
    assert_eq!(t3.ty, DatasetType::TypeIII);
    let d3 = t3.generate(0.01).expect("generates");
    assert!(
        d3.graph.mean_edge_span() > 100.0,
        "latent structure: ids are shuffled"
    );
}
