//! The `gnnadvisor` command-line tool — see `gnnadvisor help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gnnadvisor_repro::cli::dispatch(&args) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
