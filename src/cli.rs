//! Command-line interface logic (see `src/bin/gnnadvisor.rs`).
//!
//! The paper's conclusion promises "a handy tool to accelerate GNNs on
//! GPUs systematically and comprehensively"; this module is that tool's
//! engine. Every command returns its report as a `String` so the logic is
//! unit-testable; the binary just prints it.

use std::sync::Arc;

use gnnadvisor_core::cluster::{
    assign_tenants, simulate_cluster, validate_tenants, AutoscalerConfig, ClusterConfig,
    RouterPolicy, TenantSpec,
};
use gnnadvisor_core::dynamic::{
    generate_updates, simulate_dynamic, DynamicConfig, RenumberPolicy, UpdateStreamConfig,
};
use gnnadvisor_core::frameworks::{aggregate_with, Framework};
use gnnadvisor_core::input::extract;
use gnnadvisor_core::minibatch::HostCostModel;
use gnnadvisor_core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_core::serving::{
    generate_arrivals, generate_mmpp_arrivals, simulate, ArrivalConfig, BatchPolicy, MmppConfig,
    QueuePolicy, RetryPolicy, ServingConfig,
};
use gnnadvisor_core::tuning::estimator::{Estimator, EstimatorConfig};
use gnnadvisor_core::tuning::model;
use gnnadvisor_core::tuning::params::RuntimeParams;
use gnnadvisor_core::tuning::{aggregation_metrics, tune_two_tier, TwoTierConfig};
use gnnadvisor_datasets::{table1_by_name, Dataset};
use gnnadvisor_gpu::{Engine, FaultConfig, FaultPlan, GpuSpec, TraceRecorder};
use gnnadvisor_graph::generators::{
    batched_graph, community_graph, BatchedParams, CommunityParams,
};
use gnnadvisor_graph::io::{load_edge_list, LoadOptions};
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_graph::sample::{SampleConfig, SampleStrategy};
use gnnadvisor_graph::stats::DegreeStats;
use gnnadvisor_models::{
    DynamicGcnExecutor, Gat, Gcn, GcnBatchExecutor, Gin, GraphSage, MiniBatchConfig, ModelExec,
};
use gnnadvisor_tensor::init::random_features;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Table 1 dataset name (mutually exclusive with `edge_list`).
    pub dataset: Option<String>,
    /// Edge-list file path.
    pub edge_list: Option<String>,
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// Model name: gcn | gin | sage | gat.
    pub model: String,
    /// Device: p6000 | v100.
    pub gpu: String,
    /// Feature dimensionality when loading raw edge lists.
    pub feat_dim: usize,
    /// Class count when loading raw edge lists.
    pub num_classes: usize,
    /// Where `profile` writes its chrome://tracing JSON (`None` = don't).
    pub trace_out: Option<String>,
    /// serve-sim: requests in the synthetic arrival trace.
    pub requests: usize,
    /// serve-sim: offered load, requests per second of simulated time.
    pub rate: f64,
    /// serve-sim: dynamic batcher's max batch size.
    pub batch_size: usize,
    /// serve-sim: dynamic batcher's max queueing delay, ms.
    pub max_delay_ms: f64,
    /// serve-sim: admission-queue capacity (arrivals beyond it are shed).
    pub queue_cap: usize,
    /// serve-sim: concurrent simulated streams.
    pub streams: usize,
    /// serve-sim: arrival-trace seed.
    pub seed: u64,
    /// serve-sim: injected fault rate in `[0, 1]` (0 disables faults).
    pub fault_rate: f64,
    /// serve-sim: retries per faulted batch (attempts = retries + 1).
    pub retries: usize,
    /// serve-sim: per-request completion deadline, ms (`None` = none).
    pub deadline_ms: Option<f64>,
    /// serve-cluster: replica engines behind the router.
    pub replicas: usize,
    /// serve-cluster: router policy — round-robin | least-loaded | cost-aware.
    pub router: String,
    /// serve-cluster: tenant roster `NAME:WEIGHT[:DEADLINE_MS],...`
    /// (`None` = one default tenant carrying `deadline_ms`).
    pub tenants: Option<String>,
    /// serve-cluster: autoscaler bounds `MIN:MAX` (`None` = fixed fleet).
    pub autoscale: Option<String>,
    /// serve-cluster: autoscaler queue-depth scale-up watermark.
    pub scale_high: usize,
    /// serve-cluster: autoscaler queue-depth scale-down watermark.
    pub scale_low: usize,
    /// serve-cluster: autoscaler control cadence, ms.
    pub scale_interval_ms: f64,
    /// serve-cluster: optional autoscaler p99 latency watermark, ms.
    pub scale_p99_ms: Option<f64>,
    /// serve-cluster: arrival process — poisson | mmpp.
    pub arrivals: String,
    /// serve-cluster: MMPP burst factor (heavy phase runs this many times
    /// faster than the mean, calm phase as many times slower).
    pub burst: f64,
    /// serve-cluster: MMPP mean phase dwell, ms.
    pub dwell_ms: f64,
    /// serve-cluster: kill one replica mid-run, `REPLICA:MS`.
    pub reset_replica: Option<String>,
    /// serve-dynamic: update-stream length.
    pub updates: usize,
    /// serve-dynamic: mean gap between updates, ms of simulated time.
    pub update_gap_ms: f64,
    /// serve-dynamic: fraction of updates that delete a live edge.
    pub delete_frac: f64,
    /// serve-dynamic: fraction of updates that are node arrivals.
    pub node_frac: f64,
    /// serve-dynamic: edges each arriving node wires into its community.
    pub attach_degree: usize,
    /// serve-dynamic: re-renumbering policy — on | off.
    pub renumber: String,
    /// serve-dynamic: rebuild when the windowed hit-rate sinks below this
    /// fraction of the post-rebuild baseline.
    pub hit_watermark: f64,
    /// serve-dynamic: sliding hit-rate window length, batches.
    pub policy_window: usize,
    /// serve-dynamic: minimum batches between rebuilds.
    pub cooldown: usize,
    /// serve-dynamic: simulated rebuild stall, microseconds per live edge.
    pub rebuild_cost_us: f64,
    /// serve-dynamic: fold the delta overlay into the base CSR after this
    /// many applied updates (0 = only at rebuilds).
    pub compact_every: usize,
    /// tune: tier selection — analytic | two-tier | full.
    pub tier: String,
    /// tune: finalists verified on the engine in two-tier mode.
    pub top_k: usize,
    /// tune: require fast-path candidate scoring to be at least this many
    /// times faster than full simulation (measured; reported on stderr so
    /// stdout stays byte-deterministic).
    pub speed_check: Option<f64>,
    /// train-minibatch: training epochs.
    pub epochs: usize,
    /// train-minibatch: per-hop neighbor fan-outs, comma-separated.
    pub fanout: String,
    /// train-minibatch: hidden layer dimension.
    pub hidden: usize,
    /// train-minibatch: SGD learning rate.
    pub lr: f64,
    /// train-minibatch: sampling strategy — neighbor | layer.
    pub strategy: String,
    /// train-minibatch: layer-wise strategy's shared node budget per hop.
    pub budget: usize,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            dataset: None,
            edge_list: None,
            scale: 0.05,
            model: "gcn".into(),
            gpu: "p6000".into(),
            feat_dim: 96,
            num_classes: 10,
            trace_out: None,
            requests: 64,
            rate: 2_000.0,
            batch_size: 8,
            max_delay_ms: 2.0,
            queue_cap: 64,
            streams: 4,
            seed: 7,
            fault_rate: 0.0,
            retries: 2,
            deadline_ms: None,
            replicas: 2,
            router: "cost-aware".into(),
            tenants: None,
            autoscale: None,
            scale_high: 8,
            scale_low: 1,
            scale_interval_ms: 5.0,
            scale_p99_ms: None,
            arrivals: "poisson".into(),
            burst: 4.0,
            dwell_ms: 5.0,
            reset_replica: None,
            updates: 4_000,
            update_gap_ms: 0.004,
            delete_frac: 0.15,
            node_frac: 0.25,
            attach_degree: 6,
            renumber: "on".into(),
            hit_watermark: 0.98,
            policy_window: 8,
            cooldown: 16,
            rebuild_cost_us: 0.0005,
            compact_every: 64,
            tier: "two-tier".into(),
            top_k: 4,
            speed_check: None,
            epochs: 3,
            fanout: "10,5".into(),
            hidden: 16,
            lr: 0.1,
            strategy: "neighbor".into(),
            budget: 256,
        }
    }
}

/// CLI errors as plain strings (shown to the user verbatim).
pub type CliResult = Result<String, String>;

impl CliOptions {
    /// Parses `--key value` pairs after the subcommand.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let mut need = || {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{key} needs a value"))
            };
            match key.as_str() {
                "--dataset" => opts.dataset = Some(need()?),
                "--edge-list" => opts.edge_list = Some(need()?),
                "--scale" => {
                    opts.scale = need()?
                        .parse()
                        .map_err(|_| "--scale needs a number in (0, 1]".to_string())?
                }
                "--model" => opts.model = need()?.to_lowercase(),
                "--gpu" => opts.gpu = need()?.to_lowercase(),
                "--feat-dim" => {
                    opts.feat_dim = need()?
                        .parse()
                        .map_err(|_| "--feat-dim needs an integer".to_string())?
                }
                "--classes" => {
                    opts.num_classes = need()?
                        .parse()
                        .map_err(|_| "--classes needs an integer".to_string())?
                }
                "--trace-out" => opts.trace_out = Some(need()?),
                "--requests" => {
                    opts.requests = need()?
                        .parse()
                        .map_err(|_| "--requests needs an integer".to_string())?
                }
                "--rate" => {
                    opts.rate = need()?
                        .parse()
                        .map_err(|_| "--rate needs a number (requests per second)".to_string())?
                }
                "--batch-size" => {
                    opts.batch_size = need()?
                        .parse()
                        .map_err(|_| "--batch-size needs an integer".to_string())?
                }
                "--max-delay-ms" => {
                    opts.max_delay_ms = need()?
                        .parse()
                        .map_err(|_| "--max-delay-ms needs a number".to_string())?
                }
                "--queue-cap" => {
                    opts.queue_cap = need()?
                        .parse()
                        .map_err(|_| "--queue-cap needs an integer".to_string())?
                }
                "--streams" => {
                    opts.streams = need()?
                        .parse()
                        .map_err(|_| "--streams needs an integer".to_string())?
                }
                "--seed" => {
                    opts.seed = need()?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_string())?
                }
                "--fault-rate" => {
                    opts.fault_rate = need()?
                        .parse()
                        .map_err(|_| "--fault-rate needs a number in [0, 1]".to_string())?
                }
                "--retries" => {
                    opts.retries = need()?
                        .parse()
                        .map_err(|_| "--retries needs an integer".to_string())?
                }
                "--deadline-ms" => {
                    opts.deadline_ms = Some(
                        need()?
                            .parse()
                            .map_err(|_| "--deadline-ms needs a number".to_string())?,
                    )
                }
                "--replicas" => {
                    opts.replicas = need()?
                        .parse()
                        .map_err(|_| "--replicas needs an integer".to_string())?
                }
                "--router" => opts.router = need()?.to_lowercase(),
                "--tenants" => opts.tenants = Some(need()?),
                "--autoscale" => opts.autoscale = Some(need()?),
                "--scale-high" => {
                    opts.scale_high = need()?
                        .parse()
                        .map_err(|_| "--scale-high needs an integer".to_string())?
                }
                "--scale-low" => {
                    opts.scale_low = need()?
                        .parse()
                        .map_err(|_| "--scale-low needs an integer".to_string())?
                }
                "--scale-interval-ms" => {
                    opts.scale_interval_ms = need()?
                        .parse()
                        .map_err(|_| "--scale-interval-ms needs a number".to_string())?
                }
                "--scale-p99-ms" => {
                    opts.scale_p99_ms = Some(
                        need()?
                            .parse()
                            .map_err(|_| "--scale-p99-ms needs a number".to_string())?,
                    )
                }
                "--arrivals" => opts.arrivals = need()?.to_lowercase(),
                "--burst" => {
                    opts.burst = need()?
                        .parse()
                        .map_err(|_| "--burst needs a number above 1".to_string())?
                }
                "--dwell-ms" => {
                    opts.dwell_ms = need()?
                        .parse()
                        .map_err(|_| "--dwell-ms needs a number".to_string())?
                }
                "--reset-replica" => opts.reset_replica = Some(need()?),
                "--updates" => {
                    opts.updates = need()?
                        .parse()
                        .map_err(|_| "--updates needs an integer".to_string())?
                }
                "--update-gap-ms" => {
                    opts.update_gap_ms = need()?
                        .parse()
                        .map_err(|_| "--update-gap-ms needs a number".to_string())?
                }
                "--delete-frac" => {
                    opts.delete_frac = need()?
                        .parse()
                        .map_err(|_| "--delete-frac needs a number in [0, 1]".to_string())?
                }
                "--node-frac" => {
                    opts.node_frac = need()?
                        .parse()
                        .map_err(|_| "--node-frac needs a number in [0, 1]".to_string())?
                }
                "--attach-degree" => {
                    opts.attach_degree = need()?
                        .parse()
                        .map_err(|_| "--attach-degree needs an integer".to_string())?
                }
                "--renumber" => opts.renumber = need()?.to_lowercase(),
                "--hit-watermark" => {
                    opts.hit_watermark = need()?
                        .parse()
                        .map_err(|_| "--hit-watermark needs a number in (0, 1]".to_string())?
                }
                "--policy-window" => {
                    opts.policy_window = need()?
                        .parse()
                        .map_err(|_| "--policy-window needs an integer".to_string())?
                }
                "--cooldown" => {
                    opts.cooldown = need()?
                        .parse()
                        .map_err(|_| "--cooldown needs an integer".to_string())?
                }
                "--rebuild-cost-us" => {
                    opts.rebuild_cost_us = need()?
                        .parse()
                        .map_err(|_| "--rebuild-cost-us needs a number".to_string())?
                }
                "--compact-every" => {
                    opts.compact_every = need()?
                        .parse()
                        .map_err(|_| "--compact-every needs an integer".to_string())?
                }
                "--tier" => opts.tier = need()?.to_lowercase(),
                "--top-k" => {
                    opts.top_k = need()?
                        .parse()
                        .map_err(|_| "--top-k needs an integer".to_string())?
                }
                "--speed-check" => {
                    opts.speed_check = Some(
                        need()?
                            .parse()
                            .map_err(|_| "--speed-check needs a number".to_string())?,
                    )
                }
                "--epochs" => {
                    opts.epochs = need()?
                        .parse()
                        .map_err(|_| "--epochs needs an integer".to_string())?
                }
                "--fanout" => opts.fanout = need()?,
                "--hidden" => {
                    opts.hidden = need()?
                        .parse()
                        .map_err(|_| "--hidden needs an integer".to_string())?
                }
                "--lr" => {
                    opts.lr = need()?
                        .parse()
                        .map_err(|_| "--lr needs a number".to_string())?
                }
                "--strategy" => opts.strategy = need()?.to_lowercase(),
                "--budget" => {
                    opts.budget = need()?
                        .parse()
                        .map_err(|_| "--budget needs an integer".to_string())?
                }
                other => return Err(format!("unknown option {other}")),
            }
        }
        // Range checks up front, so a bad value fails with the CLI's own
        // message instead of a panic deep inside dataset scaling.
        if !(opts.scale.is_finite() && opts.scale > 0.0 && opts.scale <= 1.0) {
            return Err(format!(
                "--scale must be a number in (0, 1], got {}",
                opts.scale
            ));
        }
        if opts.feat_dim == 0 {
            return Err("--feat-dim must be at least 1".to_string());
        }
        if opts.num_classes == 0 {
            return Err("--classes must be at least 1".to_string());
        }
        if !(opts.rate.is_finite() && opts.rate > 0.0) {
            return Err(format!(
                "--rate must be a positive request rate, got {}",
                opts.rate
            ));
        }
        if opts.batch_size == 0 {
            return Err("--batch-size must be at least 1".to_string());
        }
        if opts.queue_cap == 0 {
            return Err("--queue-cap must be at least 1".to_string());
        }
        if opts.streams == 0 {
            return Err("--streams must be at least 1".to_string());
        }
        if !(opts.max_delay_ms.is_finite() && opts.max_delay_ms >= 0.0) {
            return Err(format!(
                "--max-delay-ms must be non-negative, got {}",
                opts.max_delay_ms
            ));
        }
        if !(opts.fault_rate.is_finite() && (0.0..=1.0).contains(&opts.fault_rate)) {
            return Err(format!(
                "--fault-rate must be a number in [0, 1], got {}",
                opts.fault_rate
            ));
        }
        if let Some(d) = opts.deadline_ms {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("--deadline-ms must be positive, got {d}"));
            }
        }
        if opts.replicas == 0 {
            return Err("--replicas must be at least 1".to_string());
        }
        if RouterPolicy::parse(&opts.router).is_none() {
            return Err(format!(
                "--router must be round-robin, least-loaded, or cost-aware, got {}",
                opts.router
            ));
        }
        if let Some(t) = &opts.tenants {
            parse_tenant_specs(t)?;
        }
        if let Some(a) = &opts.autoscale {
            parse_autoscale(a)?;
        }
        if opts.scale_low >= opts.scale_high {
            return Err(format!(
                "--scale-low {} must sit below --scale-high {}",
                opts.scale_low, opts.scale_high
            ));
        }
        if !(opts.scale_interval_ms.is_finite() && opts.scale_interval_ms > 0.0) {
            return Err(format!(
                "--scale-interval-ms must be positive, got {}",
                opts.scale_interval_ms
            ));
        }
        if let Some(p) = opts.scale_p99_ms {
            if !(p.is_finite() && p > 0.0) {
                return Err(format!("--scale-p99-ms must be positive, got {p}"));
            }
        }
        if !matches!(opts.arrivals.as_str(), "poisson" | "mmpp") {
            return Err(format!(
                "--arrivals must be poisson or mmpp, got {}",
                opts.arrivals
            ));
        }
        if !(opts.burst.is_finite() && opts.burst > 1.0) {
            return Err(format!(
                "--burst must be a finite factor above 1, got {}",
                opts.burst
            ));
        }
        if !(opts.dwell_ms.is_finite() && opts.dwell_ms > 0.0) {
            return Err(format!(
                "--dwell-ms must be positive, got {}",
                opts.dwell_ms
            ));
        }
        if let Some(r) = &opts.reset_replica {
            parse_reset(r)?;
        }
        if !(opts.update_gap_ms.is_finite() && opts.update_gap_ms > 0.0) {
            return Err(format!(
                "--update-gap-ms must be positive, got {}",
                opts.update_gap_ms
            ));
        }
        for (name, v) in [
            ("--delete-frac", opts.delete_frac),
            ("--node-frac", opts.node_frac),
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(format!("{name} must be a number in [0, 1], got {v}"));
            }
        }
        if opts.delete_frac + opts.node_frac > 1.0 {
            return Err(format!(
                "--delete-frac {} + --node-frac {} must not exceed 1",
                opts.delete_frac, opts.node_frac
            ));
        }
        if !matches!(opts.renumber.as_str(), "on" | "off") {
            return Err(format!(
                "--renumber must be on or off, got {}",
                opts.renumber
            ));
        }
        if !(opts.hit_watermark.is_finite()
            && opts.hit_watermark > 0.0
            && opts.hit_watermark <= 1.0)
        {
            return Err(format!(
                "--hit-watermark must be a number in (0, 1], got {}",
                opts.hit_watermark
            ));
        }
        if opts.policy_window == 0 {
            return Err("--policy-window must be at least 1".to_string());
        }
        if !(opts.rebuild_cost_us.is_finite() && opts.rebuild_cost_us >= 0.0) {
            return Err(format!(
                "--rebuild-cost-us must be non-negative, got {}",
                opts.rebuild_cost_us
            ));
        }
        if !matches!(opts.tier.as_str(), "analytic" | "two-tier" | "full") {
            return Err(format!(
                "--tier must be analytic, two-tier, or full, got {}",
                opts.tier
            ));
        }
        if opts.top_k == 0 {
            return Err("--top-k must be at least 1".to_string());
        }
        if let Some(r) = opts.speed_check {
            if !(r.is_finite() && r > 0.0) {
                return Err(format!("--speed-check must be a positive ratio, got {r}"));
            }
        }
        if opts.epochs == 0 {
            return Err("--epochs must be at least 1".to_string());
        }
        parse_fanouts(&opts.fanout)?;
        if opts.hidden == 0 {
            return Err("--hidden must be at least 1".to_string());
        }
        if !(opts.lr.is_finite() && opts.lr >= 0.0) {
            return Err(format!(
                "--lr must be a finite non-negative rate, got {}",
                opts.lr
            ));
        }
        if !matches!(opts.strategy.as_str(), "neighbor" | "layer") {
            return Err(format!(
                "--strategy must be neighbor or layer, got {}",
                opts.strategy
            ));
        }
        if opts.budget == 0 {
            return Err("--budget must be at least 1".to_string());
        }
        Ok(opts)
    }

    fn spec(&self) -> Result<GpuSpec, String> {
        match self.gpu.as_str() {
            "p6000" => Ok(GpuSpec::quadro_p6000()),
            "v100" => Ok(GpuSpec::tesla_v100()),
            other => Err(format!("unknown GPU {other}; use p6000 or v100")),
        }
    }

    fn load(&self) -> Result<Dataset, String> {
        if let Some(path) = &self.edge_list {
            let graph = load_edge_list(path, &LoadOptions::default()).map_err(|e| e.to_string())?;
            let spec = gnnadvisor_datasets::DatasetSpec {
                name: "edge-list",
                num_nodes: graph.num_nodes(),
                num_edges: graph.num_edges(),
                feat_dim: self.feat_dim,
                num_classes: self.num_classes,
                ty: gnnadvisor_datasets::DatasetType::TypeIII,
                mean_cluster: 64,
                cluster_cv: 0.3,
            };
            return Ok(Dataset {
                spec,
                scale: 1.0,
                graph,
                feat_dim: self.feat_dim,
                num_classes: self.num_classes,
            });
        }
        let name = self
            .dataset
            .as_deref()
            .ok_or("pass --dataset NAME or --edge-list FILE")?;
        let spec = table1_by_name(name)
            .ok_or_else(|| format!("unknown dataset {name}; see Table 1 for names"))?;
        spec.generate(self.scale).map_err(|e| e.to_string())
    }
}

/// `analyze`: the input extractor's report plus suggested parameters.
pub fn analyze(opts: &CliOptions) -> CliResult {
    let ds = opts.load()?;
    let spec = opts.spec()?;
    let stats = DegreeStats::of(&ds.graph);
    let info = extract(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        model_order(&opts.model)?,
    );
    let decided = model::decide(&info, &spec);
    let r = renumber(&ds.graph, &RenumberConfig::default()).map_err(|e| e.to_string())?;

    // Workload balance: per-thread work before (one thread per node) and
    // after group-based partitioning with the suggested group size.
    let groups = gnnadvisor_core::workload::group::partition_groups(&ds.graph, decided.group_size)
        .map_err(|e| e.to_string())?;
    let grouped_max = groups.iter().map(|g| g.len()).max().unwrap_or(0);
    let grouped_mean = if groups.is_empty() {
        0.0
    } else {
        ds.graph.num_edges() as f64 / groups.len() as f64
    };
    let node_imbalance = stats.max as f64 / stats.mean.max(1e-9);
    let group_imbalance = grouped_max as f64 / grouped_mean.max(1e-9);

    let mut out = String::new();
    out.push_str(&format!(
        "input analysis: {} (scale {})\n\
         nodes {}, directed edges {}, feature dim {}, classes {}\n\
         degree: mean {:.1}, stddev {:.1}, max {} (alpha = {:.3})\n\
         communities: {} found, modularity {:.3}\n\
         mean edge span: {:.0} (renumbered: {:.0})\n\
         workload balance (max/mean per thread): node-centric {:.1}x -> grouped {:.1}x\n\
         suggested params: gs={}, tpb={}, dw={}, shared={}, renumber={}\n",
        ds.spec.name,
        ds.scale,
        info.num_nodes,
        info.num_edges,
        info.feat_dim,
        info.num_classes,
        stats.mean,
        stats.stddev,
        stats.max,
        info.alpha(),
        r.num_communities,
        r.modularity,
        ds.graph.mean_edge_span(),
        ds.graph
            .permute(&r.permutation)
            .map(|g| g.mean_edge_span())
            .unwrap_or(f64::NAN),
        node_imbalance,
        group_imbalance,
        decided.group_size,
        decided.threads_per_block,
        decided.dim_workers,
        decided.use_shared,
        decided.renumber,
    ));
    Ok(out)
}

/// `run`: one model forward pass under GNNAdvisor, with metrics.
pub fn run(opts: &CliOptions) -> CliResult {
    let ds = opts.load()?;
    let spec = opts.spec()?;
    let advisor = Advisor::new(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        model_order(&opts.model)?,
        AdvisorConfig {
            spec: spec.clone(),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let engine = Engine::new(spec);
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 7);
    let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
    let result = forward(&opts.model, &exec, &ds, &features)?;

    let mut limiter_counts: std::collections::BTreeMap<&'static str, usize> = Default::default();
    for k in &result.metrics.kernels {
        *limiter_counts.entry(k.limiter.label()).or_insert(0) += 1;
    }
    let limiters = limiter_counts
        .iter()
        .map(|(l, c)| format!("{c} {l}-bound"))
        .collect::<Vec<_>>()
        .join(", ");
    Ok(format!(
        "{} on {} ({}): {:.4} simulated ms\n\
         kernels: {} ({limiters}), DRAM {:.2} MB, cache hit rate {:.1}%, SM efficiency {:.1}%\n\
         params: {:?}\n",
        opts.model.to_uppercase(),
        ds.spec.name,
        engine.spec().name,
        result.metrics.total_ms(),
        result.metrics.kernels.len(),
        result.metrics.dram_bytes() as f64 / 1e6,
        result.metrics.cache_hit_rate() * 100.0,
        result.metrics.mean_sm_efficiency() * 100.0,
        advisor.params(),
    ))
}

/// `profile`: one forward pass with the trace recorder attached. Prints
/// the phase-attributed cycle breakdown and the flamegraph-style span
/// report; `--trace-out FILE` additionally writes chrome://tracing JSON.
/// Timestamps are simulated cycles, so the output is byte-identical
/// run-to-run and at any `GNNADVISOR_SIM_THREADS`.
pub fn profile(opts: &CliOptions) -> CliResult {
    let ds = opts.load()?;
    let spec = opts.spec()?;
    let tracer = Arc::new(TraceRecorder::new());
    let engine = Engine::builder(spec.clone())
        .tracer(Arc::clone(&tracer))
        .build()
        .map_err(|e| e.to_string())?;
    // The traced engine must drive the advisor too: GNNAdvisor-framework
    // kernels launch on `advisor.engine()`, not the exec's engine.
    let advisor = Advisor::new(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        model_order(&opts.model)?,
        AdvisorConfig {
            spec,
            engine: Some(engine.clone()),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, 7);
    let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
    let result = forward(&opts.model, &exec, &ds, &features)?;

    let mut out = format!(
        "{} on {} ({}): {:.4} simulated ms, {} trace events\n\
         phases: {}\n\n{}",
        opts.model.to_uppercase(),
        ds.spec.name,
        engine.spec().name,
        result.metrics.total_ms(),
        tracer.len(),
        result.metrics.phases.report(),
        tracer.flame_report(),
    );
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, tracer.to_chrome_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!(
            "\nchrome trace written to {path} (load via chrome://tracing or ui.perfetto.dev)\n"
        ));
    }
    Ok(out)
}

/// `compare`: every execution strategy on one aggregation pass.
pub fn compare(opts: &CliOptions) -> CliResult {
    let ds = opts.load()?;
    let spec = opts.spec()?;
    let advisor = Advisor::new(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        model_order(&opts.model)?,
        AdvisorConfig {
            spec: spec.clone(),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let engine = Engine::new(spec);
    let dim = 16;
    let mut out = format!(
        "one aggregation pass at dim {dim} on {} ({} nodes, {} edges):\n",
        ds.spec.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    );
    let mut base = 0.0;
    for fw in [
        Framework::GnnAdvisor,
        Framework::Dgl,
        Framework::Pyg,
        Framework::Gunrock,
        Framework::NodeCentric,
        Framework::EdgeCentric,
    ] {
        let adv = (fw == Framework::GnnAdvisor).then_some(&advisor);
        let m = aggregate_with(fw, &engine, &ds.graph, dim, adv).map_err(|e| e.to_string())?;
        if fw == Framework::GnnAdvisor {
            base = m.total_ms();
        }
        out.push_str(&format!(
            "  {:<14} {:>10.4} ms  ({:>5.2}x)\n",
            fw.name(),
            m.total_ms(),
            m.total_ms() / base.max(1e-12)
        ));
    }
    Ok(out)
}

/// `tune`: the Section 7 Modeling & Estimating pipeline, with tier
/// selection. `two-tier` (the default) explores on the calibrated
/// analytical fast path and engine-verifies only the finalists;
/// `analytic` stops after the fast path; `full` scores every candidate on
/// the event-level simulator. All stdout is derived from simulated or
/// counted quantities, never wall-clock, so the report is byte-identical
/// run-to-run — `--speed-check` prints its (wall-clock) measurement to
/// stderr only.
pub fn tune(opts: &CliOptions) -> CliResult {
    let ds = opts.load()?;
    let spec = opts.spec()?;
    let info = extract(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        model_order(&opts.model)?,
    );
    let decided = model::decide(&info, &spec);
    let dim = info.aggregation_dim();
    let mut out = format!(
        "tuning for {} on {} (tier: {}):\n\
         modeling (Eq. 2-4 grid): gs={}, tpb={}, dw={} (score {:.3e})\n",
        ds.spec.name,
        spec.name,
        opts.tier,
        decided.group_size,
        decided.threads_per_block,
        decided.dim_workers,
        model::estimated_latency(&decided, &info, &spec),
    );

    if opts.tier == "full" {
        if opts.speed_check.is_some() {
            return Err("--speed-check needs --tier two-tier or analytic".to_string());
        }
        let est = Estimator::new(info.clone(), spec.clone(), EstimatorConfig::default());
        let (best, stats) = est.tune_profiled_stats(|p, e| {
            aggregation_metrics(&ds.graph, dim, p, e).map_or(f64::INFINITY, |m| m.time_ms)
        });
        let engine = Engine::new(spec.clone());
        let best_ms = aggregation_metrics(&ds.graph, dim, &best, &engine)
            .map_or(f64::INFINITY, |m| m.time_ms);
        out.push_str(&format!(
            "estimating (full-sim evolutionary): gs={}, tpb={}, dw={} (engine {:.4} ms)\n\
             engine launches: {} distinct candidates (+{} memo hits)\n",
            best.group_size,
            best.threads_per_block,
            best.dim_workers,
            best_ms,
            stats.unique_evals,
            stats.memo_hits,
        ));
        return Ok(out);
    }

    // analytic and two-tier share the probe + calibrate + fast-search
    // front end; analytic just verifies nothing beyond the fast winner.
    let cfg = TwoTierConfig {
        top_k: if opts.tier == "analytic" {
            1
        } else {
            opts.top_k
        },
        ..Default::default()
    };
    let outcome = tune_two_tier(&info, &spec, &cfg, |p, e| {
        aggregation_metrics(&ds.graph, dim, p, e)
    });
    let band_pct = outcome.model.error_band() * 100.0;
    if opts.tier == "analytic" {
        let fast = &outcome.fast_best;
        out.push_str(&format!(
            "estimating (analytic fast path): gs={}, tpb={}, dw={} (predicted {:.3} us)\n\
             calibration band: {:.1}% | fast path: {} unique evals (+{} memo hits) | engine launches: {}\n",
            fast.group_size,
            fast.threads_per_block,
            fast.dim_workers,
            outcome.model.predict_us(fast),
            band_pct,
            outcome.fast_evals,
            outcome.memo_hits,
            outcome.engine_evals,
        ));
    } else {
        out.push_str(&format!(
            "estimating (two-tier): gs={}, tpb={}, dw={} (engine {:.4} ms)\n\
             calibration band: {:.1}% | fast path: {} unique evals (+{} memo hits) | engine launches: {}\n\
             finalists (fast-path rank order):\n",
            outcome.best.group_size,
            outcome.best.threads_per_block,
            outcome.best.dim_workers,
            outcome.best_engine_ms,
            band_pct,
            outcome.fast_evals,
            outcome.memo_hits,
            outcome.engine_evals,
        ));
        for f in &outcome.finalists {
            out.push_str(&format!(
                "  gs={:<3} tpb={:<4} dw={:<2} fast {:>9.3} us  engine {:>8.4} ms{}\n",
                f.params.group_size,
                f.params.threads_per_block,
                f.params.dim_workers,
                f.fast_us,
                f.engine_ms,
                if f.params == outcome.best {
                    "  <- winner"
                } else {
                    ""
                },
            ));
        }
    }

    if let Some(required) = opts.speed_check {
        speed_check(opts, &ds, dim, &spec, &outcome, required)?;
    }
    Ok(out)
}

/// Measures the fast-path vs full-sim per-candidate scoring cost and
/// fails unless the fast path is at least `required` times faster. The
/// measurement is wall-clock, so everything it prints goes to stderr —
/// stdout stays deterministic.
fn speed_check(
    opts: &CliOptions,
    ds: &Dataset,
    dim: usize,
    spec: &GpuSpec,
    outcome: &gnnadvisor_core::tuning::TwoTierOutcome,
    required: f64,
) -> Result<(), String> {
    let mut sample: Vec<RuntimeParams> = outcome.pool.iter().take(3).map(|&(p, _)| p).collect();
    if sample.is_empty() {
        sample.push(outcome.fast_best);
    }
    let engine = Engine::new(spec.clone());
    const REPS: usize = 256;
    let t0 = std::time::Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..REPS {
        for p in &sample {
            sink += outcome.model.predict_us(p);
        }
    }
    std::hint::black_box(sink);
    let fast_per = t0.elapsed().as_secs_f64() / (REPS * sample.len()) as f64;
    let t1 = std::time::Instant::now();
    for p in &sample {
        std::hint::black_box(aggregation_metrics(&ds.graph, dim, p, &engine));
    }
    let full_per = t1.elapsed().as_secs_f64() / sample.len() as f64;
    let ratio = full_per / fast_per.max(1e-12);
    eprintln!(
        "speed-check ({}): fast-path scoring {:.0}x faster than full simulation \
         ({:.3} us vs {:.1} us per candidate; required {}x)",
        opts.tier,
        ratio,
        fast_per * 1e6,
        full_per * 1e6,
        required,
    );
    if ratio < required {
        return Err(format!(
            "speed-check failed: fast path only {ratio:.1}x faster than full simulation \
             (required {required}x)"
        ));
    }
    Ok(())
}

/// `serve-sim`: the multi-stream serving runtime on a synthetic Type II
/// workload. A seeded Poisson arrival trace feeds the bounded admission
/// queue; the dynamic batcher (max-batch / max-delay) coalesces requests
/// into GCN inference batches that round-robin across simulated streams.
/// Everything downstream of the seed is deterministic: the report is
/// byte-identical across runs and across `GNNADVISOR_SIM_THREADS`.
pub fn serve_sim(opts: &CliOptions) -> CliResult {
    let spec = opts.spec()?;
    // A batched Type II dataset (Section 8.1.2): many small independent
    // graphs, the workload class served with mini-batched inference.
    let nodes = ((40_000.0 * opts.scale) as usize).clamp(400, 40_000);
    let (graph, components) = batched_graph(
        &BatchedParams {
            num_nodes: nodes,
            num_edges: nodes * 4,
            mean_graph_size: 40,
            graph_size_cv: 0.4,
        },
        31,
    )
    .map_err(|e| e.to_string())?;
    let mut exec = GcnBatchExecutor::new(&graph, &components, opts.feat_dim, 16, opts.num_classes);
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: opts.requests,
        mean_interarrival_ms: 1000.0 / opts.rate,
        num_components: exec.num_components(),
        seed: opts.seed,
    })
    .map_err(|e| e.to_string())?;
    let serving = ServingConfig {
        streams: opts.streams,
        queue: QueuePolicy {
            capacity: opts.queue_cap,
        },
        batch: BatchPolicy {
            max_batch: opts.batch_size,
            max_delay_ms: opts.max_delay_ms,
        },
        retry: RetryPolicy {
            max_attempts: opts.retries + 1,
            seed: opts.seed,
            ..RetryPolicy::default()
        },
        deadline_ms: opts.deadline_ms,
    };
    let mut builder = Engine::builder(spec);
    if opts.fault_rate > 0.0 {
        // Faults are seeded alongside the arrival trace: the whole chaos
        // run replays bit-for-bit from one --seed.
        let plan = FaultPlan::new(FaultConfig::uniform(opts.fault_rate, opts.seed))
            .map_err(|e| e.to_string())?;
        builder = builder.fault_plan(Arc::new(plan));
    }
    let engine = builder.build().map_err(|e| e.to_string())?;
    let report = simulate(&engine, &arrivals, &serving, &mut exec).map_err(|e| e.to_string())?;
    let deadline = opts
        .deadline_ms
        .map_or("none".to_string(), |d| format!("{d} ms"));
    Ok(format!(
        "serve-sim: {} requests at {} req/s over {} component graphs ({})\n\
         batching: max {} per batch, {} ms max delay, queue capacity {}, {} streams\n\
         reliability: fault rate {}, {} retries, deadline {}\n\n{}",
        opts.requests,
        opts.rate,
        exec.num_components(),
        engine.spec().name,
        opts.batch_size,
        opts.max_delay_ms,
        opts.queue_cap,
        opts.streams,
        opts.fault_rate,
        opts.retries,
        deadline,
        report.render(),
    ))
}

/// Parses a `--tenants` roster: `NAME:WEIGHT[:DEADLINE_MS],...`.
fn parse_tenant_specs(s: &str) -> Result<Vec<TenantSpec>, String> {
    let mut tenants = Vec::new();
    for part in s.split(',') {
        let fields: Vec<&str> = part.split(':').collect();
        if !(2..=3).contains(&fields.len()) {
            return Err(format!(
                "--tenants entry {part:?} must be NAME:WEIGHT[:DEADLINE_MS]"
            ));
        }
        let weight: u32 = fields[1].parse().map_err(|_| {
            format!("--tenants entry {part:?}: the weight must be a positive integer")
        })?;
        let deadline_ms = match fields.get(2) {
            Some(d) => Some(d.parse::<f64>().map_err(|_| {
                format!("--tenants entry {part:?}: the deadline must be a number (ms)")
            })?),
            None => None,
        };
        tenants.push(TenantSpec {
            name: fields[0].to_string(),
            weight,
            deadline_ms,
        });
    }
    validate_tenants(&tenants).map_err(|e| format!("--tenants: {e}"))?;
    Ok(tenants)
}

/// Parses `--autoscale MIN:MAX`.
fn parse_autoscale(s: &str) -> Result<(usize, usize), String> {
    let (min, max) = s
        .split_once(':')
        .ok_or_else(|| "--autoscale must be MIN:MAX".to_string())?;
    let min: usize = min
        .parse()
        .map_err(|_| "--autoscale MIN must be an integer".to_string())?;
    let max: usize = max
        .parse()
        .map_err(|_| "--autoscale MAX must be an integer".to_string())?;
    if min == 0 || max < min {
        return Err(format!(
            "--autoscale needs 1 <= MIN <= MAX, got {min}:{max}"
        ));
    }
    Ok((min, max))
}

/// Parses `--reset-replica REPLICA:MS`.
fn parse_reset(s: &str) -> Result<(usize, f64), String> {
    let (replica, ms) = s
        .split_once(':')
        .ok_or_else(|| "--reset-replica must be REPLICA:MS".to_string())?;
    let replica: usize = replica
        .parse()
        .map_err(|_| "--reset-replica REPLICA must be an integer".to_string())?;
    let ms: f64 = ms
        .parse()
        .map_err(|_| "--reset-replica MS must be a number".to_string())?;
    if !(ms.is_finite() && ms > 0.0) {
        return Err(format!(
            "--reset-replica instant must be positive, got {ms}"
        ));
    }
    Ok((replica, ms))
}

/// `serve-cluster`: the serving pipeline scaled out across replicated
/// engines — weighted-fair tenant admission, a deterministic router
/// (round-robin / least-loaded / cost-aware), optional seeded
/// autoscaling, and retry-elsewhere failover. Arrivals come from either
/// the Poisson generator or the bursty MMPP generator; everything
/// downstream of the seed replays bit-for-bit, so the report is
/// byte-identical across runs and `GNNADVISOR_SIM_THREADS`.
pub fn serve_cluster(opts: &CliOptions) -> CliResult {
    // Same batched Type II dataset as serve-sim: the cluster serves the
    // mini-batched inference workload class.
    let nodes = ((40_000.0 * opts.scale) as usize).clamp(400, 40_000);
    let (graph, components) = batched_graph(
        &BatchedParams {
            num_nodes: nodes,
            num_edges: nodes * 4,
            mean_graph_size: 40,
            graph_size_cv: 0.4,
        },
        31,
    )
    .map_err(|e| e.to_string())?;
    let mut exec = GcnBatchExecutor::new(&graph, &components, opts.feat_dim, 16, opts.num_classes);

    let mean = 1000.0 / opts.rate;
    let arrivals = match opts.arrivals.as_str() {
        "mmpp" => generate_mmpp_arrivals(&MmppConfig {
            num_requests: opts.requests,
            phase_interarrival_ms: vec![mean / opts.burst, mean * opts.burst],
            mean_dwell_ms: opts.dwell_ms,
            num_components: exec.num_components(),
            seed: opts.seed,
        }),
        _ => generate_arrivals(&ArrivalConfig {
            num_requests: opts.requests,
            mean_interarrival_ms: mean,
            num_components: exec.num_components(),
            seed: opts.seed,
        }),
    }
    .map_err(|e| e.to_string())?;

    let tenants = match &opts.tenants {
        Some(s) => parse_tenant_specs(s)?,
        None => vec![TenantSpec {
            name: "default".into(),
            weight: 1,
            deadline_ms: opts.deadline_ms,
        }],
    };
    let tenant_of = assign_tenants(&arrivals, &tenants, opts.seed).map_err(|e| e.to_string())?;

    let autoscaler = opts
        .autoscale
        .as_deref()
        .map(parse_autoscale)
        .transpose()?
        .map(|(min, max)| AutoscalerConfig {
            min_replicas: min,
            max_replicas: max,
            interval_ms: opts.scale_interval_ms,
            high_queue_depth: opts.scale_high,
            low_queue_depth: opts.scale_low,
            p99_high_ms: opts.scale_p99_ms,
            consecutive: 2,
            seed: opts.seed,
        });
    let slots = autoscaler
        .as_ref()
        .map_or(opts.replicas, |a| a.max_replicas.max(opts.replicas));
    let reset = opts.reset_replica.as_deref().map(parse_reset).transpose()?;
    if let Some((r, _)) = reset {
        if r >= slots {
            return Err(format!(
                "--reset-replica names replica {r} but the fleet has {slots} slots"
            ));
        }
    }

    let mut engines = Vec::with_capacity(slots);
    for r in 0..slots {
        let mut builder = Engine::builder(opts.spec()?);
        let reset_ms = reset.and_then(|(rr, ms)| (rr == r).then_some(ms));
        if opts.fault_rate > 0.0 || reset_ms.is_some() {
            // Per-replica fault seeds: replicas fault independently, but
            // the whole fleet's chaos replays from one --seed.
            let mut fc = FaultConfig::uniform(opts.fault_rate, opts.seed.wrapping_add(r as u64));
            fc.device_reset_ms = reset_ms;
            let plan = FaultPlan::new(fc).map_err(|e| e.to_string())?;
            builder = builder.fault_plan(Arc::new(plan));
        }
        engines.push(builder.build().map_err(|e| e.to_string())?);
    }

    let cfg = ClusterConfig {
        replicas: opts.replicas,
        streams: opts.streams,
        queue: QueuePolicy {
            capacity: opts.queue_cap,
        },
        batch: BatchPolicy {
            max_batch: opts.batch_size,
            max_delay_ms: opts.max_delay_ms,
        },
        retry: RetryPolicy {
            max_attempts: opts.retries + 1,
            seed: opts.seed,
            ..RetryPolicy::default()
        },
        router: RouterPolicy::parse(&opts.router).expect("validated at parse"),
        autoscaler,
    };
    let report = simulate_cluster(&engines, &arrivals, &tenant_of, &tenants, &cfg, &mut exec)
        .map_err(|e| e.to_string())?;

    let roster: Vec<String> = tenants
        .iter()
        .map(|t| {
            let slo = t
                .deadline_ms
                .map_or(String::new(), |d| format!(" slo {d}ms"));
            format!("{} w{}{}", t.name, t.weight, slo)
        })
        .collect();
    let autoscale_str = cfg.autoscaler.as_ref().map_or("off".to_string(), |a| {
        format!("{}..{} replicas", a.min_replicas, a.max_replicas)
    });
    Ok(format!(
        "serve-cluster: {} requests at {} req/s ({} arrivals) over {} component graphs ({})\n\
         fleet: {} replicas x {} streams, router {}, autoscale {}\n\
         tenants: {}\n\
         batching: max {} per batch, {} ms max delay, queue capacity {}\n\
         reliability: fault rate {}, {} retries\n\n{}",
        opts.requests,
        opts.rate,
        opts.arrivals,
        exec.num_components(),
        engines[0].spec().name,
        opts.replicas,
        opts.streams,
        cfg.router.label(),
        autoscale_str,
        roster.join(", "),
        opts.batch_size,
        opts.max_delay_ms,
        opts.queue_cap,
        opts.fault_rate,
        opts.retries,
        report.render(),
    ))
}

/// `serve-dynamic`: the serving pipeline over a *mutating* graph. A
/// seeded update stream (edge churn + community-attached node arrivals)
/// interleaves with request arrivals on the simulated clock; each batch
/// executes against a consistent copy-on-write snapshot of the live
/// delta CSR, and the re-renumbering policy (`--renumber on`) rebuilds
/// the layout when the measured kernel L2 hit-rate sinks below the
/// watermark. Everything downstream of the seeds replays bit-for-bit,
/// so the report is byte-identical across runs and
/// `GNNADVISOR_SIM_THREADS`.
pub fn serve_dynamic(opts: &CliOptions) -> CliResult {
    // A community-structured graph, freshly renumbered: the starting
    // layout is what the Section 6.1 pass produces offline, and the run
    // measures how long it stays good under churn.
    let nodes = ((40_000.0 * opts.scale) as usize).clamp(400, 40_000);
    let (shuffled, _) = community_graph(
        &CommunityParams {
            num_nodes: nodes,
            num_edges: nodes * 12,
            mean_community: 40,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        },
        31,
    )
    .map_err(|e| e.to_string())?;
    let r = renumber(&shuffled, &RenumberConfig::default()).map_err(|e| e.to_string())?;
    let base = shuffled
        .permute(&r.permutation)
        .map_err(|e| e.to_string())?;

    let updates = generate_updates(
        &base,
        &UpdateStreamConfig {
            num_updates: opts.updates,
            mean_interarrival_ms: opts.update_gap_ms,
            delete_fraction: opts.delete_frac,
            node_fraction: opts.node_frac,
            attach_degree: opts.attach_degree,
            seed: opts.seed.wrapping_add(1),
        },
    )
    .map_err(|e| e.to_string())?;
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: opts.requests,
        mean_interarrival_ms: 1000.0 / opts.rate,
        num_components: 1,
        seed: opts.seed,
    })
    .map_err(|e| e.to_string())?;

    let policy = (opts.renumber == "on").then_some(RenumberPolicy {
        window: opts.policy_window,
        watermark: opts.hit_watermark,
        cooldown_batches: opts.cooldown,
        rebuild_cost_us_per_edge: opts.rebuild_cost_us,
    });
    let cfg = DynamicConfig {
        serving: ServingConfig {
            streams: opts.streams,
            queue: QueuePolicy {
                capacity: opts.queue_cap,
            },
            batch: BatchPolicy {
                max_batch: opts.batch_size,
                max_delay_ms: opts.max_delay_ms,
            },
            retry: RetryPolicy {
                max_attempts: opts.retries + 1,
                seed: opts.seed,
                ..RetryPolicy::default()
            },
            deadline_ms: opts.deadline_ms,
        },
        policy,
        compact_every: opts.compact_every,
    };

    let mut engines = Vec::with_capacity(opts.replicas);
    for replica in 0..opts.replicas {
        let mut builder = Engine::builder(opts.spec()?);
        if opts.fault_rate > 0.0 {
            let plan = FaultPlan::new(FaultConfig::uniform(
                opts.fault_rate,
                opts.seed.wrapping_add(replica as u64),
            ))
            .map_err(|e| e.to_string())?;
            builder = builder.fault_plan(Arc::new(plan));
        }
        engines.push(builder.build().map_err(|e| e.to_string())?);
    }

    // Hidden dim 32 keeps the advisor aggregation in the SM-time-limited
    // regime where layout locality is what the clock measures.
    let mut exec = DynamicGcnExecutor::new(
        opts.feat_dim,
        32,
        opts.num_classes,
        RuntimeParams::default(),
    )
    .map_err(|e| e.to_string())?;
    let report = simulate_dynamic(&engines, base, &updates, &arrivals, &cfg, &mut exec)
        .map_err(|e| e.to_string())?;

    let policy_str = match &cfg.policy {
        Some(p) => format!(
            "on (window {}, watermark {}, cooldown {}, rebuild {} us/edge)",
            p.window, p.watermark, p.cooldown_batches, p.rebuild_cost_us_per_edge
        ),
        None => "off".to_string(),
    };
    let deadline = opts
        .deadline_ms
        .map_or("none".to_string(), |d| format!("{d} ms"));
    Ok(format!(
        "serve-dynamic: {} requests at {} req/s over a {}-node community graph ({})\n\
         churn: {} updates at {} ms mean gap (delete {}, node-arrival {}, attach {})\n\
         re-renumbering: {}\n\
         batching: max {} per batch, {} ms max delay, queue capacity {}, {} replicas x {} streams\n\
         reliability: fault rate {}, {} retries, deadline {}\n\n{}",
        opts.requests,
        opts.rate,
        nodes,
        engines[0].spec().name,
        opts.updates,
        opts.update_gap_ms,
        opts.delete_frac,
        opts.node_frac,
        opts.attach_degree,
        policy_str,
        opts.batch_size,
        opts.max_delay_ms,
        opts.queue_cap,
        opts.replicas,
        opts.streams,
        opts.fault_rate,
        opts.retries,
        deadline,
        report.render(),
    ))
}

/// Parses a comma-separated fan-out list like `10,5` (all entries > 0).
fn parse_fanouts(s: &str) -> Result<Vec<usize>, String> {
    let fanouts: Vec<usize> = s
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .ok()
                .filter(|&f| f > 0)
                .ok_or_else(|| format!("--fanout needs comma-separated positive integers, got {s}"))
        })
        .collect::<Result<_, _>>()?;
    if fanouts.is_empty() {
        return Err("--fanout needs at least one hop".to_string());
    }
    Ok(fanouts)
}

/// `train-minibatch`: pipelined sampling-based mini-batch training. A
/// community-structured graph supplies a separable node-classification
/// task (labels from the planted communities, noisy one-hot features);
/// every epoch is trained for real through per-block SGD while the
/// simulator prices both the pipelined schedule (the host samples batch
/// `k+1` while the device trains batch `k`) and the classic serialized
/// loop. Everything is seeded, so the report replays byte-for-byte at any
/// `GNNADVISOR_SIM_THREADS`.
pub fn train_minibatch(opts: &CliOptions) -> CliResult {
    let nodes = ((20_000.0 * opts.scale) as usize).clamp(300, 20_000);
    let (graph, comm) = community_graph(
        &CommunityParams {
            num_nodes: nodes,
            num_edges: nodes * 10,
            mean_community: 40,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        },
        23,
    )
    .map_err(|e| e.to_string())?;
    let labels: Vec<usize> = comm
        .iter()
        .map(|&c| c as usize % opts.num_classes)
        .collect();
    let features = gnnadvisor_tensor::Matrix::from_fn(nodes, opts.feat_dim, |v, d| {
        let hot = labels[v] % opts.feat_dim;
        let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
        if d == hot {
            1.0 + noise
        } else {
            noise
        }
    });

    let fanouts = parse_fanouts(&opts.fanout)?;
    let strategy = match opts.strategy.as_str() {
        "layer" => SampleStrategy::LayerWise {
            budget: opts.budget,
        },
        _ => SampleStrategy::NeighborFanout,
    };
    let cfg = MiniBatchConfig {
        dims: vec![opts.feat_dim, opts.hidden, opts.num_classes],
        lr: opts.lr as f32,
        epochs: opts.epochs,
        sample: SampleConfig {
            batch_size: opts.batch_size,
            fanouts: fanouts.clone(),
            strategy,
            seed: opts.seed,
        },
        host: HostCostModel::default(),
        seed: opts.seed,
    };
    let engine = Engine::new(opts.spec()?);
    let report = gnnadvisor_models::train_minibatch(&engine, &graph, &features, &labels, &cfg)
        .map_err(|e| e.to_string())?;

    let fanout_str = fanouts
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let strategy_str = match strategy {
        SampleStrategy::NeighborFanout => "neighbor".to_string(),
        SampleStrategy::LayerWise { budget } => format!("layer (budget {budget})"),
    };
    Ok(format!(
        "train-minibatch: {} epochs over a {}-node community graph ({})\n\
         sampling: {} seeds per batch, fan-outs [{}], strategy {}, seed {}\n\
         model: dims [{}, {}, {}], lr {}\n\n{}\n\
         final: loss {:.6}, accuracy {:.4}\n\
         total: pipelined {:.4} ms vs serialized {:.4} ms ({:.2}x)\n",
        opts.epochs,
        nodes,
        engine.spec().name,
        opts.batch_size,
        fanout_str,
        strategy_str,
        opts.seed,
        opts.feat_dim,
        opts.hidden,
        opts.num_classes,
        opts.lr,
        report.render(),
        report.final_loss(),
        report.final_accuracy(),
        report.pipelined_ms(),
        report.serialized_ms(),
        report.serialized_ms() / report.pipelined_ms().max(f64::MIN_POSITIVE),
    ))
}

fn model_order(model: &str) -> Result<gnnadvisor_core::input::AggOrder, String> {
    match model {
        "gcn" | "sage" => Ok(gnnadvisor_core::input::AggOrder::UpdateThenAggregate),
        "gin" | "gat" => Ok(gnnadvisor_core::input::AggOrder::AggregateThenUpdate),
        other => Err(format!("unknown model {other}; use gcn | gin | sage | gat")),
    }
}

fn forward(
    model: &str,
    exec: &ModelExec<'_>,
    ds: &Dataset,
    features: &gnnadvisor_tensor::Matrix,
) -> Result<gnnadvisor_models::ForwardResult, String> {
    let r = match model {
        "gcn" => Gcn::paper_default(ds.feat_dim, ds.num_classes, 0).forward(exec, features),
        "gin" => Gin::paper_default(ds.feat_dim, ds.num_classes, 0).forward(exec, features),
        "sage" => GraphSage::paper_default(ds.feat_dim, ds.num_classes, 0).forward(exec, features),
        "gat" => Gat::paper_default(ds.feat_dim, ds.num_classes, 0).forward(exec, features),
        other => return Err(format!("unknown model {other}; use gcn | gin | sage | gat")),
    };
    r.map_err(|e| e.to_string())
}

/// Usage text for the binary.
pub const USAGE: &str = "\
gnnadvisor — GNNAdvisor runtime reproduction CLI

USAGE:
    gnnadvisor <COMMAND> [OPTIONS]

COMMANDS:
    analyze    input-extractor report + suggested runtime parameters
    run        one model forward pass under GNNAdvisor, with metrics
    profile    a traced forward pass: phase breakdown + span report
    compare    all execution strategies on one aggregation pass
    tune       the Section 7 Modeling & Estimating pipeline (two-tier)
    serve-sim  multi-stream serving runtime with dynamic batching
    serve-cluster  replicated serving: router, tenants, autoscaler
    serve-dynamic  serving under live graph updates: incremental CSR,
                   locality-triggered re-renumbering
    train-minibatch  pipelined sampling-based mini-batch training:
                     host sampling overlapped with device training

OPTIONS:
    --dataset NAME       a Table 1 dataset (e.g. Cora, artist, DD)
    --edge-list FILE     load a SNAP-style edge list instead
    --scale S            dataset scale in (0, 1], default 0.05
    --model M            gcn | gin | sage | gat, default gcn
    --gpu G              p6000 | v100, default p6000
    --feat-dim D         feature dim for --edge-list inputs (default 96)
    --classes C          class count for --edge-list inputs (default 10)
    --trace-out FILE     profile only: write chrome://tracing JSON here

TUNE OPTIONS:
    --tier T             analytic | two-tier | full (default two-tier):
                         explore on the calibrated analytical model only,
                         engine-verify the top-K finalists, or score every
                         candidate on the event-level simulator
    --top-k K            two-tier finalists verified on the engine (default 4)
    --speed-check R      require fast-path candidate scoring to be at least
                         R times faster than full simulation; the measured
                         ratio prints to stderr (stdout stays deterministic)

SERVE-SIM OPTIONS:
    --requests N         arrival-trace length (default 64)
    --rate R             offered load, requests/second (default 2000)
    --batch-size B       dynamic batcher's max batch size (default 8)
    --max-delay-ms D     max queueing delay before dispatch (default 2)
    --queue-cap Q        admission-queue capacity (default 64)
    --streams S          concurrent simulated streams (default 4)
    --seed X             arrival-trace and fault seed (default 7)
    --fault-rate F       injected device-fault rate in [0, 1] (default 0)
    --retries N          retries per faulted batch (default 2)
    --deadline-ms D      per-request completion deadline, ms (default none)

SERVE-CLUSTER OPTIONS (plus all serve-sim options):
    --replicas N         replica engines behind the router (default 2)
    --router P           round-robin | least-loaded | cost-aware (default)
    --tenants SPEC       roster NAME:WEIGHT[:DEADLINE_MS],... — weighted-fair
                         admission shares + per-tenant SLOs (default: one
                         tenant carrying --deadline-ms)
    --autoscale MIN:MAX  seeded queue-depth/p99 autoscaler bounds (default off)
    --scale-high N       queue depth that votes to scale up (default 8)
    --scale-low N        queue depth that votes to scale down (default 1)
    --scale-interval-ms I  autoscaler control cadence (default 5)
    --scale-p99-ms P     p99 estimate above P also votes to scale up
    --arrivals A         poisson | mmpp — bursty state-switching (default poisson)
    --burst F            mmpp: heavy phase is F times the mean rate (default 4)
    --dwell-ms D         mmpp: mean phase dwell (default 5)
    --reset-replica R:MS kill replica R with a device reset at MS — the
                         fleet retries its batches elsewhere

SERVE-DYNAMIC OPTIONS (plus the serve-sim options and --replicas):
    --updates N          update-stream length (default 4000)
    --update-gap-ms G    mean gap between updates, simulated ms (default 0.004)
    --delete-frac F      fraction of updates deleting a live edge (default 0.15)
    --node-frac F        fraction of updates that are node arrivals (default 0.25)
    --attach-degree K    edges each arrival wires into its community (default 6)
    --renumber on|off    locality-triggered re-renumbering (default on)
    --hit-watermark W    rebuild when windowed hit-rate < W x baseline (default 0.98)
    --policy-window B    sliding hit-rate window, batches (default 8)
    --cooldown B         minimum batches between rebuilds (default 16)
    --rebuild-cost-us C  simulated rebuild stall, us per live edge (default 0.0005)
    --compact-every N    fold the delta overlay after N applied updates
                         (default 64; 0 = only at rebuilds)

TRAIN-MINIBATCH OPTIONS:
    --epochs N           training epochs (default 3)
    --batch-size B       seed nodes per mini-batch (default 8)
    --fanout F1,F2,...   per-hop neighbor fan-outs (default 10,5)
    --hidden H           hidden layer dimension (default 16)
    --lr R               SGD learning rate (default 0.1)
    --strategy S         neighbor | layer — per-node fan-out sampling or a
                         shared per-hop node budget (default neighbor)
    --budget N           layer strategy's shared node budget (default 256)
    --seed X             sampling and weight-init seed (default 7)
";

/// Dispatches a full argument vector (without the program name).
pub fn dispatch(args: &[String]) -> CliResult {
    let (cmd, rest) = args.split_first().ok_or_else(|| USAGE.to_string())?;
    let opts = CliOptions::parse(rest)?;
    match cmd.as_str() {
        "analyze" => analyze(&opts),
        "run" => run(&opts),
        "profile" => profile(&opts),
        "compare" => compare(&opts),
        "tune" => tune(&opts),
        "serve-sim" => serve_sim(&opts),
        "serve-cluster" => serve_cluster(&opts),
        "serve-dynamic" => serve_dynamic(&opts),
        "train-minibatch" => train_minibatch(&opts),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_options() {
        let o = CliOptions::parse(&args("--dataset Cora --scale 0.02 --model gin --gpu v100"))
            .expect("parses");
        assert_eq!(o.dataset.as_deref(), Some("Cora"));
        assert_eq!(o.scale, 0.02);
        assert_eq!(o.model, "gin");
        assert_eq!(o.gpu, "v100");
        assert!(CliOptions::parse(&args("--bogus 1")).is_err());
        assert!(CliOptions::parse(&args("--scale")).is_err());
    }

    #[test]
    fn out_of_range_scale_rejected_at_parse() {
        for bad in ["2", "-1", "0", "NaN", "inf", "1.0001"] {
            let err = CliOptions::parse(&args(&format!("--scale {bad}")))
                .expect_err(bad)
                .to_string();
            assert!(err.contains("(0, 1]"), "{bad}: {err}");
        }
        // Boundary values stay accepted.
        assert!(CliOptions::parse(&args("--scale 1")).is_ok());
        assert!(CliOptions::parse(&args("--scale 0.001")).is_ok());
    }

    #[test]
    fn zero_dims_rejected_at_parse() {
        assert!(CliOptions::parse(&args("--feat-dim 0"))
            .expect_err("zero feat dim")
            .contains("--feat-dim"));
        assert!(CliOptions::parse(&args("--classes 0"))
            .expect_err("zero classes")
            .contains("--classes"));
        assert!(CliOptions::parse(&args("--feat-dim 1 --classes 1")).is_ok());
    }

    #[test]
    fn profile_emits_deterministic_chrome_trace() {
        let dir = std::env::temp_dir().join("gnnadvisor_profile_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        for path in [&a, &b] {
            let out = dispatch(&args(&format!(
                "profile --dataset Cora --scale 0.03 --trace-out {}",
                path.display()
            )))
            .expect("runs");
            assert!(out.contains("phases:"), "{out}");
            assert!(out.contains("trace report"), "{out}");
        }
        let ja = std::fs::read(&a).expect("trace a");
        let jb = std::fs::read(&b).expect("trace b");
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "chrome trace must be byte-identical run-to-run");
        let text = String::from_utf8(ja).expect("utf8");
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("advisor_aggregation"));
        std::fs::remove_file(a).ok();
        std::fs::remove_file(b).ok();
    }

    #[test]
    fn analyze_reports_params() {
        let out = dispatch(&args("analyze --dataset Cora --scale 0.05")).expect("runs");
        assert!(out.contains("suggested params"));
        assert!(out.contains("communities"));
    }

    #[test]
    fn run_every_model() {
        for m in ["gcn", "gin", "sage", "gat"] {
            let out = dispatch(&args(&format!(
                "run --dataset Cora --scale 0.03 --model {m}"
            )))
            .unwrap_or_else(|e| panic!("{m}: {e}"));
            assert!(out.contains("simulated ms"), "{m}");
        }
    }

    #[test]
    fn compare_lists_all_frameworks() {
        let out = dispatch(&args("compare --dataset artist --scale 0.01")).expect("runs");
        for fw in [
            "GNNAdvisor",
            "DGL",
            "PyG",
            "GunRock",
            "node-centric",
            "edge-centric",
        ] {
            assert!(out.contains(fw), "missing {fw} in:\n{out}");
        }
    }

    #[test]
    fn tune_outputs_both_stages() {
        let out = dispatch(&args("tune --dataset Pubmed --scale 0.03")).expect("runs");
        assert!(out.contains("modeling"));
        assert!(out.contains("estimating"));
        // The default tier is two-tier: the report carries the calibration
        // band, the evaluation counters, and the verified finalists.
        assert!(out.contains("two-tier"), "{out}");
        assert!(out.contains("calibration band"), "{out}");
        assert!(out.contains("finalists"), "{out}");
        assert!(out.contains("<- winner"), "{out}");
    }

    #[test]
    fn tune_every_tier_reports_its_stage() {
        for (tier, needle) in [
            ("analytic", "analytic fast path"),
            ("two-tier", "estimating (two-tier)"),
            ("full", "full-sim evolutionary"),
        ] {
            let out = dispatch(&args(&format!(
                "tune --dataset Cora --scale 0.05 --tier {tier}"
            )))
            .unwrap_or_else(|e| panic!("{tier}: {e}"));
            assert!(out.contains(needle), "{tier}: missing {needle} in:\n{out}");
            assert!(out.contains("modeling"), "{tier}");
        }
    }

    #[test]
    fn tune_report_is_deterministic() {
        let cmd = "tune --dataset Cora --scale 0.05";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "tune stdout must be byte-identical run-to-run");
    }

    #[test]
    fn tune_speed_check_passes_generously_and_rejects_impossible_ratios() {
        // 1x is trivially met: one engine launch costs orders of magnitude
        // more than one closed-form evaluation.
        let out =
            dispatch(&args("tune --dataset Cora --scale 0.05 --speed-check 1")).expect("runs");
        assert!(out.contains("estimating"), "{out}");
        // ... and the stdout report must not change when the check runs.
        let plain = dispatch(&args("tune --dataset Cora --scale 0.05")).expect("runs");
        assert_eq!(out, plain, "--speed-check must leave stdout untouched");
        // An absurd ratio fails via Err, not via stdout.
        let err = dispatch(&args("tune --dataset Cora --scale 0.05 --speed-check 1e18"))
            .expect_err("impossible ratio");
        assert!(err.contains("speed-check failed"), "{err}");
        // The full tier has no fast path to check.
        let err = dispatch(&args(
            "tune --dataset Cora --scale 0.05 --tier full --speed-check 2",
        ))
        .expect_err("full tier");
        assert!(err.contains("--speed-check"), "{err}");
    }

    #[test]
    fn tune_options_validated_at_parse() {
        assert!(CliOptions::parse(&args("--tier warp"))
            .expect_err("bad tier")
            .contains("--tier"));
        assert!(CliOptions::parse(&args("--top-k 0"))
            .expect_err("zero finalists")
            .contains("--top-k"));
        for bad in ["0", "-3", "nan"] {
            assert!(CliOptions::parse(&args(&format!("--speed-check {bad}")))
                .expect_err(bad)
                .contains("--speed-check"));
        }
        assert!(CliOptions::parse(&args("--tier analytic --top-k 2 --speed-check 20")).is_ok());
    }

    #[test]
    fn errors_are_friendly() {
        assert!(dispatch(&args("run --dataset nope"))
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(dispatch(&args("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(dispatch(&args("run")).unwrap_err().contains("--dataset"));
        assert!(dispatch(&args("run --dataset Cora --gpu tpu"))
            .unwrap_err()
            .contains("unknown GPU"));
    }

    #[test]
    fn serve_sim_report_is_deterministic() {
        let cmd = "serve-sim --requests 32 --rate 4000 --batch-size 4 --streams 2 --scale 0.02";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "serve-sim must be byte-identical run-to-run");
        for needle in [
            "serving-sim report",
            "latency p50",
            "latency p99",
            "throughput",
            "requests completed",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn serve_sim_seed_changes_the_trace() {
        let a = dispatch(&args("serve-sim --requests 32 --scale 0.02 --seed 1")).expect("runs");
        let b = dispatch(&args("serve-sim --requests 32 --scale 0.02 --seed 2")).expect("runs");
        assert_ne!(a, b, "different seeds must give different traces");
    }

    #[test]
    fn serve_sim_options_validated_at_parse() {
        assert!(CliOptions::parse(&args("--rate 0"))
            .expect_err("zero rate")
            .contains("--rate"));
        assert!(CliOptions::parse(&args("--rate nan"))
            .expect_err("nan rate")
            .contains("--rate"));
        assert!(CliOptions::parse(&args("--batch-size 0"))
            .expect_err("zero batch")
            .contains("--batch-size"));
        assert!(CliOptions::parse(&args("--queue-cap 0"))
            .expect_err("zero cap")
            .contains("--queue-cap"));
        assert!(CliOptions::parse(&args("--streams 0"))
            .expect_err("zero streams")
            .contains("--streams"));
        assert!(CliOptions::parse(&args("--max-delay-ms -1"))
            .expect_err("negative delay")
            .contains("--max-delay-ms"));
        assert!(CliOptions::parse(&args("--max-delay-ms 0")).is_ok());
        for bad in ["-0.1", "1.5", "nan"] {
            assert!(CliOptions::parse(&args(&format!("--fault-rate {bad}")))
                .expect_err(bad)
                .contains("--fault-rate"));
        }
        assert!(CliOptions::parse(&args("--fault-rate 0.3 --retries 0")).is_ok());
        for bad in ["0", "-2", "inf"] {
            assert!(CliOptions::parse(&args(&format!("--deadline-ms {bad}")))
                .expect_err(bad)
                .contains("--deadline-ms"));
        }
        assert!(CliOptions::parse(&args("--deadline-ms 5")).is_ok());
    }

    #[test]
    fn serve_sim_chaos_is_deterministic_and_reports_reliability() {
        let cmd = "serve-sim --requests 32 --rate 4000 --scale 0.02 \
                   --fault-rate 0.25 --retries 2 --deadline-ms 40";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "faulted serve-sim must be byte-identical");
        for needle in [
            "fault rate 0.25",
            "requests failed",
            "deadline missed",
            "batch retries",
            "goodput",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
        // Retries must actually fire at this fault rate.
        let retries_line = a
            .lines()
            .find(|l| l.contains("batch retries"))
            .expect("retries line");
        assert!(
            !retries_line.trim_end().ends_with(" 0"),
            "expected non-zero retries: {retries_line}"
        );
    }

    #[test]
    fn serve_cluster_report_is_deterministic() {
        let cmd = "serve-cluster --requests 32 --rate 4000 --batch-size 4 --streams 2 \
                   --replicas 2 --scale 0.02";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "serve-cluster must be byte-identical run-to-run");
        for needle in [
            "cluster-serving report",
            "router cost-aware",
            "replica submissions",
            "goodput",
            "tenant default",
            "slo",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn serve_cluster_tenants_and_failover_report_their_rows() {
        let cmd = "serve-cluster --requests 48 --rate 4000 --batch-size 4 --streams 2 \
                   --replicas 2 --scale 0.02 --tenants batch:3,online:1:40 \
                   --reset-replica 0:0.5 --retries 3";
        let out = dispatch(&args(cmd)).expect("runs");
        assert!(out.contains("tenant batch"), "{out}");
        assert!(out.contains("tenant online"), "{out}");
        assert!(out.contains("slo 40ms"), "{out}");
        assert!(out.contains("dead replicas        0"), "{out}");
        // Byte-identical replay under chaos too.
        assert_eq!(out, dispatch(&args(cmd)).expect("runs"));
    }

    #[test]
    fn serve_cluster_mmpp_and_autoscaler_run() {
        let cmd = "serve-cluster --requests 48 --rate 4000 --batch-size 4 --streams 2 \
                   --scale 0.02 --arrivals mmpp --burst 8 --dwell-ms 2 \
                   --autoscale 1:3 --scale-interval-ms 1 --scale-high 6";
        let out = dispatch(&args(cmd)).expect("runs");
        assert!(out.contains("(mmpp arrivals)"), "{out}");
        assert!(out.contains("autoscale 1..3 replicas"), "{out}");
        // The burst shifts the trace relative to Poisson at the same seed.
        let poisson = dispatch(&args(
            "serve-cluster --requests 48 --rate 4000 --batch-size 4 --streams 2 --scale 0.02",
        ))
        .expect("runs");
        assert_ne!(out, poisson);
    }

    #[test]
    fn serve_cluster_options_validated_at_parse() {
        assert!(CliOptions::parse(&args("--replicas 0"))
            .expect_err("zero replicas")
            .contains("--replicas"));
        assert!(CliOptions::parse(&args("--router random"))
            .expect_err("bad router")
            .contains("--router"));
        for bad in ["solo", "a:0", "a:1:nan", "a:1:-3", ":2"] {
            assert!(CliOptions::parse(&args(&format!("--tenants {bad}")))
                .expect_err(bad)
                .contains("--tenants"));
        }
        assert!(CliOptions::parse(&args("--tenants batch:3,online:1:40")).is_ok());
        for bad in ["3", "0:2", "4:2", "a:b"] {
            assert!(CliOptions::parse(&args(&format!("--autoscale {bad}")))
                .expect_err(bad)
                .contains("--autoscale"));
        }
        assert!(CliOptions::parse(&args("--autoscale 1:4")).is_ok());
        assert!(CliOptions::parse(&args("--scale-low 8 --scale-high 8"))
            .expect_err("inverted watermarks")
            .contains("--scale-low"));
        assert!(CliOptions::parse(&args("--scale-interval-ms 0"))
            .expect_err("zero cadence")
            .contains("--scale-interval-ms"));
        assert!(CliOptions::parse(&args("--scale-p99-ms -1"))
            .expect_err("negative p99")
            .contains("--scale-p99-ms"));
        assert!(CliOptions::parse(&args("--arrivals uniform"))
            .expect_err("bad arrivals")
            .contains("--arrivals"));
        for bad in ["1", "0.5", "nan"] {
            assert!(CliOptions::parse(&args(&format!("--burst {bad}")))
                .expect_err(bad)
                .contains("--burst"));
        }
        assert!(CliOptions::parse(&args("--dwell-ms 0"))
            .expect_err("zero dwell")
            .contains("--dwell-ms"));
        for bad in ["1", "1:0", "x:2", "1:nan"] {
            assert!(CliOptions::parse(&args(&format!("--reset-replica {bad}")))
                .expect_err(bad)
                .contains("--reset-replica"));
        }
        assert!(CliOptions::parse(&args("--reset-replica 0:0.5")).is_ok());
    }

    #[test]
    fn serve_dynamic_report_is_deterministic() {
        let cmd = "serve-dynamic --requests 32 --rate 4000 --batch-size 4 --streams 2 \
                   --scale 0.02 --updates 600 --update-gap-ms 0.01";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "serve-dynamic must be byte-identical run-to-run");
        for needle in [
            "dynamic-graph report",
            "updates applied",
            "final version",
            "hit-rate head",
            "hit-rate tail",
            "re-renumber events",
            "goodput",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn serve_dynamic_policy_off_never_renumbers() {
        let out = dispatch(&args(
            "serve-dynamic --requests 24 --rate 4000 --batch-size 4 --streams 2 \
             --scale 0.02 --updates 400 --update-gap-ms 0.01 --renumber off",
        ))
        .expect("runs");
        assert!(out.contains("re-renumbering: off"), "{out}");
        assert!(out.contains("re-renumber events   0"), "{out}");
    }

    #[test]
    fn serve_dynamic_options_validated_at_parse() {
        assert!(CliOptions::parse(&args("--update-gap-ms 0"))
            .expect_err("zero gap")
            .contains("--update-gap-ms"));
        for bad in ["-0.1", "1.5", "nan"] {
            assert!(CliOptions::parse(&args(&format!("--delete-frac {bad}")))
                .expect_err(bad)
                .contains("--delete-frac"));
            assert!(CliOptions::parse(&args(&format!("--node-frac {bad}")))
                .expect_err(bad)
                .contains("--node-frac"));
        }
        assert!(
            CliOptions::parse(&args("--delete-frac 0.6 --node-frac 0.6"))
                .expect_err("fractions over 1")
                .contains("must not exceed 1")
        );
        assert!(CliOptions::parse(&args("--renumber maybe"))
            .expect_err("bad mode")
            .contains("--renumber"));
        for bad in ["0", "1.5", "nan"] {
            assert!(CliOptions::parse(&args(&format!("--hit-watermark {bad}")))
                .expect_err(bad)
                .contains("--hit-watermark"));
        }
        assert!(CliOptions::parse(&args("--policy-window 0"))
            .expect_err("zero window")
            .contains("--policy-window"));
        assert!(CliOptions::parse(&args("--rebuild-cost-us -1"))
            .expect_err("negative cost")
            .contains("--rebuild-cost-us"));
        assert!(CliOptions::parse(&args(
            "--updates 100 --update-gap-ms 0.01 --delete-frac 0.2 --node-frac 0.3 \
             --attach-degree 4 --renumber off --hit-watermark 0.9 --policy-window 4 \
             --cooldown 8 --rebuild-cost-us 0.001 --compact-every 0"
        ))
        .is_ok());
    }

    #[test]
    fn train_minibatch_report_is_deterministic() {
        let cmd = "train-minibatch --scale 0.02 --batch-size 96 --epochs 2 --fanout 6,3";
        let a = dispatch(&args(cmd)).expect("runs");
        let b = dispatch(&args(cmd)).expect("runs");
        assert_eq!(a, b, "train-minibatch must be byte-identical run-to-run");
        for needle in [
            "train-minibatch: 2 epochs",
            "fan-outs [6,3]",
            "strategy neighbor",
            "epoch batches loss accuracy host_ms device_ms pipelined_ms serialized_ms overlap",
            "final: loss",
            "total: pipelined",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    #[test]
    fn train_minibatch_layer_strategy_runs() {
        let out = dispatch(&args(
            "train-minibatch --scale 0.02 --batch-size 96 --epochs 1 --fanout 4 \
             --strategy layer --budget 64",
        ))
        .expect("runs");
        assert!(out.contains("strategy layer (budget 64)"), "{out}");
    }

    #[test]
    fn train_minibatch_options_validated_at_parse() {
        assert!(CliOptions::parse(&args("--epochs 0"))
            .expect_err("zero epochs")
            .contains("--epochs"));
        for bad in ["", "0", "3,0", "a", "2,,3"] {
            assert!(CliOptions::parse(&args(&format!("--fanout {bad}")))
                .expect_err(bad)
                .contains("--fanout"));
        }
        assert!(CliOptions::parse(&args("--hidden 0"))
            .expect_err("zero hidden")
            .contains("--hidden"));
        for bad in ["-0.1", "nan", "inf"] {
            assert!(CliOptions::parse(&args(&format!("--lr {bad}")))
                .expect_err(bad)
                .contains("--lr"));
        }
        assert!(CliOptions::parse(&args("--strategy random"))
            .expect_err("bad strategy")
            .contains("--strategy"));
        assert!(CliOptions::parse(&args("--budget 0"))
            .expect_err("zero budget")
            .contains("--budget"));
        assert!(CliOptions::parse(&args(
            "--epochs 5 --fanout 10,5,2 --hidden 32 --lr 0.05 --strategy layer --budget 128"
        ))
        .is_ok());
    }

    #[test]
    fn edge_list_input_works() {
        let dir = std::env::temp_dir().join("gnnadvisor_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tiny.el");
        std::fs::write(&path, "0 1\n1 2\n2 0\n2 3\n3 4\n4 2\n").expect("write");
        let out = dispatch(&args(&format!(
            "run --edge-list {} --feat-dim 8 --classes 2",
            path.display()
        )))
        .expect("runs");
        assert!(out.contains("simulated ms"));
        std::fs::remove_file(path).ok();
    }
}
