//! Facade crate for the GNNAdvisor reproduction.
//!
//! Re-exports every sub-crate of the workspace under one roof so that
//! examples and downstream users can depend on a single crate:
//!
//! - [`graph`] — CSR graphs, generators, Louvain, RCM, renumbering.
//! - [`tensor`] — dense matrices, SGEMM, MLPs for the update phase.
//! - [`gpu`] — the deterministic GPU execution simulator.
//! - [`core`] — the GNNAdvisor runtime itself (workload management, memory
//!   organizing, analytical model, auto-tuner, kernels, baselines).
//! - [`models`] — GCN / GIN / GraphSage architectures.
//! - [`datasets`] — the paper's Table 1 / Table 2 dataset registry.

pub mod cli;

/// The workspace's unified error enum (one variant per layer),
/// re-exported as the facade's root error type.
pub use gnnadvisor_core::CoreError as Error;
/// Result alias over [`Error`].
pub use gnnadvisor_core::Result;

pub use gnnadvisor_core as core;
pub use gnnadvisor_datasets as datasets;
pub use gnnadvisor_gpu as gpu;
pub use gnnadvisor_graph as graph;
pub use gnnadvisor_models as models;
pub use gnnadvisor_tensor as tensor;
