//! Community-aware node renumbering in action (Section 6.1, Figure 12).
//!
//! Generates a community graph with *shuffled* node ids, runs Louvain +
//! per-community RCM, and shows how the permutation changes edge locality,
//! cache hit rate, and DRAM traffic during aggregation.
//!
//! ```sh
//! cargo run --release --example community_locality
//! ```

use gnnadvisor_repro::core::input::AggOrder;
use gnnadvisor_repro::core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_repro::gpu::GpuSpec;
use gnnadvisor_repro::graph::community::{louvain, LouvainConfig};
use gnnadvisor_repro::graph::generators::{community_graph, CommunityParams};
use gnnadvisor_repro::graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_repro::graph::stats::locality_score;

fn main() {
    let params = CommunityParams {
        num_nodes: 20_000,
        num_edges: 400_000,
        mean_community: 100,
        community_size_cv: 0.3,
        inter_fraction: 0.08,
        shuffle_ids: true,
    };
    let (graph, truth) = community_graph(&params, 7).expect("generator parameters are valid");
    let truth_communities = truth.iter().collect::<std::collections::HashSet<_>>().len();
    println!(
        "latent-community graph: {} nodes, {} edges, {} planted communities",
        graph.num_nodes(),
        graph.num_edges(),
        truth_communities
    );

    // Step 1 of the pipeline: Louvain community detection.
    let detected = louvain(&graph, &LouvainConfig::default());
    println!(
        "louvain: {} communities found, modularity {:.3}",
        detected.num_communities, detected.modularity
    );

    // Steps 2-3: per-community RCM and the id remapping.
    let result = renumber(&graph, &RenumberConfig::default()).expect("renumbering runs");
    let reordered = graph
        .permute(&result.permutation)
        .expect("permutation is valid");
    println!("edge locality (fraction of edges within a 256-id window):");
    println!(
        "  before renumbering: {:.1}%",
        locality_score(&graph, 256) * 100.0
    );
    println!(
        "  after renumbering:  {:.1}%",
        locality_score(&reordered, 256) * 100.0
    );
    println!(
        "mean edge span: {:.0} -> {:.0}",
        graph.mean_edge_span(),
        reordered.mean_edge_span()
    );

    // Effect on the simulated aggregation kernel (Figure 12b). The pass
    // runs at the full 96-dim embedding (GIN-style), whose 7.7 MB feature
    // matrix exceeds the P6000's 3 MB L2 — the regime where renumbering
    // pays off.
    let spec = GpuSpec::quadro_p6000();
    for (label, renum) in [("w/o renumbering", false), ("w/  renumbering", true)] {
        let advisor = Advisor::new(
            &graph,
            96,
            16,
            10,
            AggOrder::AggregateThenUpdate,
            AdvisorConfig {
                renumber: Some(renum),
                spec: spec.clone(),
                ..Default::default()
            },
        )
        .expect("runtime builds");
        let metrics = advisor.aggregate(96).expect("aggregation runs");
        println!(
            "{label}: {:.4} ms, cache hit rate {:.1}%, DRAM {:.2} MB",
            metrics.time_ms,
            metrics.cache_hit_rate() * 100.0,
            metrics.dram_bytes() as f64 / 1e6
        );
    }
}
