//! Head-to-head framework comparison on a Table 1 dataset (the Figure
//! 8/10 experiment in miniature): GNNAdvisor vs DGL, PyG, GunRock, and the
//! node-/edge-centric strawmen, with per-kernel metric breakdowns.
//!
//! ```sh
//! cargo run --release --example framework_comparison [dataset] [scale]
//! # e.g. cargo run --release --example framework_comparison artist 0.05
//! ```

use gnnadvisor_repro::core::frameworks::{aggregate_with, Framework};
use gnnadvisor_repro::core::input::AggOrder;
use gnnadvisor_repro::core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_repro::datasets::table1_by_name;
use gnnadvisor_repro::gpu::{Engine, GpuSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("soc-BlogCatalog");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);

    let spec = table1_by_name(name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}; see Table 1 for names");
        std::process::exit(1);
    });
    let ds = spec.generate(scale).expect("dataset generates");
    println!(
        "{} (type {}, scale {scale}): {} nodes, {} edges, dim {}",
        spec.name,
        spec.ty.label(),
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.feat_dim
    );

    let gpu = GpuSpec::quadro_p6000();
    let engine = Engine::new(gpu.clone());
    let advisor = Advisor::new(
        &ds.graph,
        ds.feat_dim,
        16,
        ds.num_classes,
        AggOrder::UpdateThenAggregate,
        AdvisorConfig {
            spec: gpu,
            ..Default::default()
        },
    )
    .expect("runtime builds");

    let dim = 16; // GCN-style aggregation at the hidden dimension
    println!("\none aggregation pass at dim {dim}:\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "framework", "time (ms)", "SM eff", "cache hit", "DRAM (MB)", "atomics"
    );
    let mut advisor_ms = 0.0;
    for fw in [
        Framework::GnnAdvisor,
        Framework::Dgl,
        Framework::Pyg,
        Framework::Gunrock,
        Framework::NodeCentric,
        Framework::EdgeCentric,
    ] {
        let adv = (fw == Framework::GnnAdvisor).then_some(&advisor);
        let run = aggregate_with(fw, &engine, &ds.graph, dim, adv).expect("strategy runs");
        if fw == Framework::GnnAdvisor {
            advisor_ms = run.total_ms();
        }
        println!(
            "{:<14} {:>10.4} {:>9.1}% {:>11.1}% {:>12.2} {:>10}",
            fw.name(),
            run.total_ms(),
            run.mean_sm_efficiency() * 100.0,
            run.cache_hit_rate() * 100.0,
            run.dram_bytes() as f64 / 1e6,
            run.atomic_ops(),
        );
    }
    println!("\nGNNAdvisor parameters: {:?}", advisor.params());
    println!("reference time: {advisor_ms:.4} ms — divide any row by it for the speedup");
}
