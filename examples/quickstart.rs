//! Quickstart: run a GCN on a synthetic community graph with GNNAdvisor
//! and compare against a node-centric baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gnnadvisor_repro::core::frameworks::{aggregate_with, Framework};
use gnnadvisor_repro::core::input::AggOrder;
use gnnadvisor_repro::core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_repro::gpu::{Engine, GpuSpec};
use gnnadvisor_repro::graph::generators::{community_graph, CommunityParams};
use gnnadvisor_repro::models::{Gcn, ModelExec};
use gnnadvisor_repro::tensor::init::random_features;

fn main() {
    // 1. Build (or load) a graph. Here: a 10k-node power-law community
    //    graph with shuffled ids, the structure of a typical GNN input.
    let params = CommunityParams {
        num_nodes: 10_000,
        num_edges: 200_000,
        mean_community: 80,
        community_size_cv: 0.3,
        inter_fraction: 0.1,
        shuffle_ids: true,
    };
    let (graph, _) = community_graph(&params, 42).expect("generator parameters are valid");
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // 2. Build the GNNAdvisor runtime. Input extraction, parameter
    //    selection (Eq. 2-4), community-aware renumbering, group
    //    partitioning, and shared-memory layout all happen here.
    let feat_dim = 96;
    let num_classes = 10;
    let advisor = Advisor::new(
        &graph,
        feat_dim,
        16, // hidden dim
        num_classes,
        AggOrder::UpdateThenAggregate,
        AdvisorConfig::default(),
    )
    .expect("runtime builds");
    println!(
        "chosen params: gs={}, tpb={}, dw={}, shared={}, renumber={}",
        advisor.params().group_size,
        advisor.params().threads_per_block,
        advisor.params().dim_workers,
        advisor.params().use_shared,
        advisor.params().renumber,
    );

    // 3. Run a 2-layer GCN forward pass: real embeddings + simulated GPU
    //    metrics in one call.
    let engine = Engine::new(GpuSpec::quadro_p6000());
    let features = random_features(graph.num_nodes(), feat_dim, 7);
    let exec = ModelExec::new(&engine, &graph, Framework::GnnAdvisor, Some(&advisor));
    let model = Gcn::paper_default(feat_dim, num_classes, 0);
    let result = model.forward(&exec, &features).expect("forward pass runs");
    println!(
        "GCN forward: {:.3} ms simulated, output {}x{}",
        result.metrics.total_ms(),
        result.output.rows(),
        result.output.cols()
    );

    // 4. Compare one aggregation pass against the node-centric strawman.
    let ours = aggregate_with(Framework::GnnAdvisor, &engine, &graph, 16, Some(&advisor))
        .expect("advisor aggregation runs");
    let baseline = aggregate_with(Framework::NodeCentric, &engine, &graph, 16, None)
        .expect("baseline aggregation runs");
    println!(
        "aggregation: GNNAdvisor {:.4} ms vs node-centric {:.4} ms ({:.2}x)",
        ours.total_ms(),
        baseline.total_ms(),
        baseline.total_ms() / ours.total_ms()
    );
}
