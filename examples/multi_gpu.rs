//! Multi-GPU scaling (the paper's Section 8.7 future-work extension).
//!
//! Partitions a community graph across 1–8 simulated devices and shows how
//! community-aware renumbering shrinks the halo exchange, turning poor
//! scaling into near-linear scaling.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use gnnadvisor_repro::core::multi_gpu::{run_multi_gpu_aggregation, MultiGpuConfig};
use gnnadvisor_repro::core::RuntimeParams;
use gnnadvisor_repro::graph::generators::{community_graph, CommunityParams};
use gnnadvisor_repro::graph::reorder::{renumber, RenumberConfig};

fn main() {
    let params = CommunityParams {
        num_nodes: 30_000,
        num_edges: 700_000,
        mean_community: 120,
        community_size_cv: 0.3,
        inter_fraction: 0.08,
        shuffle_ids: true,
    };
    let (shuffled, _) = community_graph(&params, 11).expect("generator parameters are valid");
    let r = renumber(&shuffled, &RenumberConfig::default()).expect("renumbering runs");
    let ordered = shuffled
        .permute(&r.permutation)
        .expect("permutation is valid");
    println!(
        "graph: {} nodes, {} edges; {} communities found",
        shuffled.num_nodes(),
        shuffled.num_edges(),
        r.num_communities
    );

    let run_params = RuntimeParams {
        renumber: false,
        ..RuntimeParams::default()
    };
    let dim = 64;
    println!("\naggregation at dim {dim}, NVLink-class interconnect:\n");
    println!(
        "{:<6} {:>16} {:>12} {:>16} {:>12}",
        "GPUs", "shuffled (ms)", "halo (MB)", "renumbered (ms)", "halo (MB)"
    );
    let mut single_ms = (0.0, 0.0);
    for gpus in [1usize, 2, 4, 8] {
        let cfg = MultiGpuConfig {
            num_gpus: gpus,
            ..Default::default()
        };
        let a = run_multi_gpu_aggregation(&shuffled, dim, run_params, &cfg).expect("runs");
        let b = run_multi_gpu_aggregation(&ordered, dim, run_params, &cfg).expect("runs");
        if gpus == 1 {
            single_ms = (a.elapsed_ms, b.elapsed_ms);
        }
        println!(
            "{:<6} {:>10.4} ({:.2}x) {:>12.2} {:>10.4} ({:.2}x) {:>12.2}",
            gpus,
            a.elapsed_ms,
            a.speedup_over(single_ms.0),
            a.halo_bytes as f64 / 1e6,
            b.elapsed_ms,
            b.speedup_over(single_ms.1),
            b.halo_bytes as f64 / 1e6,
        );
    }
    println!(
        "\nrenumbering keeps communities inside partitions, cutting the halo\n\
         exchange and extending the paper's locality argument across devices."
    );
}
