//! The Modeling & Estimating loop (Section 7): analytical parameter
//! decisions, the evolutionary search, and profile-guided tuning against
//! the simulated GPU.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use gnnadvisor_repro::core::input::{extract, AggOrder};
use gnnadvisor_repro::core::kernels::advisor::AdvisorKernel;
use gnnadvisor_repro::core::memory::organize::organize_shared;
use gnnadvisor_repro::core::tuning::estimator::{Estimator, EstimatorConfig};
use gnnadvisor_repro::core::tuning::model;
use gnnadvisor_repro::core::workload::group::partition_groups;
use gnnadvisor_repro::core::RuntimeParams;
use gnnadvisor_repro::gpu::{BlockResources, Engine, GpuSpec, Workload, DEFAULT_REGS_PER_THREAD};
use gnnadvisor_repro::graph::generators::{community_graph, CommunityParams};

fn main() {
    let params = CommunityParams {
        num_nodes: 15_000,
        num_edges: 450_000,
        mean_community: 90,
        community_size_cv: 0.4,
        inter_fraction: 0.1,
        shuffle_ids: true,
    };
    let (graph, _) = community_graph(&params, 99).expect("generator parameters are valid");
    let spec = GpuSpec::quadro_p6000();
    let engine = Engine::new(spec.clone());
    let input = extract(&graph, 96, 16, 10, AggOrder::UpdateThenAggregate);
    println!(
        "input: N={}, E={}, avg deg {:.1}, deg stddev {:.1}, alpha {:.3}",
        input.num_nodes,
        input.num_edges,
        input.avg_degree,
        input.degree_stddev,
        input.alpha()
    );

    // Profile-guided fitness: actually launch the kernel on the simulator.
    let simulate = |p: &RuntimeParams| -> f64 {
        let groups = match partition_groups(&graph, p.group_size) {
            Ok(g) => g,
            Err(_) => return f64::INFINITY,
        };
        let layout = organize_shared(&groups, p.groups_per_block());
        let resources = BlockResources {
            regs_per_thread: DEFAULT_REGS_PER_THREAD,
            smem_bytes: layout.shared_bytes(16),
            threads: p.threads_per_block,
        };
        let fits = spec.occupancy_limit(&resources).is_launchable();
        let layout_ref = (p.use_shared && fits).then_some(&layout);
        let kernel = AdvisorKernel::new(&graph, &groups, layout_ref, 16, *p);
        engine
            .submit(&mut engine.lock_context(), Workload::Kernel(&kernel))
            .map(|m| m.time_ms())
            .unwrap_or(f64::INFINITY)
    };

    // 1. Analytical Modeling (Eq. 2-4) over a coarse grid.
    let analytical = model::decide(&input, &spec);
    println!(
        "\nanalytical decision: gs={}, tpb={}, dw={} -> {:.4} ms simulated",
        analytical.group_size,
        analytical.threads_per_block,
        analytical.dim_workers,
        simulate(&analytical)
    );

    // 2. Evolutionary Estimating with the analytical fitness (fast).
    let est = Estimator::new(input.clone(), spec.clone(), EstimatorConfig::default());
    let evolved = est.tune();
    println!(
        "estimating (model fitness): gs={}, tpb={}, dw={} -> {:.4} ms simulated",
        evolved.group_size,
        evolved.threads_per_block,
        evolved.dim_workers,
        simulate(&evolved)
    );

    // 3. Profile-guided Estimating: fitness = the simulated kernel itself
    //    (the full optimization loop of Figure 1).
    let profiled = est.tune_with(|p| simulate(p));
    println!(
        "estimating (profile-guided): gs={}, tpb={}, dw={} -> {:.4} ms simulated",
        profiled.group_size,
        profiled.threads_per_block,
        profiled.dim_workers,
        simulate(&profiled)
    );

    // Show the latency landscape along group size for context (Fig. 11a).
    println!("\ngroup-size landscape (tpb=256, dw=16):");
    for gs in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let p = RuntimeParams {
            group_size: gs,
            ..RuntimeParams::default()
        };
        println!("  gs={gs:<4} -> {:.4} ms", simulate(&p));
    }
}
