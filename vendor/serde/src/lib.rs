//! Offline stand-in for serde, JSON-emission only.
//!
//! The workspace only ever *serializes* (experiment results to pretty JSON
//! via `serde_json::to_string_pretty`); nothing deserializes. This stub
//! therefore models serialization as a single concrete capability — "write
//! yourself into a [`json::Emitter`]" — and keeps `Deserialize` as a marker
//! trait so existing `#[derive(Deserialize)]` attributes stay valid.

pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as JSON.
pub trait Serialize {
    /// Appends this value's JSON representation to the emitter.
    fn serialize_json(&self, e: &mut json::Emitter);
}

/// Marker trait kept so `#[derive(Deserialize)]` compiles; no input format
/// is implemented (nothing in the workspace parses JSON back).
pub trait Deserialize {}

pub mod json {
    //! The JSON writer behind [`crate::Serialize`].

    /// An append-only JSON emitter with optional two-space pretty printing.
    #[derive(Debug)]
    pub struct Emitter {
        out: String,
        pretty: bool,
        /// One entry per open container: `true` until its first item.
        firsts: Vec<bool>,
    }

    impl Emitter {
        /// Creates an emitter; `pretty` enables two-space indentation.
        pub fn new(pretty: bool) -> Self {
            Self {
                out: String::new(),
                pretty,
                firsts: Vec::new(),
            }
        }

        /// Returns the accumulated JSON text.
        pub fn finish(self) -> String {
            self.out
        }

        fn item_separator(&mut self) {
            if let Some(first) = self.firsts.last_mut() {
                if !*first {
                    self.out.push(',');
                }
                *first = false;
            }
            if self.pretty {
                self.out.push('\n');
                for _ in 0..self.firsts.len() {
                    self.out.push_str("  ");
                }
            }
        }

        fn close(&mut self, delim: char, was_empty: bool) {
            if self.pretty && !was_empty {
                self.out.push('\n');
                for _ in 0..self.firsts.len() {
                    self.out.push_str("  ");
                }
            }
            self.out.push(delim);
        }

        /// Opens a JSON object.
        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.firsts.push(true);
        }

        /// Emits one `"key": value` member.
        pub fn field<T: crate::Serialize + ?Sized>(&mut self, key: &str, value: &T) {
            self.item_separator();
            self.emit_str(key);
            self.out.push(':');
            if self.pretty {
                self.out.push(' ');
            }
            value.serialize_json(self);
        }

        /// Closes the innermost object.
        pub fn end_object(&mut self) {
            let was_empty = self.firsts.pop().unwrap_or(true);
            self.close('}', was_empty);
        }

        /// Opens a JSON array.
        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.firsts.push(true);
        }

        /// Emits one array element.
        pub fn element<T: crate::Serialize + ?Sized>(&mut self, value: &T) {
            self.item_separator();
            value.serialize_json(self);
        }

        /// Closes the innermost array.
        pub fn end_array(&mut self) {
            let was_empty = self.firsts.pop().unwrap_or(true);
            self.close(']', was_empty);
        }

        /// Emits an escaped JSON string.
        pub fn emit_str(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }

        /// Emits a pre-formatted JSON token (number, `true`, `null`, ...).
        pub fn emit_raw(&mut self, token: &str) {
            self.out.push_str(token);
        }
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, e: &mut json::Emitter) {
                e.emit_raw(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, e: &mut json::Emitter) {
                if self.is_finite() {
                    e.emit_raw(&format!("{self:?}"));
                } else {
                    // JSON has no NaN/Inf; serde_json refuses, we emit null.
                    e.emit_raw("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, e: &mut json::Emitter) {
        e.emit_raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, e: &mut json::Emitter) {
        e.emit_str(self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, e: &mut json::Emitter) {
        e.emit_str(self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, e: &mut json::Emitter) {
        (**self).serialize_json(e);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, e: &mut json::Emitter) {
        match self {
            Some(v) => v.serialize_json(e),
            None => e.emit_raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, e: &mut json::Emitter) {
        e.begin_array();
        for item in self {
            e.element(item);
        }
        e.end_array();
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, e: &mut json::Emitter) {
        self.as_slice().serialize_json(e);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, e: &mut json::Emitter) {
        self.as_slice().serialize_json(e);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, e: &mut json::Emitter) {
                e.begin_array();
                $(e.element(&self.$idx);)+
                e.end_array();
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(v: &T, pretty: bool) -> String {
        let mut e = json::Emitter::new(pretty);
        v.serialize_json(&mut e);
        e.finish()
    }

    #[test]
    fn scalars_render_as_json_tokens() {
        assert_eq!(render(&3u32, false), "3");
        assert_eq!(render(&-7i64, false), "-7");
        assert_eq!(render(&true, false), "true");
        assert_eq!(render(&1.5f64, false), "1.5");
        assert_eq!(render(&f64::NAN, false), "null");
        assert_eq!(render(&"a\"b", false), "\"a\\\"b\"");
        assert_eq!(render(&Option::<u32>::None, false), "null");
    }

    #[test]
    fn containers_nest_and_pretty_print() {
        assert_eq!(render(&vec![1u32, 2, 3], false), "[1,2,3]");
        assert_eq!(render(&Vec::<u32>::new(), true), "[]");
        assert_eq!(render(&vec![1u32], true), "[\n  1\n]");
        let mut e = json::Emitter::new(true);
        e.begin_object();
        e.field("x", &1u32);
        e.field("ys", &vec![2u32]);
        e.end_object();
        assert_eq!(e.finish(), "{\n  \"x\": 1,\n  \"ys\": [\n    2\n  ]\n}");
    }
}
