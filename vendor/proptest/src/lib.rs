//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! The `proptest!` macro expands each property into an ordinary `#[test]`
//! that draws `Config::cases` random inputs from the argument strategies
//! and runs the body on each. The per-test RNG is seeded from a hash of
//! the test's module path and name, so failures reproduce exactly from run
//! to run. Unlike upstream proptest there is no shrinking: a failing case
//! panics with the ordinary assert message (inputs are printable via the
//! `Debug` bounds the strategies already require upstream).

pub mod test_runner {
    //! Configuration and the deterministic per-test RNG.

    /// Subset of proptest's `Config` that the workspace touches.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic test RNG (SplitMix64 seeded by test identity).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's module path and name (FNV-1a).
        pub fn for_test(module: &str, name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in module.bytes().chain([b':']).chain(name.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot sample from an empty choice set");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for random values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter behind [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between boxed strategies (behind `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].new_value(rng)
        }
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies. The `From`
    /// impls pin bare range literals like `0..200` to `usize`, matching
    /// upstream proptest's inference behaviour.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec`s with random length and elements.
    pub struct VecStrategy<S> {
        element: S,
        length: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `length`.
    pub fn vec<S: Strategy>(element: S, length: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            length: length.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.length.min + rng.below(self.length.max - self.length.min + 1);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import every test file uses.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Expands property functions into plain `#[test]`s over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner_rng =
                $crate::test_runner::TestRng::for_test(module_path!(), stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut runner_rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Property assertion; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_identity() {
        let mut a = TestRng::for_test("m", "t");
        let mut b = TestRng::for_test("m", "t");
        let mut c = TestRng::for_test("m", "other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn composite_strategies_generate_in_bounds() {
        let mut rng = TestRng::for_test("m", "bounds");
        let strat = crate::collection::vec((0u32..10, 5u64..=6), 2..5);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 10);
                assert!(b == 5 || b == 6);
            }
        }
        let mapped = (0usize..4).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert!(mapped.new_value(&mut rng) % 2 == 0);
        }
        let choice = prop_oneof![Just(1u32), Just(9)];
        for _ in 0..50 {
            let x = choice.new_value(&mut rng);
            assert!(x == 1 || x == 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts pass, multiple properties
        /// in one block expand.
        #[test]
        fn macro_expansion_binds_args(x in 0u64..100, ys in crate::collection::vec(0u8..4, 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y > 3).count(), 0);
            prop_assert_ne!(x, 100);
        }

        #[test]
        fn second_property_also_expands(x in 1usize..10) {
            prop_assert!(x >= 1);
        }
    }
}
