//! Offline stand-in for serde's derive macros.
//!
//! The build environment has no registry access, so this crate re-implements
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the local
//! `serde` stub without `syn`/`quote`: the item is hand-parsed from the raw
//! `TokenStream` and the impl is emitted as source text.
//!
//! Supported shapes — the only ones this workspace uses:
//! - structs with named fields (serialized as JSON objects), and
//! - enums whose variants all carry no data (serialized as JSON strings).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    /// Named struct fields, in declaration order.
    Struct(Vec<String>),
    /// Unit enum variants, in declaration order.
    Enum(Vec<String>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Skips `#[...]` attribute pairs (including doc comments).
fn skip_attributes(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        toks.next(); // the bracketed attribute body
    }
}

/// Skips `pub` / `pub(crate)` style visibility.
fn skip_visibility(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attributes(&mut toks);
    skip_visibility(&mut toks);
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde stub derive: generic types are not supported")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde stub derive: tuple/unit structs are not supported")
            }
            Some(_) => continue,
            None => panic!("serde stub derive: expected a braced body"),
        }
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_fields(body)),
        "enum" => Kind::Enum(parse_enum_variants(body)),
        other => panic!("serde stub derive: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        skip_visibility(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde stub derive: unsupported field syntax at {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to a top-level comma, tracking angle-bracket
        // depth so `Vec<(u64, u64)>` style types don't split early.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && depth == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attributes(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("serde stub derive: unsupported variant syntax at {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => {
                panic!("serde stub derive: enum variants with payloads are not supported")
            }
            Some(other) => panic!("serde stub derive: expected `,`, got {other:?}"),
            None => break,
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut src = String::from("__e.begin_object();");
            for f in fields {
                src.push_str(&format!("__e.field(\"{f}\", &self.{f});"));
            }
            src.push_str("__e.end_object();");
            src
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!("__e.emit_str(match self {{ {arms} }});")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {} {{\n\
             fn serialize_json(&self, __e: &mut ::serde::json::Emitter) {{ {} }}\n\
         }}",
        item.name, body
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {} {{}}",
        item.name
    )
    .parse()
    .expect("serde stub derive: generated impl parses")
}
