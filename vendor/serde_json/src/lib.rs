//! Offline stand-in for serde_json's output half: [`to_string`] and
//! [`to_string_pretty`] over the local `serde` stub. No parser — nothing in
//! the workspace reads JSON back.

use std::fmt;

/// Serialization error. The stub emitter is infallible, so this is never
/// constructed; it exists to keep `serde_json::Result` signatures intact.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T>(value: &T) -> Result<String>
where
    T: serde::Serialize + ?Sized,
{
    let mut e = serde::json::Emitter::new(false);
    value.serialize_json(&mut e);
    Ok(e.finish())
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T>(value: &T) -> Result<String>
where
    T: serde::Serialize + ?Sized,
{
    let mut e = serde::json::Emitter::new(true);
    value.serialize_json(&mut e);
    Ok(e.finish())
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_and_compact_agree_modulo_whitespace() {
        let v = vec![vec![1u32, 2], vec![3]];
        let compact = super::to_string(&v).expect("infallible");
        let pretty = super::to_string_pretty(&v).expect("infallible");
        assert_eq!(compact, "[[1,2],[3]]");
        let squeezed: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(squeezed, compact);
    }
}
