//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! Everything in the reproduction is seeded (`SmallRng::seed_from_u64`), so
//! a single deterministic generator suffices: SplitMix64, which passes
//! BigCrush-level smoke tests and is more than adequate for synthetic graph
//! generation and evolutionary search. The stream differs from upstream
//! rand's `SmallRng` (xoshiro), which is fine — the workspace only relies
//! on determinism per seed, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic per seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform sample of `Self` from an RNG — the stand-in for rand's
/// `Standard` distribution.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can produce one uniform sample — the stand-in for rand's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                // Modulo bias is negligible for simulation-sized spans.
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as StandardSample>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * <$t as StandardSample>::sample(rng)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the "standard" distribution of `T` (floats
    /// uniform in `[0, 1)`, integers uniform over the full domain).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// Small, fast, seedable generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&v));
            let f = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
        // The full span is reachable.
        let lo = (0..200).map(|_| rng.gen_range(0u32..3)).min();
        let hi = (0..200).map(|_| rng.gen_range(0u32..3)).max();
        assert_eq!((lo, hi), (Some(0), Some(2)));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "got {heads}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
