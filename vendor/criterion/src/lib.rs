//! Offline stand-in for the slice of `criterion` this workspace uses.
//!
//! `cargo bench` still runs every registered benchmark and prints a mean
//! wall-clock per iteration; there is no statistical analysis, HTML report,
//! or outlier rejection. Good enough to keep the bench targets compiling
//! and to eyeball regressions offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub does one warm-up iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Upper bound on the measured time spent per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark: a warm-up iteration, then up to `sample_size`
    /// timed iterations bounded by the measurement time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher); // warm-up
        bencher.elapsed = Duration::ZERO;
        bencher.iters = 0;
        let started = Instant::now();
        let mut samples = 0;
        while samples < self.sample_size && started.elapsed() < self.measurement_time {
            f(&mut bencher);
            samples += 1;
        }
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!("  {id}: {:.3} ms/iter ({samples} samples)", mean * 1e3);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs and times one iteration of the benchmarked routine.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Registers benchmark functions under a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_secs(5))
            .bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4, "one warm-up plus three samples");
    }
}
