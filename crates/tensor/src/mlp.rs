//! Multi-layer perceptron (the GIN update function).

use crate::linear::Linear;
use crate::matrix::Matrix;
use crate::ops::relu_inplace;
use crate::Result;

/// A stack of [`Linear`] layers with ReLU between them (none after the
/// last), matching the 2-layer MLP that GIN applies after aggregation.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP through the given dimension chain, e.g. `[64, 64, 64]`
    /// produces two 64→64 layers. Deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(w[0], w[1], seed.wrapping_add(i as u64)))
            .collect();
        Self { layers }
    }

    /// Number of linear layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers
            .first()
            .expect("non-empty by construction")
            .in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers
            .last()
            .expect("non-empty by construction")
            .out_dim()
    }

    /// Forward pass with ReLU between layers.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut h = self.layers[0].forward(x)?;
        for layer in &self.layers[1..] {
            relu_inplace(&mut h);
            h = layer.forward(&h)?;
        }
        Ok(h)
    }

    /// Total FLOPs of a forward pass over `rows` inputs.
    pub fn flops(&self, rows: usize) -> u64 {
        self.layers.iter().map(|l| l.flops(rows)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_chain() {
        let mlp = Mlp::new(&[8, 16, 4], 0);
        assert_eq!(mlp.depth(), 2);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 4);
    }

    #[test]
    fn forward_shape() {
        let mlp = Mlp::new(&[3, 5, 2], 1);
        let x = Matrix::zeros(7, 3);
        let y = mlp.forward(&x).unwrap();
        assert_eq!(y.shape(), (7, 2));
    }

    #[test]
    fn flops_sum_over_layers() {
        let mlp = Mlp::new(&[4, 8, 2], 0);
        assert_eq!(mlp.flops(3), 2 * 3 * 4 * 8 + 2 * 3 * 8 * 2);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_dims_panics() {
        Mlp::new(&[4], 0);
    }

    #[test]
    fn deterministic() {
        let a = Mlp::new(&[4, 4], 9);
        let b = Mlp::new(&[4, 4], 9);
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        assert_eq!(a.forward(&x).unwrap(), b.forward(&x).unwrap());
    }
}
