//! Dense linear-algebra substrate for the GNN **update** phase.
//!
//! GNN layers interleave sparse aggregation (handled by the GPU-simulated
//! kernels in `gnnadvisor-core`) with dense NN operations — the paper calls
//! these DGEMM / MLP updates and notes they are "well-suited for GPU-based
//! acceleration" via cuBLAS. This crate supplies the numerical side:
//! a row-major [`Matrix`], a blocked [`gemm`], element-wise [`ops`],
//! [`linear::Linear`] layers and [`mlp::Mlp`] stacks with deterministic
//! Xavier initialization.
//!
//! The *timing* of the update phase on the simulated GPU is modeled by
//! `gnnadvisor-gpu`'s GEMM cost model; this crate computes the actual
//! numbers so that end-to-end model outputs are real and testable.

pub mod gemm;
pub mod init;
pub mod linear;
pub mod matrix;
pub mod mlp;
pub mod ops;

pub use gemm::{gemm, gemm_into};
pub use linear::Linear;
pub use matrix::Matrix;
pub use mlp::Mlp;

/// Errors produced by shape-checked tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description including the offending shapes.
        context: String,
    },
}

impl core::fmt::Display for TensorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TensorError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-local result alias.
pub type Result<T> = core::result::Result<T, TensorError>;
