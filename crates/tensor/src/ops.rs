//! Element-wise and row-wise tensor operations used by GNN layers.

use crate::matrix::Matrix;

/// In-place ReLU.
pub fn relu_inplace(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Adds a bias vector to every row.
///
/// # Panics
///
/// Panics if `bias.len() != m.cols()`.
pub fn add_bias_inplace(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), m.cols(), "bias length must match column count");
    for r in 0..m.rows() {
        for (v, b) in m.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Scales every element by `s`.
pub fn scale_inplace(m: &mut Matrix, s: f32) {
    for v in m.as_mut_slice() {
        *v *= s;
    }
}

/// `a += b`, element-wise.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add_inplace(a: &mut Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in add_inplace");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += y;
    }
}

/// `a += s * b`, element-wise (AXPY).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn axpy_inplace(a: &mut Matrix, s: f32, b: &Matrix) {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in axpy_inplace");
    for (x, y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += s * y;
    }
}

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows_inplace(m: &mut Matrix) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Index of the maximum element of each row (prediction readout).
pub fn argmax_rows(m: &Matrix) -> Vec<usize> {
    (0..m.rows())
        .map(|r| {
            m.row(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// L2 norm of the whole matrix, used by convergence checks in tests.
pub fn frobenius_norm(m: &Matrix) -> f32 {
    m.as_slice().iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Concatenates two matrices horizontally (`[a | b]`), as GraphSage does
/// with the self and neighbor embeddings. Returns
/// [`TensorError::ShapeMismatch`] if the row counts differ — serving
/// paths reach this with externally shaped inputs, so a mismatch must
/// surface as an error, not a process abort.
pub fn hconcat(a: &Matrix, b: &Matrix) -> crate::Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(crate::TensorError::ShapeMismatch {
            context: format!(
                "hconcat row counts differ: {}x{} vs {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let mut out = Matrix::zeros(a.rows(), a.cols() + b.cols());
    for r in 0..a.rows() {
        out.row_mut(r)[..a.cols()].copy_from_slice(a.row(r));
        out.row_mut(r)[a.cols()..].copy_from_slice(b.row(r));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        relu_inplace(&mut m);
        assert_eq!(m.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn bias_broadcasts_per_row() {
        let mut m = Matrix::zeros(2, 2);
        add_bias_inplace(&mut m, &[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        softmax_rows_inplace(&mut m);
        for r in 0..2 {
            let s: f32 = m.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(m.row(r).iter().all(|&v| v >= 0.0));
        }
        assert!(m.get(0, 2) > m.get(0, 0), "softmax is monotone");
    }

    #[test]
    fn argmax_picks_largest() {
        let m = Matrix::from_vec(2, 3, vec![0.1, 0.9, 0.0, 3.0, 1.0, 2.0]).unwrap();
        assert_eq!(argmax_rows(&m), vec![1, 0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![10.0, 10.0]).unwrap();
        axpy_inplace(&mut a, 0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0]);
    }

    #[test]
    fn hconcat_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = hconcat(&a, &b).expect("rows match");
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn hconcat_row_mismatch_is_a_typed_error() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        let err = hconcat(&a, &b).expect_err("row mismatch");
        let crate::TensorError::ShapeMismatch { context } = err;
        assert!(context.contains("hconcat"), "{context}");
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((frobenius_norm(&m) - 5.0).abs() < 1e-6);
    }
}
