//! Fully connected layer (`y = x · W + b`).

use crate::gemm::gemm;
use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::ops::add_bias_inplace;
use crate::Result;

/// A dense layer with weight `in_dim x out_dim` and bias `out_dim`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f32>,
}

impl Linear {
    /// Xavier-initialized layer, deterministic for a given seed.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Self {
            weight: xavier_uniform(in_dim, out_dim, seed),
            bias: vec![0.0; out_dim],
        }
    }

    /// Builds a layer from explicit parameters.
    pub fn from_parts(weight: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(
            weight.cols(),
            bias.len(),
            "bias length must match output dim"
        );
        Self { weight, bias }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Applies the layer to a batch of rows.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix> {
        let mut y = gemm(x, &self.weight)?;
        add_bias_inplace(&mut y, &self.bias);
        Ok(y)
    }

    /// FLOP count of one forward pass over `rows` inputs, consumed by the
    /// GPU cost model for the update phase.
    pub fn flops(&self, rows: usize) -> u64 {
        2 * rows as u64 * self.in_dim() as u64 * self.out_dim() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_value() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        let layer = Linear::from_parts(w, vec![1.0, -1.0]);
        let x = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[4.0, 7.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let layer = Linear::new(3, 2, 0);
        let x = Matrix::zeros(4, 5);
        assert!(layer.forward(&x).is_err());
    }

    #[test]
    fn flops_formula() {
        let layer = Linear::new(16, 8, 0);
        assert_eq!(layer.flops(10), 2 * 10 * 16 * 8);
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_checks_bias() {
        Linear::from_parts(Matrix::zeros(2, 3), vec![0.0; 2]);
    }
}
