//! Row-major dense `f32` matrix.

use crate::{Result, TensorError};

/// A row-major dense matrix of `f32`.
///
/// Node-feature matrices are stored one node per row, which matches the
/// layout the simulated kernels assume when charging coalesced reads of an
/// embedding row.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                context: format!(
                    "buffer of {} elements for a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The full backing slice, row-major.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The full backing slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Size of the backing buffer in bytes, as charged to simulated global
    /// memory.
    pub fn bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let t = m.transpose();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), m.get(2, 0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn max_abs_diff_measures() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.5);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        Matrix::zeros(1, 1).get(0, 1);
    }
}
