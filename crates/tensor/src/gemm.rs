//! Blocked single-precision matrix multiply.
//!
//! The update phase of every GNN layer is one or more GEMMs (`X · W`).
//! The implementation uses the cache-friendly `i-k-j` loop order with row
//! blocking — simple, allocation-free in the inner loops, and fast enough
//! to run the paper's full dataset sweep on a laptop.

use crate::matrix::Matrix;
use crate::{Result, TensorError};

/// Row/column block edge for the tiled loops.
const BLOCK: usize = 64;

/// Computes `a · b`, allocating the output.
///
/// # Examples
///
/// ```
/// use gnnadvisor_tensor::{gemm, Matrix};
///
/// let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
/// let b = Matrix::from_vec(2, 1, vec![3.0, 4.0]).unwrap();
/// assert_eq!(gemm(&a, &b).unwrap().as_slice(), &[11.0]);
/// ```
pub fn gemm(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_into(a, b, &mut out)?;
    Ok(out)
}

/// Computes `out = a · b` into an existing buffer (must be zeroed or the
/// product is accumulated on top).
pub fn gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<()> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb || out.shape() != (m, n) {
        return Err(TensorError::ShapeMismatch {
            context: format!("gemm {m}x{ka} . {kb}x{n} -> {:?}", out.shape()),
        });
    }
    let k = ka;
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();

    for i0 in (0..m).step_by(BLOCK) {
        let i1 = (i0 + BLOCK).min(m);
        for k0 in (0..k).step_by(BLOCK) {
            let k1 = (k0 + BLOCK).min(k);
            for i in i0..i1 {
                let a_row = &a_data[i * k..(i + 1) * k];
                let out_row = &mut out_data[i * n..(i + 1) * n];
                for kk in k0..k1 {
                    let aik = a_row[kk];
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = &b_data[kk * n..(kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Reference triple-loop multiply used to validate [`gemm`] in tests.
#[doc(hidden)]
pub fn gemm_naive(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            context: format!("naive gemm {ka} vs {kb}"),
        });
    }
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..ka {
                acc += a.get(i, kk) * b.get(kk, j);
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matches_naive_on_odd_shapes() {
        // Sizes straddle the block edge to exercise remainder handling.
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 3), (65, 64, 63), (130, 70, 1)] {
            let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
            let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c * 5) % 11) as f32 - 5.0);
            let fast = gemm(&a, &b).unwrap();
            let slow = gemm_naive(&a, &b).unwrap();
            assert!(fast.max_abs_diff(&slow) < 1e-3, "mismatch at {m}x{k}x{n}");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(gemm(&a, &b).is_err());
        let mut out = Matrix::zeros(3, 3);
        let b_ok = Matrix::zeros(3, 2);
        assert!(
            gemm_into(&a, &b_ok, &mut out).is_err(),
            "wrong output shape"
        );
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let id = Matrix::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(gemm(&a, &id).unwrap(), a);
        assert_eq!(gemm(&id, &a).unwrap(), a);
    }
}
