//! Deterministic weight and feature initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Xavier/Glorot uniform initialization: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
/// Deterministic for a given seed.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bound = (6.0 / (rows + cols) as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// Random node features in `[0, 1)`, the stand-in for dataset feature files.
pub fn random_features(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(64, 32, 1);
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
        // Not degenerate: values differ.
        assert!(m.as_slice().iter().any(|&v| v != m.get(0, 0)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(xavier_uniform(8, 8, 7), xavier_uniform(8, 8, 7));
        assert_ne!(xavier_uniform(8, 8, 7), xavier_uniform(8, 8, 8));
        assert_eq!(random_features(4, 4, 3), random_features(4, 4, 3));
    }

    #[test]
    fn features_in_unit_interval() {
        let m = random_features(16, 16, 2);
        assert!(m.as_slice().iter().all(|&v| (0.0..1.0).contains(&v)));
    }
}
