//! Deterministic fault injection for the simulated device.
//!
//! Production serving is about staying correct and bounded-latency when
//! transfers flake, kernels stall, and deadlines pass — none of which the
//! happy-path simulator exercises. This module adds a *chaos layer* the
//! reliability machinery upstairs (`core::serving` retries and deadlines)
//! can be tested against, without giving up the workspace's determinism
//! contract:
//!
//! - A [`FaultConfig`] declares per-op probabilities: transfer failure,
//!   kernel slowdown (with a stretch factor), kernel timeout, and an
//!   optional device-reset instant on the simulated clock.
//! - A [`FaultPlan`] turns the config into per-op verdicts. Every verdict
//!   is a pure function of `(seed, op index)` — a SplitMix64 mix, no
//!   global RNG stream — so a `(config, seed)` pair is bit-reproducible
//!   at any `GNNADVISOR_SIM_THREADS` value: ops are numbered in submission
//!   order on the caller's thread, never inside the sharded block loop.
//! - Faults are *priced on the simulated clock*: a failed transfer still
//!   burns its cycles before failing (in a stream schedule it occupies the
//!   copy engine for its full duration), and a timed-out kernel holds its
//!   SM slots until the timeout fires.
//!
//! A plan is one run's state (it counts ops and tracks the reset clock);
//! to reproduce a run, build a fresh plan from the same `FaultConfig`.

use std::sync::Mutex;

use crate::{GpuError, Result};

/// What kind of injected fault killed an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A host↔device copy failed after burning its transfer time.
    TransferFailure,
    /// A kernel (or roofline GEMM) stalled past its timeout budget.
    KernelTimeout,
    /// The device reset at the configured instant, killing the op in
    /// flight.
    DeviceReset,
}

impl FaultKind {
    /// Short label for reports and error messages.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::TransferFailure => "transfer-failure",
            FaultKind::KernelTimeout => "kernel-timeout",
            FaultKind::DeviceReset => "device-reset",
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Declarative fault model: per-op probabilities plus an optional
/// device-reset instant. All draws come from a seeded hash, so the model
/// is a pure function of `(config, seed, op index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that one host↔device transfer fails (after burning its
    /// cycles), in `[0, 1]`.
    pub transfer_fail_prob: f64,
    /// Probability that one kernel/GEMM launch runs slow, in `[0, 1]`.
    pub kernel_slow_prob: f64,
    /// Elapsed-time multiplier applied to slowed kernels; must be finite
    /// and at least 1.
    pub kernel_slow_factor: f64,
    /// Probability that one kernel/GEMM launch times out (burns its
    /// cycles — stretched if also slowed — then fails), in `[0, 1]`.
    pub kernel_timeout_prob: f64,
    /// Simulated instant (milliseconds of cumulative submitted op time) at
    /// which the device resets once, killing the op in flight.
    pub device_reset_ms: Option<f64>,
    /// Seed of the per-op draws; equal `(config, seed)` pairs produce
    /// identical fault sequences.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            transfer_fail_prob: 0.0,
            kernel_slow_prob: 0.0,
            kernel_slow_factor: 2.0,
            kernel_timeout_prob: 0.0,
            device_reset_ms: None,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A config failing transfers and timing out kernels at `rate`, and
    /// slowing kernels 2x at the same rate — the CLI's `--fault-rate`
    /// shorthand.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        Self {
            transfer_fail_prob: rate,
            kernel_slow_prob: rate,
            kernel_slow_factor: 2.0,
            kernel_timeout_prob: rate / 2.0,
            device_reset_ms: None,
            seed,
        }
    }

    fn validate(&self) -> Result<()> {
        let prob = |name: &str, p: f64| -> Result<()> {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(GpuError::InvalidConfig {
                    reason: format!("{name} must be a probability in [0, 1], got {p}"),
                });
            }
            Ok(())
        };
        prob("transfer_fail_prob", self.transfer_fail_prob)?;
        prob("kernel_slow_prob", self.kernel_slow_prob)?;
        prob("kernel_timeout_prob", self.kernel_timeout_prob)?;
        if !(self.kernel_slow_factor.is_finite() && self.kernel_slow_factor >= 1.0) {
            return Err(GpuError::InvalidConfig {
                reason: format!(
                    "kernel_slow_factor must be finite and >= 1, got {}",
                    self.kernel_slow_factor
                ),
            });
        }
        if let Some(at) = self.device_reset_ms {
            if !(at.is_finite() && at >= 0.0) {
                return Err(GpuError::InvalidConfig {
                    reason: format!("device_reset_ms must be non-negative and finite, got {at}"),
                });
            }
        }
        Ok(())
    }
}

/// The verdict a plan hands one submitted op before pricing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum OpVerdict {
    /// The op proceeds normally.
    Ok,
    /// The op proceeds at `factor` times its normal elapsed time.
    Slow {
        /// Elapsed-time multiplier, `>= 1`.
        factor: f64,
    },
    /// The op burns its cycles, then fails with `kind`.
    Fail {
        /// The injected failure kind.
        kind: FaultKind,
    },
}

/// Mutable run state of one plan: the op counter and the reset clock.
#[derive(Debug)]
struct PlanState {
    next_op: u64,
    clock_ms: f64,
    reset_fired: bool,
}

/// One run's fault schedule, built from a validated [`FaultConfig`].
///
/// Attach it to an engine with
/// [`crate::EngineBuilder::fault_plan`]; every subsequent
/// [`crate::Engine::submit`] (and every op a [`crate::StreamSim`] over
/// that engine enqueues) consumes one op index and may come back as
/// [`GpuError::Fault`]. The plan is stateful — op indices advance and the
/// reset fires at most once — so build a fresh plan to reproduce a run.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    state: Mutex<PlanState>,
}

/// SplitMix64 finalizer: a well-mixed pure function of the input word.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from `(seed, op index, salt)`.
fn draw(seed: u64, index: u64, salt: u64) -> f64 {
    let word = splitmix64(seed ^ splitmix64(index.wrapping_add(salt.wrapping_mul(0x9E37))));
    // 53 mantissa bits -> [0, 1).
    (word >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Validates `config` and builds a plan with its op counter at zero.
    pub fn new(config: FaultConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            state: Mutex::new(PlanState {
                next_op: 0,
                clock_ms: 0.0,
                reset_fired: false,
            }),
        })
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// How many ops have consumed a verdict so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).next_op
    }

    /// Consumes the next op index and returns its verdict. `transfer`
    /// selects which probabilities apply. The verdict is a pure function
    /// of `(seed, index)`, so submission order alone determines the fault
    /// sequence.
    pub(crate) fn next_verdict(&self, transfer: bool) -> OpVerdict {
        let index = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let index = state.next_op;
            state.next_op += 1;
            index
        };
        let cfg = &self.config;
        if transfer {
            if draw(cfg.seed, index, 1) < cfg.transfer_fail_prob {
                return OpVerdict::Fail {
                    kind: FaultKind::TransferFailure,
                };
            }
            return OpVerdict::Ok;
        }
        if draw(cfg.seed, index, 2) < cfg.kernel_timeout_prob {
            return OpVerdict::Fail {
                kind: FaultKind::KernelTimeout,
            };
        }
        if draw(cfg.seed, index, 3) < cfg.kernel_slow_prob {
            return OpVerdict::Slow {
                factor: cfg.kernel_slow_factor,
            };
        }
        OpVerdict::Ok
    }

    /// Advances the plan's simulated clock by one op's priced time and
    /// reports whether the device-reset instant was crossed by it (the
    /// reset fires at most once).
    pub(crate) fn absorb_time(&self, time_ms: f64) -> Option<FaultKind> {
        let reset_at = self.config.device_reset_ms?;
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let start = state.clock_ms;
        state.clock_ms += time_ms;
        if !state.reset_fired && start <= reset_at && reset_at < state.clock_ms {
            state.reset_fired = true;
            return Some(FaultKind::DeviceReset);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config).expect("valid config")
    }

    #[test]
    fn verdicts_are_reproducible_per_seed() {
        let cfg = FaultConfig {
            transfer_fail_prob: 0.3,
            kernel_slow_prob: 0.2,
            kernel_timeout_prob: 0.1,
            seed: 99,
            ..FaultConfig::default()
        };
        let sequence = |cfg: &FaultConfig| -> Vec<OpVerdict> {
            let p = plan(cfg.clone());
            (0..200).map(|i| p.next_verdict(i % 3 == 0)).collect()
        };
        assert_eq!(sequence(&cfg), sequence(&cfg));
        let mut other = cfg.clone();
        other.seed = 100;
        assert_ne!(sequence(&cfg), sequence(&other), "seed must matter");
    }

    #[test]
    fn probabilities_gate_the_fault_classes() {
        // Zero everywhere: no verdict ever faults.
        let p = plan(FaultConfig::default());
        for i in 0..100 {
            assert_eq!(p.next_verdict(i % 2 == 0), OpVerdict::Ok);
        }
        // Certain transfer failure never touches kernels, and vice versa.
        let p = plan(FaultConfig {
            transfer_fail_prob: 1.0,
            seed: 5,
            ..FaultConfig::default()
        });
        assert_eq!(
            p.next_verdict(true),
            OpVerdict::Fail {
                kind: FaultKind::TransferFailure
            }
        );
        assert_eq!(p.next_verdict(false), OpVerdict::Ok);
        let p = plan(FaultConfig {
            kernel_timeout_prob: 1.0,
            seed: 5,
            ..FaultConfig::default()
        });
        assert_eq!(p.next_verdict(true), OpVerdict::Ok);
        assert_eq!(
            p.next_verdict(false),
            OpVerdict::Fail {
                kind: FaultKind::KernelTimeout
            }
        );
    }

    #[test]
    fn fault_rates_track_probabilities() {
        let p = plan(FaultConfig {
            transfer_fail_prob: 0.25,
            seed: 7,
            ..FaultConfig::default()
        });
        let fails = (0..4000)
            .filter(|_| matches!(p.next_verdict(true), OpVerdict::Fail { .. }))
            .count();
        let rate = fails as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn device_reset_fires_exactly_once() {
        let p = plan(FaultConfig {
            device_reset_ms: Some(10.0),
            ..FaultConfig::default()
        });
        assert_eq!(p.absorb_time(4.0), None);
        assert_eq!(p.absorb_time(4.0), None);
        // The op spanning the 10 ms instant dies; later ops are fine.
        assert_eq!(p.absorb_time(4.0), Some(FaultKind::DeviceReset));
        assert_eq!(p.absorb_time(100.0), None);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            FaultConfig {
                transfer_fail_prob: -0.1,
                ..FaultConfig::default()
            },
            FaultConfig {
                kernel_slow_prob: 1.5,
                ..FaultConfig::default()
            },
            FaultConfig {
                kernel_timeout_prob: f64::NAN,
                ..FaultConfig::default()
            },
            FaultConfig {
                kernel_slow_factor: 0.5,
                ..FaultConfig::default()
            },
            FaultConfig {
                device_reset_ms: Some(-1.0),
                ..FaultConfig::default()
            },
        ] {
            assert!(
                matches!(
                    FaultPlan::new(bad.clone()),
                    Err(GpuError::InvalidConfig { .. })
                ),
                "{bad:?} must be rejected"
            );
        }
    }
}
