//! Kernel and run metrics — the simulator's NVProf.

use serde::{Deserialize, Serialize};

/// Phase-attributed cycle breakdown of a launch (or a whole run): where
/// the elapsed simulated cycles went. Attribution is hierarchical and
/// exact — `compute + dram + atomic + launch == elapsed` always — so the
/// breakdown is a partition, not an overlap report: DRAM-bandwidth cycles
/// are attributed first (they bound the body from below), the atomic
/// serial chain claims what bandwidth cannot explain, and per-SM work
/// (issue, latency, imbalance tails) absorbs the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Cycles attributed to per-SM work: compute issue, exposed memory
    /// latency, and cross-SM tail imbalance.
    pub compute_cycles: u64,
    /// Cycles attributed to aggregate DRAM bandwidth demand.
    pub dram_cycles: u64,
    /// Cycles attributed to serialization on atomic hotspots.
    pub atomic_cycles: u64,
    /// Fixed kernel-launch overhead cycles.
    pub launch_cycles: u64,
}

impl PhaseBreakdown {
    /// Total cycles across all phases; equals the launch's
    /// `elapsed_cycles` (and, when accumulated over a run, the sum of the
    /// run's kernel `elapsed_cycles`).
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.dram_cycles + self.atomic_cycles + self.launch_cycles
    }

    /// Folds another breakdown into this one.
    pub fn add(&mut self, other: &PhaseBreakdown) {
        self.compute_cycles += other.compute_cycles;
        self.dram_cycles += other.dram_cycles;
        self.atomic_cycles += other.atomic_cycles;
        self.launch_cycles += other.launch_cycles;
    }

    /// Fraction of total cycles in each phase, ordered
    /// `[compute, dram, atomic, launch]`; all zeros for an empty breakdown.
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total_cycles();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.compute_cycles as f64 / t,
            self.dram_cycles as f64 / t,
            self.atomic_cycles as f64 / t,
            self.launch_cycles as f64 / t,
        ]
    }

    /// One-line percentage report, e.g.
    /// `compute 61.2% | dram 28.4% | atomics 8.1% | launch 2.3%`.
    pub fn report(&self) -> String {
        let [c, d, a, l] = self.fractions();
        format!(
            "compute {:.1}% | dram {:.1}% | atomics {:.1}% | launch {:.1}%",
            c * 100.0,
            d * 100.0,
            a * 100.0,
            l * 100.0
        )
    }
}

/// Metrics of a single kernel launch, mirroring the NVProf counters the
/// paper reports (Section 8.1.4, Figure 9, Figure 12).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Kernel name for reports.
    pub name: String,
    /// Elapsed device cycles including launch overhead.
    pub elapsed_cycles: u64,
    /// Elapsed wall time in milliseconds at the device clock.
    pub time_ms: f64,
    /// Bytes read from DRAM (cache misses × line size).
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Cache hits across the kernel.
    pub l2_hits: u64,
    /// Cache misses across the kernel.
    pub l2_misses: u64,
    /// Atomic read-modify-write operations issued.
    pub atomic_ops: u64,
    /// Extra cycles lost to atomic serialization on hot addresses.
    pub atomic_serialization_cycles: u64,
    /// Shared-memory bytes moved.
    pub shared_bytes: u64,
    /// Useful lane-cycles issued (numerator of SM efficiency).
    pub useful_cycles: u64,
    /// Thread blocks launched.
    pub num_blocks: u64,
    /// SM efficiency in `[0, 1]`: useful issue time over elapsed × #SMs.
    pub sm_efficiency: f64,
    /// Achieved occupancy in `[0, 1]`: resident warps over the device's
    /// warp slots (`max_threads_per_sm / 32` per SM), analytically, with
    /// the kernel alone on the device. Grids too small to reach the
    /// per-shape residency limit ([`crate::GpuSpec::occupancy_limit`])
    /// achieve proportionally less.
    pub achieved_occupancy: f64,
    /// Which resource bound the kernel's elapsed time (roofline verdict).
    pub limiter: Limiter,
    /// Exact phase attribution of `elapsed_cycles` (sums to it).
    pub phases: PhaseBreakdown,
}

/// The resource that determined a kernel's elapsed time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Per-SM work (compute issue, memory latency, imbalance tails).
    #[default]
    SmTime,
    /// Aggregate DRAM bandwidth.
    DeviceBandwidth,
    /// Serialization on the hottest atomic address.
    AtomicHotspot,
    /// Fixed launch overhead dominates (kernel too small).
    LaunchOverhead,
}

impl Limiter {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Limiter::SmTime => "sm-time",
            Limiter::DeviceBandwidth => "bandwidth",
            Limiter::AtomicHotspot => "atomics",
            Limiter::LaunchOverhead => "launch",
        }
    }
}

impl KernelMetrics {
    /// Cache hit rate in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// Total DRAM traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Stretches the kernel's elapsed time by `factor` (an injected-fault
    /// slowdown, `>= 1`). The extra cycles are exposed stall time on the
    /// SMs, so they are attributed to the compute phase — keeping the
    /// `compute + dram + atomic + launch == elapsed` partition exact —
    /// and SM efficiency shrinks by the same factor (the useful work did
    /// not grow).
    pub fn stretch(&mut self, factor: f64, spec: &crate::spec::GpuSpec) {
        debug_assert!(factor.is_finite() && factor >= 1.0);
        let stretched = (self.elapsed_cycles as f64 * factor).round() as u64;
        let extra = stretched.saturating_sub(self.elapsed_cycles);
        self.elapsed_cycles += extra;
        self.phases.compute_cycles += extra;
        self.time_ms = spec.cycles_to_ms(self.elapsed_cycles);
        self.sm_efficiency /= factor;
    }
}

/// Aggregated metrics of a multi-kernel run (e.g. a full GNN forward pass):
/// kernel compute plus host↔device transfer time, split the way Table 2
/// reports NeuGraph ("Mem.IO" vs "Comp.").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Sum of kernel elapsed times, ms ("Comp." in Table 2).
    pub compute_ms: f64,
    /// Sum of host↔device transfer times, ms ("Mem.IO" in Table 2).
    pub transfer_ms: f64,
    /// Per-kernel breakdown in launch order.
    pub kernels: Vec<KernelMetrics>,
    /// Total bytes moved over PCIe.
    pub transfer_bytes: u64,
    /// Phase-attributed cycle totals accumulated over every kernel; sums
    /// to the run's total kernel `elapsed_cycles`.
    pub phases: PhaseBreakdown,
}

impl RunMetrics {
    /// End-to-end time (compute + transfers), ms.
    pub fn total_ms(&self) -> f64 {
        self.compute_ms + self.transfer_ms
    }

    /// Folds a kernel's metrics into the run.
    pub fn push_kernel(&mut self, k: KernelMetrics) {
        self.compute_ms += k.time_ms;
        self.phases.add(&k.phases);
        self.kernels.push(k);
    }

    /// Folds a transfer into the run.
    pub fn push_transfer(&mut self, t: crate::transfer::TransferMetrics) {
        self.transfer_ms += t.time_ms;
        self.transfer_bytes += t.bytes;
    }

    /// Merges another run (e.g. a later layer) into this one.
    pub fn merge(&mut self, other: RunMetrics) {
        self.compute_ms += other.compute_ms;
        self.transfer_ms += other.transfer_ms;
        self.transfer_bytes += other.transfer_bytes;
        self.phases.add(&other.phases);
        self.kernels.extend(other.kernels);
    }

    /// Total elapsed kernel cycles across the run.
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.elapsed_cycles).sum()
    }

    /// Total DRAM traffic across all kernels, bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.kernels.iter().map(KernelMetrics::dram_bytes).sum()
    }

    /// Total atomic operations across all kernels.
    pub fn atomic_ops(&self) -> u64 {
        self.kernels.iter().map(|k| k.atomic_ops).sum()
    }

    /// Elapsed-cycles-weighted mean SM efficiency across kernels.
    pub fn mean_sm_efficiency(&self) -> f64 {
        let total: u64 = self.kernels.iter().map(|k| k.elapsed_cycles).sum();
        if total == 0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .map(|k| k.sm_efficiency * k.elapsed_cycles as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Hit-count-weighted cache hit rate across kernels.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.kernels.iter().map(|k| k.l2_hits).sum();
        let misses: u64 = self.kernels.iter().map(|k| k.l2_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// A sliding window over per-kernel L2 hit/miss counts: the locality
/// signal the dynamic-graph re-renumbering policy watches
/// (`core::dynamic`). Samples are whole `(hits, misses)` pairs, so the
/// windowed rate is hit-count-weighted exactly like
/// [`RunMetrics::cache_hit_rate`] rather than an average of ratios —
/// a tiny kernel cannot swing the window.
#[derive(Debug, Clone)]
pub struct HitRateWindow {
    capacity: usize,
    samples: std::collections::VecDeque<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl HitRateWindow {
    /// A window holding the last `capacity` samples; `capacity` must be
    /// at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window capacity must be at least 1");
        Self {
            capacity,
            samples: std::collections::VecDeque::with_capacity(capacity + 1),
            hits: 0,
            misses: 0,
        }
    }

    /// Pushes one sample, evicting the oldest once full.
    pub fn push(&mut self, hits: u64, misses: u64) {
        self.samples.push_back((hits, misses));
        self.hits += hits;
        self.misses += misses;
        if self.samples.len() > self.capacity {
            let (h, m) = self.samples.pop_front().expect("non-empty after push");
            self.hits -= h;
            self.misses -= m;
        }
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window holds `capacity` samples — policies gate on
    /// this so a half-warm window never triggers anything.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Hit-count-weighted rate over the window, or `None` while the
    /// window holds no cache traffic at all.
    pub fn rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Drops every sample (a policy resets the window after acting on
    /// it, so stale pre-action samples cannot re-trigger).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(ms: f64, hits: u64, misses: u64) -> KernelMetrics {
        KernelMetrics {
            name: "k".into(),
            time_ms: ms,
            elapsed_cycles: (ms * 1000.0) as u64,
            l2_hits: hits,
            l2_misses: misses,
            sm_efficiency: 0.5,
            ..Default::default()
        }
    }

    #[test]
    fn hit_rate() {
        assert_eq!(kernel(1.0, 0, 0).cache_hit_rate(), 0.0);
        assert!((kernel(1.0, 3, 1).cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn run_accumulates() {
        let mut run = RunMetrics::default();
        run.push_kernel(kernel(2.0, 10, 10));
        run.push_kernel(kernel(3.0, 30, 10));
        run.push_transfer(crate::transfer::TransferMetrics {
            bytes: 100,
            time_ms: 1.5,
        });
        assert!((run.compute_ms - 5.0).abs() < 1e-12);
        assert!((run.transfer_ms - 1.5).abs() < 1e-12);
        assert!((run.total_ms() - 6.5).abs() < 1e-12);
        assert!((run.cache_hit_rate() - 40.0 / 60.0).abs() < 1e-12);
        assert_eq!(run.transfer_bytes, 100);
    }

    #[test]
    fn merge_combines() {
        let mut a = RunMetrics::default();
        a.push_kernel(kernel(1.0, 1, 1));
        let mut b = RunMetrics::default();
        b.push_kernel(kernel(2.0, 2, 2));
        a.merge(b);
        assert_eq!(a.kernels.len(), 2);
        assert!((a.compute_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdown_partitions_and_accumulates() {
        let phases = PhaseBreakdown {
            compute_cycles: 600,
            dram_cycles: 250,
            atomic_cycles: 100,
            launch_cycles: 50,
        };
        assert_eq!(phases.total_cycles(), 1000);
        let [c, d, a, l] = phases.fractions();
        assert!((c - 0.6).abs() < 1e-12 && (d - 0.25).abs() < 1e-12);
        assert!((a - 0.1).abs() < 1e-12 && (l - 0.05).abs() < 1e-12);
        assert!(phases.report().contains("compute 60.0%"));

        let mut run = RunMetrics::default();
        let mut k1 = kernel(1.0, 0, 0);
        k1.phases = phases;
        let mut k2 = kernel(2.0, 0, 0);
        k2.phases = PhaseBreakdown {
            compute_cycles: 10,
            dram_cycles: 20,
            atomic_cycles: 30,
            launch_cycles: 40,
        };
        run.push_kernel(k1);
        run.push_kernel(k2);
        assert_eq!(run.phases.total_cycles(), 1100);
        assert_eq!(run.phases.compute_cycles, 610);

        let mut other = RunMetrics::default();
        let mut k3 = kernel(1.0, 0, 0);
        k3.phases.launch_cycles = 9;
        other.push_kernel(k3);
        run.merge(other);
        assert_eq!(run.phases.launch_cycles, 99);
        assert_eq!(run.kernels.len(), 3);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let phases = PhaseBreakdown::default();
        assert_eq!(phases.total_cycles(), 0);
        assert_eq!(phases.fractions(), [0.0; 4]);
    }

    #[test]
    fn weighted_sm_efficiency() {
        let mut run = RunMetrics::default();
        let mut k1 = kernel(1.0, 0, 0);
        k1.sm_efficiency = 1.0;
        k1.elapsed_cycles = 100;
        let mut k2 = kernel(1.0, 0, 0);
        k2.sm_efficiency = 0.0;
        k2.elapsed_cycles = 300;
        run.push_kernel(k1);
        run.push_kernel(k2);
        assert!((run.mean_sm_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_window_slides_and_weights_by_counts() {
        let mut w = HitRateWindow::new(2);
        assert!(w.is_empty());
        assert_eq!(w.rate(), None, "no traffic, no rate");
        w.push(3, 1);
        assert!(!w.is_full());
        assert!((w.rate().expect("traffic") - 0.75).abs() < 1e-12);
        w.push(0, 4);
        assert!(w.is_full());
        // Count-weighted: (3 hits) / (3 + 1 + 4) accesses.
        assert!((w.rate().expect("traffic") - 3.0 / 8.0).abs() < 1e-12);
        // Third push evicts the first sample.
        w.push(4, 0);
        assert_eq!(w.len(), 2);
        assert!((w.rate().expect("traffic") - 4.0 / 8.0).abs() < 1e-12);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.rate(), None);
    }

    #[test]
    fn hit_rate_window_ignores_trafficless_samples_in_the_rate() {
        // Zero-access samples (e.g. a batch of pure transfers) occupy a
        // slot but contribute nothing to the rate.
        let mut w = HitRateWindow::new(3);
        w.push(0, 0);
        assert!(!w.is_empty());
        assert_eq!(w.rate(), None);
        w.push(5, 5);
        assert!((w.rate().expect("traffic") - 0.5).abs() < 1e-12);
    }
}
