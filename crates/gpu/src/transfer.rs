//! Host ↔ device transfer cost model.
//!
//! The NeuGraph baseline (Table 2) streams graph chunks over PCIe; the
//! paper reports its "Mem.IO" column separately from compute. The model is
//! the standard latency + bandwidth line: `t = latency + bytes / bw`.

use serde::{Deserialize, Serialize};

use crate::spec::GpuSpec;

/// Cost of one host↔device copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferMetrics {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Transfer time in milliseconds.
    pub time_ms: f64,
}

/// Prices a host↔device copy of `bytes` on the given device.
pub fn transfer(spec: &GpuSpec, bytes: u64) -> TransferMetrics {
    let bw_bytes_per_ms = spec.pcie_bandwidth_gbps * 1e6;
    let time_ms = spec.pcie_latency_us / 1000.0 + bytes as f64 / bw_bytes_per_ms;
    TransferMetrics { bytes, time_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floor() {
        let spec = GpuSpec::quadro_p6000();
        let t = transfer(&spec, 0);
        assert!((t.time_ms - spec.pcie_latency_us / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scaling() {
        let spec = GpuSpec::quadro_p6000();
        // 12 GB/s => 12 MB per ms.
        let t = transfer(&spec, 12_000_000);
        assert!((t.time_ms - (1.0 + 0.01)).abs() < 1e-9, "t = {}", t.time_ms);
        let double = transfer(&spec, 24_000_000);
        assert!(double.time_ms > t.time_ms * 1.9);
    }

    #[test]
    fn big_transfers_are_slow() {
        let spec = GpuSpec::quadro_p6000();
        // 1.2 GB over 12 GB/s PCIe = 100 ms — the scale of Table 2's
        // NeuGraph Mem.IO entries.
        let t = transfer(&spec, 1_200_000_000);
        assert!(t.time_ms > 99.0 && t.time_ms < 102.0);
    }
}
