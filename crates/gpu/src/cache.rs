//! Set-associative LRU cache model.
//!
//! One shared cache level stands in for the L1 + L2 + texture hierarchy the
//! paper profiles ("Cache (L1 + L2 + Texture) Hit Rate", Figure 9b). Blocks
//! are simulated in dispatch order against this single cache, so temporal
//! locality across nearby blocks — precisely what community-aware node
//! renumbering creates — turns into hits, and the hit-rate / DRAM-byte
//! metrics respond to renumbering the way the paper's Figure 12 shows.
//!
//! Replacement is true LRU implemented with a flat age/clock scheme: every
//! entry carries the clock tick of its last use and the eviction victim
//! is the minimum-stamp way. That keeps an access at a single O(ways) scan
//! over two flat arrays with no `Vec::remove`/`insert` shifting, and lets a
//! cache be re-geometried in place so run contexts can recycle the
//! allocation across kernel launches.
//!
//! Invalidation is epoch-batched: an entry is valid only if its stamp is
//! at least the current `epoch`, so wiping the cache between launches is a
//! single epoch bump instead of an O(sets × ways) refill of both arrays.
//! Stale entries keep their (pre-epoch) stamps, which are older than any
//! live stamp, so the min-stamp victim scan still evicts them first —
//! observable hit/miss behaviour is identical to a physically cleared
//! cache.

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched from DRAM (and inserted).
    Miss,
}

/// Tag value of an invalid way. Unreachable as a real line address: line
/// tags are byte addresses divided by the line size (≥ 32 B), so they stay
/// far below `u64::MAX`.
const EMPTY: u64 = u64::MAX;

/// A set-associative cache with true-LRU replacement over 64-bit line
/// addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `tags[set * ways + way]` is the resident line, or [`EMPTY`].
    tags: Vec<u64>,
    /// Per-entry last-use tick; the minimum over a set is the LRU victim.
    /// Invalid ways hold 0, older than any real stamp (ticks start at 1).
    stamps: Vec<u64>,
    /// Cache-wide logical clock, bumped once per access. Stamps are only
    /// ever compared within one set, where they are strictly increasing in
    /// access order, so a single clock yields exactly per-set LRU.
    tick: u64,
    /// Entries with `stamp < epoch` are stale (invalid): bumping the epoch
    /// past the clock invalidates every line in O(1). Ticks start at 1 and
    /// the epoch at 1, so freshly built arrays (stamp 0) start invalid.
    epoch: u64,
    num_sets: usize,
    ways: usize,
    line_bytes: u64,
    /// `log2(line_bytes)`; address→line is a shift, not a divide.
    line_shift: u32,
    /// Lemire magic `ceil(2^64 / num_sets)` for computing `line % num_sets`
    /// with two multiplies instead of a hardware divide — the divide
    /// dominates simulation wall-clock otherwise.
    fastmod_m: u64,
    /// Largest line index for which the fastmod identity is exact
    /// (`line * num_sets < 2^64`); larger lines fall back to `%`.
    fastmod_max: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache with the given geometry. `num_sets` and `ways` must
    /// be non-zero; `line_bytes` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn new(num_sets: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            tags: vec![EMPTY; num_sets * ways],
            stamps: vec![0; num_sets * ways],
            tick: 0,
            epoch: 1,
            num_sets,
            ways,
            line_bytes: line_bytes as u64,
            line_shift: line_bytes.trailing_zeros(),
            fastmod_m: (u64::MAX / num_sets as u64).wrapping_add(1),
            fastmod_max: u64::MAX / num_sets as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Reshapes the cache in place, invalidating all lines and zeroing the
    /// counters, while recycling the existing allocations where possible.
    /// When the geometry is unchanged — the common case for a run context
    /// recycled across same-shaped launches — this is an O(1) epoch bump
    /// rather than an O(sets × ways) array refill.
    /// Same geometry validation as [`SetAssocCache::new`].
    pub fn reset_geometry(&mut self, num_sets: usize, ways: usize, line_bytes: usize) {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        if num_sets == self.num_sets && ways == self.ways && line_bytes as u64 == self.line_bytes {
            self.clear();
            return;
        }
        self.num_sets = num_sets;
        self.ways = ways;
        self.line_bytes = line_bytes as u64;
        self.line_shift = line_bytes.trailing_zeros();
        self.fastmod_m = (u64::MAX / num_sets as u64).wrapping_add(1);
        self.fastmod_max = u64::MAX / num_sets as u64;
        self.tags.clear();
        self.tags.resize(num_sets * ways, EMPTY);
        self.stamps.clear();
        self.stamps.resize(num_sets * ways, 0);
        self.tick = 0;
        self.epoch = 1;
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates every line and zeroes the counters, keeping geometry.
    /// O(1): stale entries are left in place and filtered by the epoch
    /// check on probe (see the module docs).
    pub fn clear(&mut self) {
        self.epoch = self.tick + 1;
        self.hits = 0;
        self.misses = 0;
    }

    /// `line % num_sets` without a hardware divide where exact (always,
    /// for realistic line addresses), with a `%` fallback otherwise.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if line <= self.fastmod_max {
            let low = self.fastmod_m.wrapping_mul(line);
            ((low as u128 * self.num_sets as u128) >> 64) as usize
        } else {
            (line % self.num_sets as u64) as usize
        }
    }

    /// Accesses one byte address; the whole containing line is touched.
    pub fn access(&mut self, addr: u64) -> Access {
        let result = self.access_line(addr >> self.line_shift);
        match result {
            Access::Hit => self.hits += 1,
            Access::Miss => self.misses += 1,
        }
        result
    }

    /// Accesses one line index (an address divided by the line size).
    /// Leaves the hit/miss counters untouched so range accesses can batch
    /// the counter updates per call instead of per line.
    #[inline]
    fn access_line(&mut self, line: u64) -> Access {
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        let base = set * self.ways;
        let mut victim = base;
        let mut victim_key = u64::MAX;
        for i in base..base + self.ways {
            let stamp = self.stamps[i];
            // A matching tag only hits if its stamp is current-epoch;
            // stale matches keep scanning.
            if self.tags[i] == line && stamp >= self.epoch {
                self.stamps[i] = tick;
                return Access::Hit;
            }
            // Victim preference: the FIRST stale way (key 0), else the
            // min-stamp live way. Filling stale ways in index order makes
            // an epoch-cleared set refill exactly like a physically wiped
            // one — hot lines land at early way indices, so the hit scan
            // early-exits just as fast (stale ways are interchangeable, so
            // hit/miss behaviour is unaffected by which one is filled).
            let key = if stamp < self.epoch {
                0
            } else {
                stamp - self.epoch + 1
            };
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = tick;
        Access::Miss
    }

    /// Accesses every line overlapping `[addr, addr + bytes)`, returning the
    /// number of lines that hit and missed. The hit/miss counters are
    /// updated once per call, not once per line.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> (u64, u64) {
        if bytes == 0 {
            return (0, 0);
        }
        let first = addr >> self.line_shift;
        let last = (addr + bytes - 1) >> self.line_shift;
        let mut hits = 0;
        let mut misses = 0;
        for line in first..=last {
            match self.access_line(line) {
                Access::Hit => hits += 1,
                Access::Miss => misses += 1,
            }
        }
        self.hits += hits;
        self.misses += misses;
        (hits, misses)
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; zero accesses count as 0.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Resets counters but keeps resident lines (used between kernels of
    /// one run, where data stays warm on a real device too).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = SetAssocCache::new(4, 2, 64);
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(32), Access::Hit, "same line");
        assert_eq!(c.access(64), Access::Miss, "next line");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // One set, two ways: lines 0 and 1 fit; touching 2 evicts LRU.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0); // miss, {0}
        c.access(64); // miss, {0, 1}
        c.access(0); // hit, line 0 becomes MRU
        assert_eq!(c.access(128), Access::Miss); // evicts line 1
        assert_eq!(c.access(0), Access::Hit, "line 0 was MRU and survives");
        assert_eq!(c.access(64), Access::Miss, "line 1 was evicted");
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = SetAssocCache::new(2, 1, 64);
        c.access(0); // set 0
        c.access(64); // set 1
        assert_eq!(c.access(0), Access::Hit, "different sets don't conflict");
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = SetAssocCache::new(16, 4, 64);
        let (h, m) = c.access_range(0, 256);
        assert_eq!((h, m), (0, 4));
        let (h, m) = c.access_range(0, 256);
        assert_eq!((h, m), (4, 0));
        // A one-byte access at a line boundary touches one line.
        let (h, m) = c.access_range(1024, 1);
        assert_eq!((h, m), (0, 1));
        // Zero-byte access touches nothing.
        assert_eq!(c.access_range(0, 0), (0, 0));
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut c = SetAssocCache::new(4, 4, 64);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0), Access::Hit, "contents survive counter reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_rejected() {
        SetAssocCache::new(4, 4, 96);
    }

    #[test]
    fn clear_invalidates_lines() {
        let mut c = SetAssocCache::new(4, 2, 64);
        c.access(0);
        c.clear();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0), Access::Miss, "contents do not survive clear");
    }

    #[test]
    fn reset_geometry_reshapes_in_place() {
        let mut c = SetAssocCache::new(16, 4, 64);
        c.access_range(0, 4096);
        c.reset_geometry(2, 1, 128);
        assert_eq!((c.num_sets(), c.ways(), c.line_bytes()), (2, 1, 128));
        assert_eq!(c.hits() + c.misses(), 0);
        // Direct-mapped, two sets of 128 B lines: conflicting lines evict.
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(256), Access::Miss, "maps to set 0, evicts line 0");
        assert_eq!(c.access(0), Access::Miss, "line 0 was evicted");
        assert_eq!(c.access(128), Access::Miss, "set 1 untouched so far");
        assert_eq!(c.access(128 + 64), Access::Hit, "same 128 B line");
    }

    #[test]
    fn fastmod_set_mapping_matches_modulo() {
        // Cover awkward divisors (1, powers of two, odd, large) and line
        // indices on both sides of the exactness bound.
        for num_sets in [1usize, 2, 3, 96, 97, 1536, 3072, 49_152] {
            let c = SetAssocCache::new(num_sets, 2, 64);
            let mut state = 0xDEAD_BEEF_u64;
            for i in 0..2_000u64 {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                for line in [
                    i,
                    state,
                    u64::MAX - i,
                    c.fastmod_max,
                    c.fastmod_max.saturating_add(i),
                ] {
                    assert_eq!(
                        c.set_of(line),
                        (line % num_sets as u64) as usize,
                        "line {line} sets {num_sets}"
                    );
                }
            }
        }
    }

    #[test]
    fn age_scheme_matches_reference_lru() {
        // Cross-check the clock scheme against a straightforward
        // recency-list model on a pseudo-random access stream.
        let mut c = SetAssocCache::new(4, 3, 64);
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 4]; // front = MRU
        let mut state = 0x1234_5678_u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let addr = (state >> 33) % (64 * 64); // 64 distinct lines
            let line = addr / 64;
            let set = (line % 4) as usize;
            let expected = if let Some(pos) = reference[set].iter().position(|&t| t == line) {
                reference[set].remove(pos);
                reference[set].insert(0, line);
                Access::Hit
            } else {
                if reference[set].len() == 3 {
                    reference[set].pop();
                }
                reference[set].insert(0, line);
                Access::Miss
            };
            assert_eq!(c.access(addr), expected);
        }
    }
}
