//! Set-associative LRU cache model.
//!
//! One shared cache level stands in for the L1 + L2 + texture hierarchy the
//! paper profiles ("Cache (L1 + L2 + Texture) Hit Rate", Figure 9b). Blocks
//! are simulated in dispatch order against this single cache, so temporal
//! locality across nearby blocks — precisely what community-aware node
//! renumbering creates — turns into hits, and the hit-rate / DRAM-byte
//! metrics respond to renumbering the way the paper's Figure 12 shows.

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was fetched from DRAM (and inserted).
    Miss,
}

/// A set-associative cache with true-LRU replacement over 64-bit line
/// addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds up to `ways` line tags in LRU order (front = MRU).
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_bytes: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache with the given geometry. `num_sets` and `ways` must
    /// be non-zero; `line_bytes` must be a power of two.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn new(num_sets: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(num_sets > 0 && ways > 0, "cache geometry must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one byte address; the whole containing line is touched.
    pub fn access(&mut self, addr: u64) -> Access {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            Access::Hit
        } else {
            if set.len() == self.ways {
                set.pop();
            }
            set.insert(0, line);
            self.misses += 1;
            Access::Miss
        }
    }

    /// Accesses every line overlapping `[addr, addr + bytes)`, returning the
    /// number of lines that missed.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> (u64, u64) {
        if bytes == 0 {
            return (0, 0);
        }
        let first = addr / self.line_bytes;
        let last = (addr + bytes - 1) / self.line_bytes;
        let mut hits = 0;
        let mut misses = 0;
        for line in first..=last {
            match self.access(line * self.line_bytes) {
                Access::Hit => hits += 1,
                Access::Miss => misses += 1,
            }
        }
        (hits, misses)
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`; zero accesses count as 0.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Resets counters but keeps resident lines (used between kernels of
    /// one run, where data stays warm on a real device too).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_access_hits() {
        let mut c = SetAssocCache::new(4, 2, 64);
        assert_eq!(c.access(0), Access::Miss);
        assert_eq!(c.access(32), Access::Hit, "same line");
        assert_eq!(c.access(64), Access::Miss, "next line");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        // One set, two ways: lines 0 and 1 fit; touching 2 evicts LRU.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0); // miss, set = [0]
        c.access(64); // miss, set = [1, 0]
        c.access(0); // hit, set = [0, 1]
        assert_eq!(c.access(128), Access::Miss); // evicts line 1
        assert_eq!(c.access(0), Access::Hit, "line 0 was MRU and survives");
        assert_eq!(c.access(64), Access::Miss, "line 1 was evicted");
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = SetAssocCache::new(2, 1, 64);
        c.access(0); // set 0
        c.access(64); // set 1
        assert_eq!(c.access(0), Access::Hit, "different sets don't conflict");
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = SetAssocCache::new(16, 4, 64);
        let (h, m) = c.access_range(0, 256);
        assert_eq!((h, m), (0, 4));
        let (h, m) = c.access_range(0, 256);
        assert_eq!((h, m), (4, 0));
        // A one-byte access at a line boundary touches one line.
        let (h, m) = c.access_range(1024, 1);
        assert_eq!((h, m), (0, 1));
        // Zero-byte access touches nothing.
        assert_eq!(c.access_range(0, 0), (0, 0));
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut c = SetAssocCache::new(4, 4, 64);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.reset_counters();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0), Access::Hit, "contents survive counter reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_line_rejected() {
        SetAssocCache::new(4, 4, 96);
    }
}
