//! Reusable, shardable simulation state for [`crate::engine::Engine`].
//!
//! A [`RunContext`] owns everything a kernel launch needs that is not the
//! kernel itself: the partitioned L2 model, atomic-hotspot maps, per-block
//! accumulators, per-shard block-cycle lists, and the SM occupancy table.
//! Contexts are recycled across launches — `prepare` reshapes the existing
//! allocations instead of reallocating — so sweeps that price thousands of
//! candidate configurations stop hammering the allocator.
//!
//! # Sharded simulation
//!
//! The block loop is divided into `num_shards` **contiguous chunks in
//! dispatch order**. Each shard simulates its chunk against a private
//! cache holding `l2_sets / num_shards` sets (same associativity and line
//! size, so total modelled capacity is preserved) and a private hotspot
//! map. The decomposition is a pure function of the launch shape and the
//! device — never of the worker-thread count — which is what makes results
//! bit-identical at any parallelism (see `DESIGN.md`, "Parallel simulation
//! model").

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Mutex;

use crate::cache::SetAssocCache;
use crate::kernel::BlockAcc;
use crate::spec::GpuSpec;
use crate::trace::{HotBlock, ShardTrace};

/// Smallest chunk worth simulating in its own shard: below this, shard
/// caches fragment cross-block locality for no wall-clock win.
const MIN_BLOCKS_PER_SHARD: usize = 32;

/// Upper bound on shards; more buys no parallelism on realistic hosts and
/// shrinks each cache partition toward degeneracy.
const MAX_SHARDS: usize = 16;

/// How one launch's block loop is split into shards. Depends only on the
/// launch shape and device geometry, never on the worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShardPlan {
    /// Number of contiguous block chunks (and private cache partitions).
    pub num_shards: usize,
    /// Sets in each shard's cache partition.
    pub sets_per_shard: usize,
    /// Blocks per chunk (last chunk may be shorter).
    pub chunk: usize,
}

/// Plans the shard decomposition for a launch of `num_blocks` blocks on a
/// device whose L2 has `l2_sets` sets.
pub(crate) fn plan_shards(num_blocks: usize, l2_sets: usize) -> ShardPlan {
    let num_shards = (num_blocks / MIN_BLOCKS_PER_SHARD)
        .clamp(1, MAX_SHARDS)
        .min(l2_sets);
    ShardPlan {
        num_shards,
        sets_per_shard: (l2_sets / num_shards).max(1),
        chunk: num_blocks.div_ceil(num_shards),
    }
}

impl ShardPlan {
    /// The contiguous block range owned by `shard`.
    pub fn range(&self, shard: usize, num_blocks: usize) -> Range<usize> {
        let start = (shard * self.chunk).min(num_blocks);
        let end = ((shard + 1) * self.chunk).min(num_blocks);
        start..end
    }
}

/// Running totals a shard accumulates over its chunk. All fields are
/// plain sums, so the cross-shard merge is order-independent.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ShardTotals {
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub atomic_ops: u64,
    pub serialized_atomics: u64,
    pub shared_bytes: u64,
    pub useful_cycles: u64,
    pub busy_issue_cycles: u64,
}

impl ShardTotals {
    /// Folds one block's accumulators into the shard totals.
    pub fn add_block(&mut self, acc: &BlockAcc, busy_sum: u64, useful_sum: u64) {
        self.dram_read_bytes += acc.dram_read_bytes;
        self.dram_write_bytes += acc.dram_write_bytes;
        self.l2_hits += acc.l2_hits;
        self.l2_misses += acc.l2_misses;
        self.atomic_ops += acc.atomic_ops;
        self.serialized_atomics += acc.serialized_atomics;
        self.shared_bytes += acc.shared_bytes;
        self.useful_cycles += useful_sum;
        self.busy_issue_cycles += busy_sum;
    }
}

/// One shard's private simulation state.
#[derive(Debug)]
pub(crate) struct ShardSlot {
    /// This shard's partition of the L2 (`sets_per_shard` sets).
    pub cache: SetAssocCache,
    /// Per-line atomic flush rounds observed within this chunk.
    pub hotspots: HashMap<u64, u64>,
    /// Recycled per-block accumulator.
    pub acc: BlockAcc,
    /// Cycle cost of each block in the chunk, in dispatch order.
    pub block_cycles: Vec<u64>,
    /// Order-independent chunk totals.
    pub totals: ShardTotals,
}

impl ShardSlot {
    fn empty() -> Self {
        ShardSlot {
            // Placeholder geometry; `RunContext::prepare` reshapes it.
            cache: SetAssocCache::new(1, 1, 128),
            hotspots: HashMap::new(),
            acc: BlockAcc::default(),
            block_cycles: Vec::new(),
            totals: ShardTotals::default(),
        }
    }
}

/// Reusable simulation state for one engine. See the module docs.
#[derive(Debug, Default)]
pub struct RunContext {
    /// Shard slots; `prepare` guarantees at least `num_shards` of them.
    /// Each sits behind a `Mutex` so scoped workers can claim slots while
    /// the context itself is shared immutably across the scope.
    pub(crate) shards: Vec<Mutex<ShardSlot>>,
    /// Scratch map the merge phase sums per-shard hotspot rounds into.
    pub(crate) merged_hotspots: HashMap<u64, u64>,
    /// Per-SM busy cycles for the greedy placement pass.
    pub(crate) sm_busy: Vec<u64>,
    /// Arena for the per-shard trace rows assembled during the merge;
    /// recycled across launches so tracing never allocates per launch.
    pub(crate) shard_traces: Vec<ShardTrace>,
    /// Arena for the top-K hottest-block records, recycled like
    /// `shard_traces`.
    pub(crate) hot_blocks: Vec<HotBlock>,
}

impl RunContext {
    /// An empty context; the first `prepare` sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reshapes the context for one launch, recycling prior allocations.
    pub(crate) fn prepare(&mut self, spec: &GpuSpec, plan: &ShardPlan) {
        while self.shards.len() < plan.num_shards {
            self.shards.push(Mutex::new(ShardSlot::empty()));
        }
        for slot in &mut self.shards[..plan.num_shards] {
            let slot = slot.get_mut().unwrap_or_else(|p| p.into_inner());
            slot.cache
                .reset_geometry(plan.sets_per_shard, spec.l2_ways, spec.line_bytes);
            slot.hotspots.clear();
            slot.acc.reset();
            slot.block_cycles.clear();
            slot.totals = ShardTotals::default();
        }
        self.merged_hotspots.clear();
        self.sm_busy.clear();
        self.sm_busy.resize(spec.num_sms as usize, 0);
        self.shard_traces.clear();
        self.hot_blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_a_function_of_the_launch_only() {
        // Small launches never shard: cross-block locality stays whole.
        for blocks in [1, 31, 63] {
            assert_eq!(plan_shards(blocks, 1536).num_shards, 1);
        }
        assert_eq!(plan_shards(64, 1536).num_shards, 2);
        // Large launches cap at MAX_SHARDS with the capacity split evenly.
        let plan = plan_shards(100_000, 1536);
        assert_eq!(plan.num_shards, MAX_SHARDS);
        assert_eq!(plan.sets_per_shard, 1536 / MAX_SHARDS);
        // A tiny cache bounds the shard count.
        assert_eq!(plan_shards(100_000, 4).num_shards, 4);
    }

    #[test]
    fn ranges_tile_the_block_space() {
        for (blocks, sets) in [(1, 8), (64, 1536), (65, 1536), (1000, 24), (4096, 1536)] {
            let plan = plan_shards(blocks, sets);
            let mut cursor = 0;
            for shard in 0..plan.num_shards {
                let r = plan.range(shard, blocks);
                assert_eq!(r.start, cursor, "chunks are contiguous in dispatch order");
                assert!(!r.is_empty(), "every shard owns at least one block");
                cursor = r.end;
            }
            assert_eq!(cursor, blocks, "chunks cover every block exactly once");
        }
    }

    #[test]
    fn prepare_recycles_and_resets() {
        let spec = GpuSpec::quadro_p6000();
        let mut ctx = RunContext::new();
        let plan = plan_shards(4096, spec.l2_sets());
        ctx.prepare(&spec, &plan);
        assert_eq!(ctx.shards.len(), plan.num_shards);
        {
            let slot = ctx.shards[0].get_mut().expect("unpoisoned");
            slot.cache.access(0);
            slot.hotspots.insert(1, 2);
            slot.block_cycles.push(3);
            slot.totals.atomic_ops = 4;
        }
        ctx.prepare(&spec, &plan);
        let slot = ctx.shards[0].get_mut().expect("unpoisoned");
        assert_eq!(slot.cache.hits() + slot.cache.misses(), 0);
        assert!(slot.hotspots.is_empty());
        assert!(slot.block_cycles.is_empty());
        assert_eq!(slot.totals.atomic_ops, 0);
        assert_eq!(slot.cache.num_sets(), plan.sets_per_shard);
    }
}
