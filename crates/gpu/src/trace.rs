//! Deterministic kernel-level tracing on the simulated clock.
//!
//! The paper's Figure 1 closes its optimization loop through "GPU
//! profiling → performance evaluator"; this module is that profiler. A
//! [`TraceRecorder`] attached to an [`crate::Engine`] captures *spans* —
//! kernel launches, per-shard block chunks, warp-imbalance hotspot blocks,
//! cache epochs, host↔device transfers, GEMM calls — with timestamps on
//! the **simulated** clock (device cycles), never the wall clock.
//!
//! Because every span is derived from the engine's merged, thread-count-
//! invariant simulation state, a trace is bit-identical run-to-run and at
//! any `GNNADVISOR_SIM_THREADS` value: traces are diffable regression
//! artifacts, not samples. Export formats:
//!
//! - [`TraceRecorder::to_chrome_json`] — `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev) `trace_event` JSON, timestamps in
//!   simulated cycles,
//! - [`TraceRecorder::flame_report`] — a flamegraph-style text summary
//!   aggregated by span category and name.
//!
//! Tracing is opt-in and zero-cost when off: an engine without a recorder
//! executes the exact hot path it always did (one pointer test per
//! launch).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::metrics::KernelMetrics;
use crate::spec::GpuSpec;
use crate::transfer::TransferMetrics;

/// The span taxonomy (the `cat` field of the chrome trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One kernel launch, spanning launch overhead plus body.
    Kernel,
    /// The fixed launch-overhead prefix of a kernel.
    LaunchOverhead,
    /// One shard's contiguous block chunk (its private cache epoch).
    ShardChunk,
    /// One of the most expensive blocks of a launch (warp-imbalance
    /// hotspot), placed on its shard's serial timeline.
    BlockHotspot,
    /// Cache-epoch counter sample (L2 hits/misses at a launch boundary).
    CacheEpoch,
    /// A dense GEMM priced by the roofline model.
    Gemm,
    /// A host↔device transfer.
    Transfer,
    /// A kernel or GEMM scheduled on a simulated stream (placed at its
    /// stream-scheduler start time, possibly overlapping other spans).
    StreamKernel,
    /// A transfer scheduled on a simulated stream's copy engine.
    StreamCopy,
}

impl SpanKind {
    /// Category label used in exports.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::LaunchOverhead => "launch",
            SpanKind::ShardChunk => "shard",
            SpanKind::BlockHotspot => "hotspot",
            SpanKind::CacheEpoch => "cache",
            SpanKind::Gemm => "gemm",
            SpanKind::Transfer => "transfer",
            SpanKind::StreamKernel => "stream_kernel",
            SpanKind::StreamCopy => "stream_copy",
        }
    }
}

/// A typed argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer (counters, byte totals, cycle totals).
    Int(u64),
    /// Fixed-precision float (rates, efficiencies); formatted with four
    /// decimals so output bytes are stable.
    Float(f64),
    /// Short label (limiter verdicts, kernel names).
    Text(String),
}

impl ArgValue {
    fn emit_json(&self, out: &mut String) {
        match self {
            ArgValue::Int(v) => out.push_str(&v.to_string()),
            ArgValue::Float(v) => out.push_str(&format!("{v:.4}")),
            ArgValue::Text(s) => emit_json_string(s, out),
        }
    }
}

/// One recorded event: a complete span (`ph: "X"`) or a counter sample
/// (`ph: "C"`). Timestamps and durations are simulated device cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span taxonomy entry.
    pub kind: SpanKind,
    /// Display name.
    pub name: String,
    /// Start timestamp on the simulated clock, cycles.
    pub start_cycles: u64,
    /// Duration in cycles (`0` for counter samples).
    pub dur_cycles: u64,
    /// Timeline lane (chrome `tid`): 0 is the device stream, `1 + s` is
    /// shard `s`'s lane.
    pub track: u32,
    /// Deterministic key-ordered arguments.
    pub args: Vec<(&'static str, ArgValue)>,
    /// Whether this is a counter sample rather than a complete span.
    pub counter: bool,
}

#[derive(Debug, Default)]
struct TraceState {
    /// Simulated-clock cursor: end of the last device-stream span.
    clock_cycles: u64,
    events: Vec<TraceEvent>,
}

/// Per-shard data the engine hands over for one traced launch.
#[derive(Debug, Clone)]
pub(crate) struct ShardTrace {
    /// First block of the shard's chunk (dispatch order).
    pub first_block: usize,
    /// Blocks in the chunk.
    pub num_blocks: usize,
    /// Sum of the chunk's block cycle costs (its serial timeline length).
    pub cycles: u64,
    /// L2 hits within this shard's private cache partition.
    pub l2_hits: u64,
    /// L2 misses within this shard's private cache partition.
    pub l2_misses: u64,
    /// DRAM traffic attributed to the chunk, bytes.
    pub dram_bytes: u64,
}

/// A warp-imbalance hotspot: one of the launch's costliest blocks.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HotBlock {
    /// Global block id (dispatch order).
    pub block_id: usize,
    /// Shard that simulated the block.
    pub shard: usize,
    /// Start offset on the shard's serial timeline, cycles.
    pub offset_cycles: u64,
    /// The block's cycle cost.
    pub cycles: u64,
}

/// How many hotspot blocks each traced launch records.
pub(crate) const HOTSPOTS_PER_KERNEL: usize = 4;

/// First chrome `tid` used for simulated-stream lanes: stream `s` renders
/// on `STREAM_TRACK_BASE + s`, clear of the device lane (0) and the shard
/// lanes (`1 + shard`).
pub(crate) const STREAM_TRACK_BASE: u32 = 32;

/// An opt-in recorder of simulated-clock spans. Attach one to an engine
/// with [`crate::EngineBuilder::tracer`]; it is shared (and internally
/// synchronized), so clones of the engine append to the same timeline.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    state: Mutex<TraceState>,
}

impl TraceRecorder {
    /// An empty recorder at simulated time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// The simulated clock cursor: total device-stream cycles recorded.
    pub fn clock_cycles(&self) -> u64 {
        self.lock().clock_cycles
    }

    /// Drops all recorded events and rewinds the simulated clock.
    pub fn clear(&self) {
        let mut st = self.lock();
        st.events.clear();
        st.clock_cycles = 0;
    }

    /// A snapshot of the recorded events, in recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records one kernel launch: the kernel span, its launch-overhead
    /// prefix, per-shard chunk spans (cache epochs), hotspot blocks, and a
    /// cache counter sample. Called by the engine *after* the serial merge,
    /// so every value is worker-count-invariant.
    pub(crate) fn record_kernel(
        &self,
        metrics: &KernelMetrics,
        spec: &GpuSpec,
        shards: &[ShardTrace],
        hotspots: &[HotBlock],
    ) {
        let mut st = self.lock();
        let start = st.clock_cycles;
        let launch = spec.kernel_launch_cycles.min(metrics.elapsed_cycles);
        let body_start = start + launch;
        st.events.push(TraceEvent {
            kind: SpanKind::Kernel,
            name: metrics.name.clone(),
            start_cycles: start,
            dur_cycles: metrics.elapsed_cycles,
            track: 0,
            args: vec![
                ("limiter", ArgValue::Text(metrics.limiter.label().into())),
                ("blocks", ArgValue::Int(metrics.num_blocks)),
                ("dram_bytes", ArgValue::Int(metrics.dram_bytes())),
                ("atomic_ops", ArgValue::Int(metrics.atomic_ops)),
                ("l2_hit_rate", ArgValue::Float(metrics.cache_hit_rate())),
                ("sm_efficiency", ArgValue::Float(metrics.sm_efficiency)),
                (
                    "compute_cycles",
                    ArgValue::Int(metrics.phases.compute_cycles),
                ),
                ("dram_cycles", ArgValue::Int(metrics.phases.dram_cycles)),
                ("atomic_cycles", ArgValue::Int(metrics.phases.atomic_cycles)),
                ("launch_cycles", ArgValue::Int(metrics.phases.launch_cycles)),
            ],
            counter: false,
        });
        st.events.push(TraceEvent {
            kind: SpanKind::LaunchOverhead,
            name: "launch_overhead".into(),
            start_cycles: start,
            dur_cycles: launch,
            track: 0,
            args: Vec::new(),
            counter: false,
        });
        for (s, shard) in shards.iter().enumerate() {
            st.events.push(TraceEvent {
                kind: SpanKind::ShardChunk,
                name: format!(
                    "shard {s}: blocks {}..{}",
                    shard.first_block,
                    shard.first_block + shard.num_blocks
                ),
                start_cycles: body_start,
                dur_cycles: shard.cycles,
                track: 1 + s as u32,
                args: vec![
                    ("blocks", ArgValue::Int(shard.num_blocks as u64)),
                    ("l2_hits", ArgValue::Int(shard.l2_hits)),
                    ("l2_misses", ArgValue::Int(shard.l2_misses)),
                    ("dram_bytes", ArgValue::Int(shard.dram_bytes)),
                ],
                counter: false,
            });
        }
        for hot in hotspots {
            st.events.push(TraceEvent {
                kind: SpanKind::BlockHotspot,
                name: format!("block {}", hot.block_id),
                start_cycles: body_start + hot.offset_cycles,
                dur_cycles: hot.cycles,
                track: 1 + hot.shard as u32,
                args: vec![("cycles", ArgValue::Int(hot.cycles))],
                counter: false,
            });
        }
        st.events.push(TraceEvent {
            kind: SpanKind::CacheEpoch,
            name: "l2".into(),
            start_cycles: start,
            dur_cycles: 0,
            track: 0,
            args: vec![
                ("hits", ArgValue::Int(metrics.l2_hits)),
                ("misses", ArgValue::Int(metrics.l2_misses)),
            ],
            counter: true,
        });
        st.clock_cycles = start + metrics.elapsed_cycles;
    }

    /// Records a roofline-priced GEMM on the device stream.
    pub(crate) fn record_gemm(&self, metrics: &KernelMetrics) {
        let mut st = self.lock();
        let start = st.clock_cycles;
        st.events.push(TraceEvent {
            kind: SpanKind::Gemm,
            name: metrics.name.clone(),
            start_cycles: start,
            dur_cycles: metrics.elapsed_cycles,
            track: 0,
            args: vec![
                ("limiter", ArgValue::Text(metrics.limiter.label().into())),
                ("flops", ArgValue::Int(metrics.useful_cycles)),
                ("dram_bytes", ArgValue::Int(metrics.dram_bytes())),
                (
                    "compute_cycles",
                    ArgValue::Int(metrics.phases.compute_cycles),
                ),
                ("dram_cycles", ArgValue::Int(metrics.phases.dram_cycles)),
            ],
            counter: false,
        });
        st.clock_cycles = start + metrics.elapsed_cycles;
    }

    /// Records one stream-scheduled timeline: spans arrive with start
    /// times relative to the schedule's origin (and their stream lane
    /// already assigned); they are shifted onto the recorder's cursor,
    /// which then advances by the schedule's makespan. Unlike the serial
    /// device-stream spans above, these may overlap — that overlap *is*
    /// the signal a stream trace exists to show.
    pub(crate) fn record_stream_schedule(&self, spans: Vec<TraceEvent>, makespan_cycles: u64) {
        let mut st = self.lock();
        let base = st.clock_cycles;
        for mut e in spans {
            e.start_cycles += base;
            st.events.push(e);
        }
        st.clock_cycles = base + makespan_cycles;
    }

    /// Records a host↔device transfer on the device stream, converting its
    /// milliseconds to device cycles at the spec's clock.
    pub(crate) fn record_transfer(&self, metrics: &TransferMetrics, spec: &GpuSpec) {
        let cycles = spec.ms_to_cycles(metrics.time_ms);
        let mut st = self.lock();
        let start = st.clock_cycles;
        st.events.push(TraceEvent {
            kind: SpanKind::Transfer,
            name: format!("transfer {} B", metrics.bytes),
            start_cycles: start,
            dur_cycles: cycles,
            track: 0,
            args: vec![("bytes", ArgValue::Int(metrics.bytes))],
            counter: false,
        });
        st.clock_cycles = start + cycles;
    }

    /// Exports the timeline as `chrome://tracing` / Perfetto `trace_event`
    /// JSON. Timestamps (`ts`) and durations (`dur`) are simulated device
    /// cycles, so the bytes are identical run-to-run and at any simulation
    /// worker count.
    pub fn to_chrome_json(&self) -> String {
        let st = self.lock();
        let mut out = String::with_capacity(256 + st.events.len() * 160);
        out.push_str(
            "{\"displayTimeUnit\":\"ms\",\
             \"otherData\":{\"clock\":\"simulated device cycles\"},\
             \"traceEvents\":[",
        );
        for (i, e) in st.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n{\"name\":");
            emit_json_string(&e.name, &mut out);
            out.push_str(",\"cat\":");
            emit_json_string(e.kind.label(), &mut out);
            out.push_str(",\"ph\":");
            out.push_str(if e.counter { "\"C\"" } else { "\"X\"" });
            out.push_str(&format!(",\"ts\":{},", e.start_cycles));
            if !e.counter {
                out.push_str(&format!("\"dur\":{},", e.dur_cycles));
            }
            out.push_str(&format!("\"pid\":0,\"tid\":{}", e.track));
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    emit_json_string(k, &mut out);
                    out.push(':');
                    v.emit_json(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// A flamegraph-style text report: spans aggregated by category and
    /// name, sorted by total cycles (descending, name-tiebroken), with
    /// percentages of the device-stream total. Deterministic byte-for-byte.
    pub fn flame_report(&self) -> String {
        // (category, name) -> (cycles, count), BTreeMap for stable order.
        type SpanKey = (&'static str, String);
        type SpanStat = (u64, u64);
        let st = self.lock();
        let total = st.clock_cycles.max(1);
        let mut agg: BTreeMap<SpanKey, SpanStat> = BTreeMap::new();
        for e in st.events.iter().filter(|e| !e.counter) {
            let entry = agg
                .entry((e.kind.label(), e.name.clone()))
                .or_insert((0, 0));
            entry.0 += e.dur_cycles;
            entry.1 += 1;
        }
        let mut rows: Vec<(SpanKey, SpanStat)> = agg.into_iter().collect();
        rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));
        let mut out = format!(
            "trace report: {} events, {} device-stream cycles\n\
             {:<10} {:<44} {:>14} {:>7} {:>7}\n",
            st.events.len(),
            st.clock_cycles,
            "category",
            "span",
            "cycles",
            "%",
            "count"
        );
        for ((cat, name), (cycles, count)) in rows {
            let mut name = name;
            if name.len() > 44 {
                name.truncate(41);
                name.push_str("...");
            }
            out.push_str(&format!(
                "{:<10} {:<44} {:>14} {:>6.1}% {:>7}\n",
                cat,
                name,
                cycles,
                100.0 * cycles as f64 / total as f64,
                count
            ));
        }
        out
    }
}

/// Appends `s` as a JSON string literal with minimal escaping.
fn emit_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PhaseBreakdown;

    fn kernel_metrics(name: &str, elapsed: u64) -> KernelMetrics {
        KernelMetrics {
            name: name.into(),
            elapsed_cycles: elapsed,
            num_blocks: 8,
            l2_hits: 10,
            l2_misses: 5,
            phases: PhaseBreakdown {
                compute_cycles: elapsed / 2,
                dram_cycles: elapsed / 4,
                atomic_cycles: 0,
                launch_cycles: elapsed - elapsed / 2 - elapsed / 4,
            },
            ..Default::default()
        }
    }

    #[test]
    fn clock_advances_per_stream_span() {
        let t = TraceRecorder::new();
        let spec = GpuSpec::quadro_p6000();
        t.record_kernel(&kernel_metrics("k1", 1_000), &spec, &[], &[]);
        assert_eq!(t.clock_cycles(), 1_000);
        t.record_gemm(&kernel_metrics("g1", 500));
        assert_eq!(t.clock_cycles(), 1_500);
        let events = t.events();
        // Kernel span, launch span, cache counter, gemm span.
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].start_cycles, 1_000, "gemm starts after kernel");
    }

    #[test]
    fn shard_and_hotspot_spans_sit_inside_the_kernel_body() {
        let t = TraceRecorder::new();
        let spec = GpuSpec::quadro_p6000();
        let shards = vec![ShardTrace {
            first_block: 0,
            num_blocks: 64,
            cycles: 700,
            l2_hits: 3,
            l2_misses: 2,
            dram_bytes: 256,
        }];
        let hot = vec![HotBlock {
            block_id: 7,
            shard: 0,
            offset_cycles: 100,
            cycles: 50,
        }];
        t.record_kernel(&kernel_metrics("k", 10_000), &spec, &shards, &hot);
        let events = t.events();
        let shard = events
            .iter()
            .find(|e| e.kind == SpanKind::ShardChunk)
            .expect("shard span");
        assert_eq!(shard.start_cycles, spec.kernel_launch_cycles);
        assert_eq!(shard.track, 1);
        let hotspot = events
            .iter()
            .find(|e| e.kind == SpanKind::BlockHotspot)
            .expect("hotspot span");
        assert_eq!(hotspot.start_cycles, spec.kernel_launch_cycles + 100);
        assert_eq!(hotspot.dur_cycles, 50);
    }

    #[test]
    fn chrome_json_shape_and_determinism() {
        let build = || {
            let t = TraceRecorder::new();
            let spec = GpuSpec::quadro_p6000();
            t.record_kernel(&kernel_metrics("agg", 2_000), &spec, &[], &[]);
            t.record_transfer(
                &TransferMetrics {
                    bytes: 4_096,
                    time_ms: 0.01,
                },
                &spec,
            );
            t.to_chrome_json()
        };
        let a = build();
        assert_eq!(a, build(), "identical recordings emit identical bytes");
        assert!(a.starts_with('{') && a.trim_end().ends_with('}'));
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"cat\":\"kernel\""));
        assert!(a.contains("\"cat\":\"transfer\""));
        // Balanced braces/brackets (cheap well-formedness probe; nothing in
        // the workspace parses JSON back).
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn flame_report_aggregates_and_sorts() {
        let t = TraceRecorder::new();
        let spec = GpuSpec::quadro_p6000();
        t.record_kernel(&kernel_metrics("small", 100), &spec, &[], &[]);
        t.record_kernel(&kernel_metrics("big", 9_000), &spec, &[], &[]);
        t.record_kernel(&kernel_metrics("big", 9_000), &spec, &[], &[]);
        let report = t.flame_report();
        let big = report.find("big").expect("big row");
        let small = report.find("small").expect("small row");
        assert!(big < small, "rows sorted by total cycles:\n{report}");
        assert!(report.contains("count"));
        assert_eq!(t.flame_report(), report, "report is deterministic");
    }

    #[test]
    fn clear_rewinds() {
        let t = TraceRecorder::new();
        t.record_gemm(&kernel_metrics("g", 10));
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.clock_cycles(), 0);
    }

    #[test]
    fn json_strings_escape() {
        let mut s = String::new();
        emit_json_string("a\"b\\c\nd", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
