//! Kernel abstraction: grids, op streams, and the block sink.
//!
//! A [`Kernel`] describes a launch ([`GridConfig`]) and, per thread block,
//! emits warp-granularity operations into a [`BlockSink`]. The engine
//! provides the sink; kernels never materialize a trace, so multi-million
//! edge graphs stream through in O(1) memory.
//!
//! Divergence convention: ops are *warp-level*. An emitter that knows its
//! per-lane workloads calls [`BlockSink::compute_lanes`], which charges the
//! maximum over lanes — the SIMT lockstep cost — and records the sum as
//! useful work so SM-efficiency reflects the waste.

use crate::spec::{BlockResources, DEFAULT_REGS_PER_THREAD};
use crate::GpuError;

/// Identifies a simulated global-memory array (feature matrix, CSR arrays,
/// output buffer...). Each array owns a disjoint address range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Byte-address base of this array in the flat simulated address space.
    /// 16 TiB per array keeps arrays disjoint without bookkeeping.
    pub(crate) fn base(self) -> u64 {
        (self.0 as u64) << 44
    }
}

/// Launch configuration of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of thread blocks.
    pub num_blocks: usize,
    /// Threads per block (multiple of the warp width for full warps;
    /// ragged tails are permitted and simply leave lanes idle).
    pub threads_per_block: u32,
    /// Shared memory requested per block, in bytes.
    pub shared_mem_bytes: usize,
}

impl GridConfig {
    /// Validates the launch against a device's limits.
    pub fn validate(&self, spec: &crate::GpuSpec) -> crate::Result<()> {
        if self.num_blocks == 0 {
            return Err(GpuError::EmptyGrid);
        }
        if self.threads_per_block == 0 || self.threads_per_block > spec.max_threads_per_block {
            return Err(GpuError::InvalidBlockSize {
                requested: self.threads_per_block,
                max: spec.max_threads_per_block,
            });
        }
        if self.shared_mem_bytes > spec.shared_mem_per_block {
            return Err(GpuError::SharedMemoryOverflow {
                requested: self.shared_mem_bytes,
                limit: spec.shared_mem_per_block,
            });
        }
        debug_assert!(
            spec.occupancy_limit(&self.resources()).is_launchable(),
            "a validated grid must be admissible on an empty SM"
        );
        Ok(())
    }

    /// The per-block resource demand this launch presents to the device
    /// core's admission check ([`crate::GpuSpec::occupancy_limit`]).
    /// Register demand defaults to [`DEFAULT_REGS_PER_THREAD`]; kernels
    /// with unusual register pressure override
    /// [`Kernel::block_resources`].
    pub fn resources(&self) -> BlockResources {
        BlockResources {
            regs_per_thread: DEFAULT_REGS_PER_THREAD,
            smem_bytes: self.shared_mem_bytes,
            threads: self.threads_per_block,
        }
    }
}

/// Warp width of every simulated device.
pub const WARP_SIZE: u32 = 32;

/// A kernel that can be launched on the simulated device.
///
/// `Sync` is required so the engine can shard one launch's block loop
/// across scoped worker threads; emitters are read-only descriptions of
/// the launch, so this is free in practice.
pub trait Kernel: Sync {
    /// Kernel name for reports.
    fn name(&self) -> &str;

    /// The launch configuration.
    fn grid(&self) -> GridConfig;

    /// The per-block resource demand the command processor admits this
    /// kernel's blocks against. Defaults to the grid's shape with
    /// [`DEFAULT_REGS_PER_THREAD`] registers per thread; override to
    /// declare real register pressure.
    fn block_resources(&self) -> BlockResources {
        self.grid().resources()
    }

    /// Emits the operations of one thread block. Call
    /// [`BlockSink::begin_warp`] before each warp's ops.
    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>);
}

/// Per-warp accumulators filled by the sink.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WarpAcc {
    /// Issue-occupancy cycles (compute + transaction issue + atomics).
    pub busy: u64,
    /// Useful work in lane-cycles (sum over lanes, for SM efficiency).
    pub useful: u64,
    /// Memory stall cycles before latency hiding.
    pub stall: u64,
}

/// Per-block accumulators. Owned by the run context and recycled across
/// blocks: [`BlockAcc::reset`] zeroes the counters while keeping the warp
/// arrays' capacity, so steady-state block simulation allocates nothing.
///
/// Warp accumulators are stored struct-of-arrays: the engine's reductions
/// (busy/useful sums, critical-path max over `busy + stall / hiding`) each
/// stream over one or two homogeneous `u64` slices instead of striding
/// through interleaved records, and `flush_warp` appends to flat arrays.
#[derive(Debug, Default, Clone)]
pub(crate) struct BlockAcc {
    /// Per-warp issue-occupancy cycles, indexed by warp emission order.
    pub warp_busy: Vec<u64>,
    /// Per-warp useful lane-cycles, parallel to `warp_busy`.
    pub warp_useful: Vec<u64>,
    /// Per-warp memory stall cycles, parallel to `warp_busy`.
    pub warp_stall: Vec<u64>,
    pub dram_read_bytes: u64,
    pub dram_write_bytes: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub atomic_ops: u64,
    pub serialized_atomics: u64,
    pub shared_bytes: u64,
    pub syncs: u64,
}

impl BlockAcc {
    /// Clears the accumulators for the next block, keeping allocations.
    pub fn reset(&mut self) {
        self.warp_busy.clear();
        self.warp_useful.clear();
        self.warp_stall.clear();
        self.dram_read_bytes = 0;
        self.dram_write_bytes = 0;
        self.l2_hits = 0;
        self.l2_misses = 0;
        self.atomic_ops = 0;
        self.serialized_atomics = 0;
        self.shared_bytes = 0;
        self.syncs = 0;
    }
}

/// The engine-provided consumer of a block's op stream.
///
/// All cost arithmetic lives here so kernels stay declarative: they state
/// *what* each warp does and the sink prices it against the device spec and
/// the shared cache.
pub struct BlockSink<'a> {
    spec: &'a crate::GpuSpec,
    cache: &'a mut crate::cache::SetAssocCache,
    /// Global per-address atomic contention counters (line granularity),
    /// shared across the whole kernel.
    atomic_hotspots: &'a mut std::collections::HashMap<u64, u64>,
    /// Intra-block contention factor: shared-memory banks and atomic units
    /// congest as more warps share one block ("the inter-thread contention
    /// in each block will become severer", Section 7.1) — the right-hand
    /// rise of Figure 11b.
    contention: u64,
    /// Borrowed from the run context so its buffers outlive the sink and
    /// are recycled across blocks. [`BlockSink::new`] resets it.
    pub(crate) acc: &'a mut BlockAcc,
    current: Option<WarpAcc>,
}

impl<'a> BlockSink<'a> {
    pub(crate) fn new(
        spec: &'a crate::GpuSpec,
        cache: &'a mut crate::cache::SetAssocCache,
        atomic_hotspots: &'a mut std::collections::HashMap<u64, u64>,
        acc: &'a mut BlockAcc,
        threads_per_block: u32,
    ) -> Self {
        let contention = ((threads_per_block / WARP_SIZE) as u64 / 8).max(1);
        acc.reset();
        Self {
            spec,
            cache,
            atomic_hotspots,
            contention,
            acc,
            current: None,
        }
    }

    /// Starts a new warp; finalizes the previous one.
    pub fn begin_warp(&mut self) {
        self.flush_warp();
        self.current = Some(WarpAcc::default());
    }

    fn flush_warp(&mut self) {
        if let Some(w) = self.current.take() {
            self.acc.warp_busy.push(w.busy);
            self.acc.warp_useful.push(w.useful);
            self.acc.warp_stall.push(w.stall);
        }
    }

    pub(crate) fn finish(&mut self) {
        self.flush_warp();
    }

    fn warp(&mut self) -> &mut WarpAcc {
        // Auto-open a warp so simple emitters can skip begin_warp for
        // single-warp blocks.
        if self.current.is_none() {
            self.current = Some(WarpAcc::default());
        }
        self.current.as_mut().expect("just ensured")
    }

    /// Charges `cycles` of uniform compute across `active_lanes` lanes.
    pub fn compute(&mut self, cycles: u64, active_lanes: u32) {
        let w = self.warp();
        w.busy += cycles;
        w.useful += cycles * active_lanes.min(WARP_SIZE) as u64;
    }

    /// Charges divergent per-lane compute: the warp occupies the issue
    /// pipeline for `max(lanes)` cycles while only `sum(lanes)` lane-cycles
    /// are useful. This is the primitive behind the node-centric baseline's
    /// imbalance penalty (Figure 4b).
    pub fn compute_lanes(&mut self, lane_cycles: &[u64]) {
        debug_assert!(
            lane_cycles.len() <= WARP_SIZE as usize,
            "a warp has at most 32 lanes"
        );
        let max = lane_cycles.iter().copied().max().unwrap_or(0);
        let sum: u64 = lane_cycles.iter().sum();
        let w = self.warp();
        w.busy += max;
        w.useful += sum;
    }

    /// Coalesced global read of `bytes` starting at `offset` within
    /// `array`: the warp touches `ceil(bytes / line)` transactions.
    pub fn global_read(&mut self, array: ArrayId, offset: u64, bytes: u64) {
        self.global_access(array, offset, bytes, false, true);
    }

    /// Coalesced global write.
    pub fn global_write(&mut self, array: ArrayId, offset: u64, bytes: u64) {
        self.global_access(array, offset, bytes, true, true);
    }

    /// Uncoalesced global read: each lane touches its own address, issuing
    /// one transaction per lane (the GunRock-style scalar-operator cost).
    /// `lane_offsets` are byte offsets within `array`; `bytes_per_lane` is
    /// the access width.
    pub fn global_read_scattered(
        &mut self,
        array: ArrayId,
        lane_offsets: &[u64],
        bytes_per_lane: u64,
    ) {
        debug_assert!(lane_offsets.len() <= WARP_SIZE as usize);
        let base = array.base();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &off in lane_offsets {
            let (h, m) = self.cache.access_range(base + off, bytes_per_lane);
            hits += h;
            misses += m;
        }
        // Every touched line is its own transaction (each lane walks its
        // own row), and each transaction keeps only one lane busy:
        // scattered access wastes 31/32 of every memory transaction, which
        // is exactly the coalescing penalty Section 5.4 optimizes away —
        // and it grows linearly with the embedding width.
        self.note_read(hits, misses, hits + misses, 1);
    }

    /// Strided / team-width read: the warp reads `[offset, offset + bytes)`
    /// of `array` in `transactions` memory transactions, each of which keeps
    /// `useful_lanes` lanes busy. This models dimension-based workload
    /// sharing (Section 5.4): a team of `dw` adjacent lanes covering
    /// adjacent dimensions needs `ceil(D / dw)` transactions per embedding
    /// row and utilizes `dw` lanes per transaction — `dw = 32` is fully
    /// coalesced, `dw = 1` wastes 31/32 of each transaction.
    pub fn global_read_strided(
        &mut self,
        array: ArrayId,
        offset: u64,
        bytes: u64,
        transactions: u64,
        useful_lanes: u32,
    ) {
        if bytes == 0 {
            return;
        }
        let (hits, misses) = self.cache.access_range(array.base() + offset, bytes);
        let line = self.cache.line_bytes();
        self.acc.dram_read_bytes += misses * line;
        self.acc.l2_hits += hits;
        self.acc.l2_misses += misses;
        let issue = self.spec.transaction_issue_cycles;
        let l2 = self.spec.l2_latency_cycles;
        let dram = self.spec.dram_latency_cycles;
        let w = self.warp();
        w.busy += transactions * issue;
        w.useful += transactions * issue * useful_lanes.min(WARP_SIZE) as u64;
        // One latency exposure per call; the row's line fetches pipeline.
        let exposure = if misses > 0 {
            dram
        } else if hits > 0 {
            l2
        } else {
            0
        };
        w.stall += exposure + (hits + misses).saturating_sub(1) * 4;
    }

    fn global_access(
        &mut self,
        array: ArrayId,
        offset: u64,
        bytes: u64,
        write: bool,
        _coalesced: bool,
    ) {
        if bytes == 0 {
            return;
        }
        let (hits, misses) = self.cache.access_range(array.base() + offset, bytes);
        let transactions = hits + misses;
        if write {
            let line = self.cache.line_bytes();
            self.acc.dram_write_bytes += misses * line;
            self.acc.l2_hits += hits;
            self.acc.l2_misses += misses;
            let w_spec = (
                self.spec.transaction_issue_cycles,
                self.spec.l2_latency_cycles,
            );
            let w = self.warp();
            w.busy += transactions * w_spec.0;
            w.useful += transactions * w_spec.0 * WARP_SIZE as u64;
            // Writes are fire-and-forget through the write buffer: one
            // short exposure, the rest drains behind it.
            w.stall += w_spec.1 / 2 + transactions.saturating_sub(1) * 2;
        } else {
            self.note_read(hits, misses, transactions, WARP_SIZE as u64);
        }
    }

    fn note_read(&mut self, hits: u64, misses: u64, transactions: u64, useful_lanes: u64) {
        let line = self.cache.line_bytes();
        self.acc.dram_read_bytes += misses * line;
        self.acc.l2_hits += hits;
        self.acc.l2_misses += misses;
        let issue = self.spec.transaction_issue_cycles;
        let l2 = self.spec.l2_latency_cycles;
        let dram = self.spec.dram_latency_cycles;
        let w = self.warp();
        w.busy += transactions * issue;
        w.useful += transactions * issue * useful_lanes;
        // One read call exposes one latency: the call's line fetches are
        // independent and pipeline behind the first (a short per-line
        // drain models the memory pipe). Misses dominate the exposure.
        let exposure = if misses > 0 {
            dram
        } else if hits > 0 {
            l2
        } else {
            0
        };
        w.stall += exposure + (hits + misses).saturating_sub(1) * 4;
    }

    /// Shared-memory access of `bytes` (read or write cost identical).
    pub fn shared_access(&mut self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        self.acc.shared_bytes += bytes;
        // One shared transaction serves a warp-wide 128 B access.
        let transactions = bytes.div_ceil(128);
        let lat = self.spec.shared_latency_cycles * self.contention;
        let w = self.warp();
        w.busy += transactions;
        w.useful += transactions * WARP_SIZE as u64;
        w.stall += lat + transactions.saturating_sub(1) * 2;
    }

    /// `count` atomic read-modify-write operations landing on *distinct
    /// words* of the region `[offset, offset + span_bytes)` of `array` —
    /// one call models one flush of an embedding row (or one per-edge
    /// push). Atomics within a single call target different addresses and
    /// do not contend; contention arises between *calls* overlapping the
    /// same region (two leaders flushing the same node row, or many edges
    /// pushing to one destination). Each line records how many calls
    /// (rounds) touched it; a call on an already-touched line pays
    /// serialization for all its atomics there, and the hottest line's
    /// round count bounds the kernel's elapsed time (the engine applies
    /// that bound — the per-word serial chain is one op per round).
    pub fn atomic_rmw(&mut self, array: ArrayId, offset: u64, span_bytes: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.acc.atomic_ops += count;
        let line_bytes = self.cache.line_bytes();
        let base = array.base() + offset;
        let first = base / line_bytes;
        let last = (base + span_bytes.max(1) - 1) / line_bytes;
        let lines = last - first + 1;
        let per_line = count / lines.max(1);
        let mut extra = count % lines.max(1);
        // Words available per line within the span (atomics are 4-byte).
        let span_words = (span_bytes.max(4) / 4).max(1);
        let words_per_line = (line_bytes / 4).min(span_words.div_ceil(lines));
        let mut serialized: u64 = 0;
        for line in first..=last {
            let c = per_line
                + if extra > 0 {
                    extra -= 1;
                    1
                } else {
                    0
                };
            if c == 0 {
                continue;
            }
            // This call lands `c` atomics on at most `words_per_line`
            // distinct words of the line: `rounds_here` is its own
            // per-word serial chain; anything beyond one op per word
            // self-serializes even on a cold line.
            let rounds_here = c.div_ceil(words_per_line.max(1));
            let rounds = self.atomic_hotspots.entry(line).or_insert(0);
            serialized += if *rounds > 0 {
                c
            } else {
                c - c.min(words_per_line)
            };
            *rounds += rounds_here;
        }
        // Atomics also traffic memory: charge reads through the cache so
        // the DRAM counters see them.
        let (hits, misses) = self.cache.access_range(base, span_bytes.max(1));
        self.acc.l2_hits += hits;
        self.acc.l2_misses += misses;
        self.acc.dram_read_bytes += misses * line_bytes;
        // Atomic RMWs resolve at the memory-side L2 and write through to
        // DRAM at line granularity, so every flush round produces write
        // traffic — this is the DRAM component the leader-node scheme and
        // shared-memory staging save (Figure 12c).
        self.acc.dram_write_bytes += lines * line_bytes;
        self.acc.serialized_atomics += serialized;
        let atomic_lat = self.spec.atomic_latency_cycles;
        let ser = self.spec.atomic_serialize_cycles;
        let w = self.warp();
        // A warp issues up to 32 atomics per instruction; atomics to
        // *different* lines proceed in parallel at the L2 atomic units, so
        // latency is charged per line touched while same-line conflicts pay
        // the serialization term.
        w.busy += count.div_ceil(WARP_SIZE as u64) * 2;
        // One atomic-latency exposure per call plus the serial chain.
        w.stall += atomic_lat + lines.saturating_sub(1) * 4 + serialized * ser;
        w.useful += count.div_ceil(WARP_SIZE as u64) * 2;
    }

    /// A `__syncthreads` barrier.
    pub fn sync(&mut self) {
        self.acc.syncs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use crate::GpuSpec;

    #[allow(clippy::type_complexity)]
    fn harness() -> (
        GpuSpec,
        SetAssocCache,
        std::collections::HashMap<u64, u64>,
        BlockAcc,
    ) {
        let spec = GpuSpec::quadro_p6000();
        let cache = SetAssocCache::new(spec.l2_sets(), spec.l2_ways, spec.line_bytes);
        (
            spec,
            cache,
            std::collections::HashMap::new(),
            BlockAcc::default(),
        )
    }

    #[test]
    fn compute_lanes_charges_max_counts_sum() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.compute_lanes(&[10, 2, 2, 2]);
        sink.finish();
        assert_eq!(sink.acc.warp_busy.len(), 1);
        assert_eq!(sink.acc.warp_busy[0], 10, "lockstep pays the max lane");
        assert_eq!(sink.acc.warp_useful[0], 16, "useful work is the lane sum");
    }

    #[test]
    fn coalesced_read_uses_line_transactions() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.global_read(ArrayId(0), 0, 128); // exactly one line
        sink.finish();
        assert_eq!(sink.acc.l2_misses, 1);
        assert_eq!(sink.acc.dram_read_bytes, 128);
        assert_eq!(sink.acc.warp_busy[0], spec.transaction_issue_cycles);
        assert_eq!(sink.acc.warp_stall[0], spec.dram_latency_cycles);
    }

    #[test]
    fn scattered_read_pays_per_lane() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        // Four lanes touching four distinct lines.
        sink.global_read_scattered(ArrayId(0), &[0, 4096, 8192, 12288], 4);
        sink.finish();
        assert_eq!(sink.acc.l2_misses, 4, "each lane is its own transaction");

        // The same data read coalesced touches one line per 128 B.
        let (spec2, mut cache2, mut hot2, mut acc2) = harness();
        let mut sink2 = BlockSink::new(&spec2, &mut cache2, &mut hot2, &mut acc2, 256);
        sink2.begin_warp();
        sink2.global_read(ArrayId(0), 0, 16);
        sink2.finish();
        assert_eq!(sink2.acc.l2_misses, 1);
    }

    #[test]
    fn reuse_hits_cache() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.global_read(ArrayId(1), 0, 256);
        sink.global_read(ArrayId(1), 0, 256);
        sink.finish();
        assert_eq!(sink.acc.l2_misses, 2);
        assert_eq!(sink.acc.l2_hits, 2);
        assert_eq!(sink.acc.dram_read_bytes, 256, "only the misses reach DRAM");
    }

    #[test]
    fn arrays_do_not_alias() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.global_read(ArrayId(0), 0, 128);
        sink.global_read(ArrayId(1), 0, 128);
        sink.finish();
        assert_eq!(
            sink.acc.l2_misses, 2,
            "same offset in different arrays is distinct"
        );
    }

    #[test]
    fn atomic_contention_serializes() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.atomic_rmw(ArrayId(2), 0, 4, 1);
        sink.begin_warp();
        sink.atomic_rmw(ArrayId(2), 0, 4, 1);
        sink.finish();
        assert_eq!(sink.acc.atomic_ops, 2);
        assert_eq!(
            sink.acc.warp_stall[0], spec.atomic_latency_cycles,
            "first atomic unserialised"
        );
        assert_eq!(
            sink.acc.warp_stall[1],
            spec.atomic_latency_cycles + spec.atomic_serialize_cycles,
            "second atomic on the same line pays serialization"
        );
    }

    #[test]
    fn grid_validation() {
        let spec = GpuSpec::quadro_p6000();
        let ok = GridConfig {
            num_blocks: 1,
            threads_per_block: 256,
            shared_mem_bytes: 0,
        };
        assert!(ok.validate(&spec).is_ok());
        let empty = GridConfig {
            num_blocks: 0,
            ..ok
        };
        assert_eq!(empty.validate(&spec), Err(GpuError::EmptyGrid));
        let fat = GridConfig {
            threads_per_block: 2048,
            ..ok
        };
        assert!(matches!(
            fat.validate(&spec),
            Err(GpuError::InvalidBlockSize { .. })
        ));
        let hog = GridConfig {
            shared_mem_bytes: 1 << 20,
            ..ok
        };
        assert!(matches!(
            hog.validate(&spec),
            Err(GpuError::SharedMemoryOverflow { .. })
        ));
    }

    #[test]
    fn shared_access_is_cheap() {
        let (spec, mut cache, mut hot, mut acc) = harness();
        let mut sink = BlockSink::new(&spec, &mut cache, &mut hot, &mut acc, 256);
        sink.begin_warp();
        sink.shared_access(128);
        sink.finish();
        assert!(
            sink.acc.warp_stall[0] < spec.dram_latency_cycles / 4,
            "shared must be far cheaper than DRAM"
        );
        assert_eq!(sink.acc.shared_bytes, 128);
    }
}
