//! Simulated CUDA-style streams and events on the simulated clock.
//!
//! The serial [`Engine`] answers "how long does this kernel take alone?";
//! this module answers "how long does a *mix* take when issued onto
//! concurrent streams?" — the question serving workloads ask. A
//! [`StreamSim`] borrows an engine, prices every enqueued [`Workload`]
//! through the engine's deterministic cost model at enqueue time, and then
//! schedules the priced ops with a serial discrete-event loop that models
//! the overlap machinery of a real device:
//!
//! - **Per-stream FIFO**: ops on one stream execute in enqueue order,
//!   never overlapping each other.
//! - **Copy/compute overlap**: transfers occupy a single copy engine
//!   (serialized among themselves, like one DMA engine per direction-less
//!   PCIe model), while kernels occupy SMs — a copy and a kernel on
//!   different streams proceed concurrently.
//! - **Block-level admission**: a kernel is not a monolithic reservation.
//!   Its thread blocks are admitted to per-SM slots by the device core's
//!   [`CommandProcessor`] against register-file bytes, shared-memory
//!   bytes, warp slots, and block slots ([`crate::GpuSpec`] limits), and
//!   retired on the simulated clock by the [`RetirementQueue`], freeing
//!   their resources for whoever is waiting. Two kernels whose block
//!   shapes fit co-reside on the *same* SM (true kernel co-residency); a
//!   kernel that finds no free slots trickles in as earlier blocks
//!   retire.
//! - **Events**: [`StreamSim::record_event`] marks a point in one
//!   stream's FIFO; [`StreamSim::wait_event`] gates another stream on it
//!   (cross-stream dependencies without coupling whole streams).
//!
//! The event loop advances the clock from instant to instant; at each
//! instant it retires due blocks, admits waiting blocks in kernel
//! activation order, and commits every schedulable stream head, scanning
//! streams in ascending id — so heads that become schedulable at the same
//! cycle commit in **lowest-stream-id order**, even when the copy engine
//! and an SM slot free at the same cycle. The schedule is a pure function
//! of the enqueued ops: pricing is worker-count-invariant and the
//! scheduler is serial, so reports and traces are byte-identical at any
//! `GNNADVISOR_SIM_THREADS` value.
//!
//! A kernel's span runs from its first block admission to its last block
//! retirement plus the launch-overhead teardown, so a kernel alone on an
//! idle device spans exactly its standalone `elapsed_cycles`. Each kernel
//! span also reports its **achieved occupancy** — time-averaged resident
//! warps over the device's warp slots across the span's execution window
//! (see [`OpSpan::occupancy`]).
//!
//! With a tracer attached to the engine, the committed schedule is
//! recorded as overlapping [`SpanKind::StreamKernel`] /
//! [`SpanKind::StreamCopy`] spans, one chrome lane per stream.

use crate::context::RunContext;
use crate::device::{BlockDemand, CommandProcessor, Retirement, RetirementQueue};
use crate::engine::{Engine, Workload, WorkloadMetrics, GEMM_BLOCK_RESOURCES};
use crate::fault::FaultKind;
use crate::trace::{ArgValue, SpanKind, TraceEvent, STREAM_TRACK_BASE};
use crate::{GpuError, Result};

/// Identifies one simulated stream of a [`StreamSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(usize);

impl StreamId {
    /// The stream's index (issue order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Identifies one simulated event of a [`StreamSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// Handle to one enqueued op: its stream and position in that stream's
/// FIFO. Use it to look up completion times in the [`StreamReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpHandle {
    /// The stream the op was enqueued on.
    pub stream: StreamId,
    /// The op's position in the stream's FIFO.
    pub index: usize,
}

/// What one scheduled op was, as reported in [`OpSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A kernel launch or roofline GEMM occupying per-SM block slots.
    Kernel,
    /// A host↔device transfer occupying the copy engine.
    Copy,
    /// An event record or wait (zero duration).
    Event,
}

/// One op's placement on the committed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// The stream the op ran on.
    pub stream: StreamId,
    /// The op's position in its stream's FIFO.
    pub index: usize,
    /// Display name (kernel name, `copy <n> B`, `record`/`wait`).
    pub name: String,
    /// What kind of op this was.
    pub class: OpClass,
    /// Scheduled start on the simulated clock, cycles. For kernels this
    /// is the first block admission.
    pub start_cycles: u64,
    /// Scheduled end on the simulated clock, cycles. For kernels this is
    /// the last block retirement plus the launch-overhead teardown.
    pub end_cycles: u64,
    /// Achieved occupancy over the span for kernels, `0.0` for copies and
    /// events: time-averaged resident warps of this kernel over the
    /// device's total warp slots, across the span's execution window
    /// (start to last retirement). A kernel squeezed in next to another
    /// kernel's blocks reports the share it actually held.
    pub occupancy: f64,
    /// The injected fault that killed this op, if any. A faulted op still
    /// occupies its resources for its full `[start, end)` window — the
    /// failure is observed at `end_cycles`.
    pub fault: Option<FaultKind>,
}

/// The committed schedule of one [`StreamSim::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Every op's placement, sorted by `(start_cycles, stream, index)` —
    /// so equal-start spans read in lowest-stream-id commit order.
    pub spans: Vec<OpSpan>,
    /// End of the last op, cycles (the schedule's simulated wall time).
    pub makespan_cycles: u64,
    /// The makespan in milliseconds at the device clock.
    pub makespan_ms: f64,
    /// Total cycles of kernel occupancy (sum over kernel spans of
    /// duration).
    pub kernel_busy_cycles: u64,
    /// Total cycles the copy engine was busy.
    pub copy_busy_cycles: u64,
    /// Highest number of distinct kernels simultaneously resident on one
    /// SM — `>= 2` is proof of true kernel co-residency.
    pub max_coresident_kernels_per_sm: u32,
    /// Peak device-wide resident warp slots at any instant; never exceeds
    /// `num_sms * max_warps_per_sm` (the admission invariant).
    pub peak_resident_warps: u64,
}

impl StreamReport {
    /// The completion cycle of one enqueued op.
    pub fn op_end(&self, handle: OpHandle) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.stream == handle.stream && s.index == handle.index)
            .map(|s| s.end_cycles)
    }

    /// Duration-weighted mean achieved occupancy over the kernel spans,
    /// `0.0` when the schedule ran no kernels.
    pub fn mean_kernel_occupancy(&self) -> f64 {
        let mut weight = 0u64;
        let mut acc = 0.0;
        for span in &self.spans {
            if span.class == OpClass::Kernel {
                let dur = span.end_cycles - span.start_cycles;
                weight += dur;
                acc += span.occupancy * dur as f64;
            }
        }
        if weight == 0 {
            0.0
        } else {
            acc / weight as f64
        }
    }
}

/// The block-level shape of a priced kernel: what the device core admits.
#[derive(Debug, Clone, Copy)]
struct KernelShape {
    /// Thread blocks to admit.
    blocks: u64,
    /// Per-block resource demand.
    demand: BlockDemand,
    /// Warp slots per block (for occupancy reporting).
    warps_per_block: u32,
    /// Cycles each block holds its slot: standalone body time split over
    /// the waves the launch needs alone on the device, so a kernel alone
    /// finishes in its standalone time and a crowded kernel stretches.
    block_cycles: u64,
    /// Launch-overhead teardown charged after the last retirement.
    launch_cycles: u64,
}

/// The priced, schedulable form of one enqueued op.
#[derive(Debug, Clone)]
enum OpKind {
    /// Admits `shape.blocks` blocks through the command processor.
    Kernel(KernelShape),
    /// Occupies the copy engine for `cycles`.
    Copy { cycles: u64 },
    /// Marks the event complete when reached in the stream's FIFO.
    Record { event: usize },
    /// Blocks the stream until the event completes.
    Wait { event: usize },
}

#[derive(Debug, Clone)]
struct Op {
    kind: OpKind,
    name: String,
    /// Earliest permitted start on the simulated clock (a release time —
    /// serving uses it to pin batches to their dispatch instants).
    not_before: u64,
    /// The injected fault this op dies with, drawn at enqueue time.
    fault: Option<FaultKind>,
}

/// A kernel the command processor is currently admitting or draining.
#[derive(Debug)]
struct ActiveKernel {
    stream: usize,
    index: usize,
    name: String,
    fault: Option<FaultKind>,
    shape: KernelShape,
    /// Blocks not yet admitted to an SM.
    to_admit: u64,
    /// Blocks admitted or pending whose retirement has not happened.
    to_retire: u64,
    /// First block admission instant (the span start).
    first_admit: Option<u64>,
}

/// What [`StreamSim::try_enqueue_at`] committed: the op's handle, its
/// standalone metrics, and — with a fault plan attached to the engine —
/// whether the op is doomed to fail on the schedule. The fault is known
/// at enqueue time (verdicts are drawn in submission order), so callers
/// can plan retries before running the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Enqueued {
    /// Handle for completion-time lookups in the [`StreamReport`].
    pub handle: OpHandle,
    /// The op's standalone metrics (stretched if the op drew a slowdown).
    pub metrics: WorkloadMetrics,
    /// The fault this op will die with, if any; it still burns its full
    /// priced time on the schedule first.
    pub fault: Option<FaultKind>,
}

/// A deterministic multi-stream scheduler over one [`Engine`]. See the
/// module docs for the model; see [`StreamSim::run`] for the output.
#[derive(Debug)]
pub struct StreamSim<'e> {
    engine: &'e Engine,
    /// Private pricing context, so enqueue-time pricing neither contends
    /// with nor perturbs the engine's shared context users.
    ctx: RunContext,
    streams: Vec<Vec<Op>>,
    /// `Some(record op issued)` per created event.
    event_recorded: Vec<bool>,
}

impl<'e> StreamSim<'e> {
    /// A simulator with no streams over `engine`'s cost model.
    pub fn new(engine: &'e Engine) -> Self {
        Self {
            engine,
            ctx: RunContext::new(),
            streams: Vec::new(),
            event_recorded: Vec::new(),
        }
    }

    /// Creates a new, empty stream.
    pub fn stream(&mut self) -> StreamId {
        self.streams.push(Vec::new());
        StreamId(self.streams.len() - 1)
    }

    /// Number of created streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Enqueues a workload on `stream`, pricing it through the engine
    /// immediately (ops are priced as if alone on the device; the
    /// scheduler arbitrates only *when* their blocks run). Returns the
    /// op's handle and its standalone metrics.
    pub fn enqueue(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
    ) -> Result<(OpHandle, WorkloadMetrics)> {
        self.enqueue_at(stream, workload, 0)
    }

    /// [`StreamSim::enqueue`] with a release time: the op may not start
    /// before `not_before_cycles` on the simulated clock, even if its
    /// stream is idle earlier.
    pub fn enqueue_at(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
        not_before_cycles: u64,
    ) -> Result<(OpHandle, WorkloadMetrics)> {
        self.try_enqueue_at(stream, workload, not_before_cycles)
            .map(|e| (e.handle, e.metrics))
    }

    /// [`StreamSim::enqueue_at`] exposing the op's enqueue-time fault
    /// verdict (always `None` without a fault plan on the engine).
    pub fn try_enqueue_at(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
        not_before_cycles: u64,
    ) -> Result<Enqueued> {
        self.check_stream(stream)?;
        let (metrics, fault) = self.engine.submit_untraced(&mut self.ctx, workload)?;
        let spec = self.engine.spec();
        let (kind, name) = match &metrics {
            WorkloadMetrics::Kernel(m) => {
                let resources = match workload {
                    Workload::Kernel(k) => k.block_resources(),
                    Workload::Gemm { .. } => GEMM_BLOCK_RESOURCES,
                    Workload::Transfer { .. } => {
                        unreachable!("transfers price to TransferMetrics")
                    }
                };
                // Split the standalone body over the waves the launch
                // needs alone: occupancy_limit blocks per SM at a time.
                let occupancy = spec.occupancy_limit(&resources).get().max(1) as u64;
                let capacity = occupancy * spec.num_sms as u64;
                let blocks = m.num_blocks.max(1);
                let waves = blocks.div_ceil(capacity);
                let body = m.elapsed_cycles.saturating_sub(spec.kernel_launch_cycles);
                (
                    OpKind::Kernel(KernelShape {
                        blocks,
                        demand: BlockDemand::of(&resources),
                        warps_per_block: resources.warps(),
                        block_cycles: body.div_ceil(waves.max(1)),
                        launch_cycles: spec.kernel_launch_cycles,
                    }),
                    m.name.clone(),
                )
            }
            WorkloadMetrics::Transfer(m) => (
                OpKind::Copy {
                    cycles: spec.ms_to_cycles(m.time_ms),
                },
                format!("copy {} B", m.bytes),
            ),
        };
        let handle = self.push_op(
            stream,
            Op {
                kind,
                name,
                not_before: not_before_cycles,
                fault,
            },
        );
        Ok(Enqueued {
            handle,
            metrics,
            fault,
        })
    }

    /// Creates an event. It completes when a [`StreamSim::record_event`]
    /// op for it is reached in its stream's FIFO.
    pub fn event(&mut self) -> EventId {
        self.event_recorded.push(false);
        EventId(self.event_recorded.len() - 1)
    }

    /// Enqueues a record op for `event` on `stream`: the event completes
    /// once every op enqueued on `stream` before this point has finished.
    pub fn record_event(&mut self, stream: StreamId, event: EventId) -> Result<OpHandle> {
        self.check_stream(stream)?;
        let recorded = self
            .event_recorded
            .get_mut(event.0)
            .ok_or(GpuError::UnknownEvent { id: event.0 })?;
        if *recorded {
            return Err(GpuError::InvalidConfig {
                reason: format!("event {} recorded twice", event.0),
            });
        }
        *recorded = true;
        Ok(self.push_op(
            stream,
            Op {
                kind: OpKind::Record { event: event.0 },
                name: format!("record e{}", event.0),
                not_before: 0,
                fault: None,
            },
        ))
    }

    /// Enqueues a wait op on `stream`: subsequent ops of the stream may
    /// not start until `event` completes.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<OpHandle> {
        self.check_stream(stream)?;
        if event.0 >= self.event_recorded.len() {
            return Err(GpuError::UnknownEvent { id: event.0 });
        }
        Ok(self.push_op(
            stream,
            Op {
                kind: OpKind::Wait { event: event.0 },
                name: format!("wait e{}", event.0),
                not_before: 0,
                fault: None,
            },
        ))
    }

    fn check_stream(&self, stream: StreamId) -> Result<()> {
        if stream.0 < self.streams.len() {
            Ok(())
        } else {
            Err(GpuError::UnknownStream { id: stream.0 })
        }
    }

    fn push_op(&mut self, stream: StreamId, op: Op) -> OpHandle {
        let fifo = &mut self.streams[stream.0];
        fifo.push(op);
        OpHandle {
            stream,
            index: fifo.len() - 1,
        }
    }

    /// Schedules every enqueued op and returns the committed timeline.
    ///
    /// Discrete-event loop over the device core: at each instant the loop
    /// (a) retires due block groups through the [`RetirementQueue`],
    /// returning their SM resources, (b) admits waiting blocks through
    /// the [`CommandProcessor`] in kernel activation order, and (c)
    /// commits every stream head whose dependencies (FIFO order, release
    /// time, event completion, copy-engine availability) are met,
    /// scanning streams in ascending id — heads that become schedulable
    /// at the same cycle therefore commit in lowest-stream-id order. The
    /// clock then advances to the next retirement, release, event, or
    /// copy-engine instant. Consumes the simulator — one `StreamSim` is
    /// one schedule.
    ///
    /// # Errors
    ///
    /// [`GpuError::StreamDeadlock`] when no head is schedulable but ops
    /// remain (every remaining head waits on an event whose record op
    /// sits behind another blocked wait, or was never enqueued). The
    /// reported stream is the lowest blocked id.
    pub fn run(self) -> Result<StreamReport> {
        let spec = self.engine.spec();
        let num_streams = self.streams.len();
        let total_ops: usize = self.streams.iter().map(Vec::len).sum();
        let device_warp_slots = spec.num_sms as u64 * spec.max_warps_per_sm() as u64;

        let mut next_op = vec![0usize; num_streams];
        /// Sentinel for "a kernel of this stream is still in flight".
        const IN_FLIGHT: u64 = u64::MAX;
        let mut stream_ready = vec![0u64; num_streams];
        let mut event_time: Vec<Option<u64>> = vec![None; self.event_recorded.len()];
        let mut copy_free = 0u64;
        let mut cp = CommandProcessor::new(spec);
        let mut rq = RetirementQueue::new();
        let mut active: Vec<ActiveKernel> = Vec::new();
        let mut spans: Vec<OpSpan> = Vec::new();
        let mut kernel_busy = 0u64;
        let mut copy_busy = 0u64;
        let mut resident_warps = 0u64;
        let mut peak_resident_warps = 0u64;
        let mut now = 0u64;

        while spans.len() < total_ops {
            // Fixpoint at `now`: retire, admit, and commit until nothing
            // changes at this instant.
            loop {
                let mut changed = false;

                // (a) Retire due block groups; completed kernels close
                // their span after the launch-overhead teardown.
                for r in rq.pop_due(now) {
                    let ak = &mut active[r.launch];
                    cp.retire(r.sm, r.launch, &ak.shape.demand, r.blocks);
                    resident_warps -= r.blocks * ak.shape.warps_per_block as u64;
                    ak.to_retire -= r.blocks;
                    changed = true;
                    if ak.to_retire == 0 {
                        let start = ak.first_admit.expect("retired blocks were admitted");
                        let end = now + ak.shape.launch_cycles;
                        let window = now - start;
                        let block_cycles_total = ak.shape.blocks
                            * ak.shape.block_cycles
                            * ak.shape.warps_per_block as u64;
                        let occupancy = if window == 0 {
                            0.0
                        } else {
                            (block_cycles_total as f64 / (window as f64 * device_warp_slots as f64))
                                .min(1.0)
                        };
                        kernel_busy += end - start;
                        spans.push(OpSpan {
                            stream: StreamId(ak.stream),
                            index: ak.index,
                            name: std::mem::take(&mut ak.name),
                            class: OpClass::Kernel,
                            start_cycles: start,
                            end_cycles: end,
                            occupancy,
                            fault: ak.fault,
                        });
                        stream_ready[ak.stream] = end;
                    }
                }

                // (b) Admit waiting blocks in kernel activation order
                // (FIFO — an earlier launch keeps first claim on freed
                // slots; within a launch, admission is breadth-first).
                for (id, ak) in active.iter_mut().enumerate() {
                    if ak.to_admit == 0 {
                        continue;
                    }
                    let placed = cp.admit_up_to(id, &ak.shape.demand, ak.to_admit);
                    let mut admitted = 0u64;
                    for (sm, blocks) in placed {
                        admitted += blocks;
                        rq.push(Retirement {
                            at: now + ak.shape.block_cycles,
                            launch: id,
                            sm,
                            blocks,
                        });
                    }
                    if admitted > 0 {
                        ak.to_admit -= admitted;
                        ak.first_admit.get_or_insert(now);
                        resident_warps += admitted * ak.shape.warps_per_block as u64;
                        peak_resident_warps = peak_resident_warps.max(resident_warps);
                        changed = true;
                    }
                }

                // (c) Commit schedulable stream heads, ascending stream
                // id: the deterministic tie-break.
                for s in 0..num_streams {
                    if stream_ready[s] == IN_FLIGHT {
                        continue;
                    }
                    let Some(op) = self.streams[s].get(next_op[s]) else {
                        continue;
                    };
                    let dep = stream_ready[s].max(op.not_before);
                    if dep > now {
                        continue;
                    }
                    match op.kind {
                        OpKind::Record { event } => {
                            event_time[event] = Some(now);
                        }
                        OpKind::Wait { event } => {
                            if event_time[event].is_none_or(|t| t > now) {
                                continue;
                            }
                        }
                        OpKind::Copy { cycles } => {
                            if copy_free > now {
                                continue;
                            }
                            copy_free = now + cycles;
                            copy_busy += cycles;
                            spans.push(OpSpan {
                                stream: StreamId(s),
                                index: next_op[s],
                                name: op.name.clone(),
                                class: OpClass::Copy,
                                start_cycles: now,
                                end_cycles: now + cycles,
                                occupancy: 0.0,
                                fault: op.fault,
                            });
                            stream_ready[s] = now + cycles;
                            next_op[s] += 1;
                            changed = true;
                            continue;
                        }
                        OpKind::Kernel(shape) => {
                            // Activation: the launch joins the admission
                            // queue; its span is closed at retirement.
                            active.push(ActiveKernel {
                                stream: s,
                                index: next_op[s],
                                name: op.name.clone(),
                                fault: op.fault,
                                shape,
                                to_admit: shape.blocks,
                                to_retire: shape.blocks,
                                first_admit: None,
                            });
                            stream_ready[s] = IN_FLIGHT;
                            next_op[s] += 1;
                            changed = true;
                            continue;
                        }
                    }
                    // Record / satisfied Wait: zero-duration event op.
                    spans.push(OpSpan {
                        stream: StreamId(s),
                        index: next_op[s],
                        name: op.name.clone(),
                        class: OpClass::Event,
                        start_cycles: now,
                        end_cycles: now,
                        occupancy: 0.0,
                        fault: None,
                    });
                    stream_ready[s] = now;
                    next_op[s] += 1;
                    changed = true;
                }

                if !changed {
                    break;
                }
            }
            if spans.len() >= total_ops {
                break;
            }

            // Advance the clock to the next instant anything can happen:
            // a block retirement, a release time, a stream becoming
            // ready, a recorded event, or the copy engine freeing.
            let mut next_time: Option<u64> = rq.next_at();
            for s in 0..num_streams {
                if stream_ready[s] == IN_FLIGHT {
                    continue; // its retirements drive progress
                }
                let Some(op) = self.streams[s].get(next_op[s]) else {
                    continue;
                };
                let dep = stream_ready[s].max(op.not_before);
                let candidate = if dep > now {
                    Some(dep)
                } else {
                    match op.kind {
                        OpKind::Wait { event } => event_time[event].filter(|&t| t > now),
                        OpKind::Copy { .. } => (copy_free > now).then_some(copy_free),
                        // A ready kernel or record would have committed
                        // in the fixpoint above.
                        OpKind::Kernel(_) | OpKind::Record { .. } => None,
                    }
                };
                if let Some(t) = candidate {
                    next_time = Some(next_time.map_or(t, |n| n.min(t)));
                }
            }
            let Some(t) = next_time else {
                let stream = (0..num_streams)
                    .find(|&s| next_op[s] < self.streams[s].len())
                    .expect("ops remain, so some stream is blocked");
                return Err(GpuError::StreamDeadlock { stream });
            };
            debug_assert!(t > now, "the clock must advance");
            now = t;
        }
        debug_assert!(cp.is_idle(), "every admitted block must retire");

        spans.sort_by(|a, b| {
            (a.start_cycles, a.stream.0, a.index).cmp(&(b.start_cycles, b.stream.0, b.index))
        });
        let makespan_cycles = spans.iter().map(|s| s.end_cycles).max().unwrap_or(0);
        let report = StreamReport {
            makespan_cycles,
            makespan_ms: spec.cycles_to_ms(makespan_cycles),
            kernel_busy_cycles: kernel_busy,
            copy_busy_cycles: copy_busy,
            max_coresident_kernels_per_sm: cp.max_coresident_launches(),
            peak_resident_warps,
            spans,
        };
        if let Some(tracer) = self.engine.tracer() {
            let events: Vec<TraceEvent> = report
                .spans
                .iter()
                .filter(|span| span.class != OpClass::Event)
                .map(|span| TraceEvent {
                    kind: match span.class {
                        OpClass::Copy => SpanKind::StreamCopy,
                        _ => SpanKind::StreamKernel,
                    },
                    name: span.name.clone(),
                    start_cycles: span.start_cycles,
                    dur_cycles: span.end_cycles - span.start_cycles,
                    track: STREAM_TRACK_BASE + span.stream.0 as u32,
                    args: {
                        let mut args = vec![
                            ("stream", ArgValue::Int(span.stream.0 as u64)),
                            ("cycles", ArgValue::Int(span.end_cycles - span.start_cycles)),
                        ];
                        if span.class == OpClass::Kernel {
                            args.push((
                                "occupancy",
                                ArgValue::Text(format!("{:.4}", span.occupancy)),
                            ));
                        }
                        if let Some(kind) = span.fault {
                            args.push(("fault", ArgValue::Text(kind.label().into())));
                        }
                        args
                    },
                    counter: false,
                })
                .collect();
            tracer.record_stream_schedule(events, makespan_cycles);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::trace::TraceRecorder;
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(GpuSpec::quadro_p6000())
    }

    /// A GEMM sized to `blocks` thread blocks (the roofline model assigns
    /// one block per 64 rows), for controlling block demand. GEMM tiles
    /// co-reside two per SM (the 48 KiB shared-memory stage binds), so 60
    /// blocks fill the P6000.
    fn gemm_with_blocks(blocks: usize) -> Workload<'static> {
        Workload::Gemm {
            m: blocks * 64,
            n: 64,
            k: 256,
        }
    }

    #[test]
    fn fifo_within_a_stream() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let (a, _) = sim.enqueue(s, gemm_with_blocks(4)).unwrap();
        let (b, _) = sim.enqueue(s, gemm_with_blocks(4)).unwrap();
        let (c, _) = sim
            .enqueue(s, Workload::Transfer { bytes: 1 << 20 })
            .unwrap();
        let report = sim.run().unwrap();
        // Ops on one stream execute in order, back to back.
        let ends: Vec<u64> = [a, b, c]
            .iter()
            .map(|&h| report.op_end(h).unwrap())
            .collect();
        assert!(ends[0] < ends[1] && ends[1] < ends[2]);
        let spans = &report.spans;
        assert_eq!(spans.len(), 3);
        assert!(spans[1].start_cycles >= spans[0].end_cycles);
        assert!(spans[2].start_cycles >= spans[1].end_cycles);
    }

    #[test]
    fn a_kernel_alone_spans_its_standalone_time() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let (h, m) = sim.enqueue(s, gemm_with_blocks(30)).unwrap();
        let report = sim.run().unwrap();
        // First admission at 0, last retirement + launch teardown at the
        // standalone elapsed time: the single-kernel timings of the old
        // whole-kernel scheduler are preserved exactly.
        assert_eq!(report.op_end(h).unwrap(), m.into_kernel().elapsed_cycles);
        assert_eq!(report.spans[0].start_cycles, 0);
        // 30 one-per-SM blocks of 8 warps each: 8/64 of the warp slots.
        assert!((report.spans[0].occupancy - 0.125).abs() < 1e-9);
    }

    #[test]
    fn copy_and_compute_overlap_across_streams() {
        let e = engine();
        // Serialized: one stream runs copy then kernel.
        let mut serial = StreamSim::new(&e);
        let s = serial.stream();
        serial
            .enqueue(s, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        serial.enqueue(s, gemm_with_blocks(30)).unwrap();
        let serial = serial.run().unwrap();

        // Overlapped: copy and kernel on independent streams.
        let mut overlap = StreamSim::new(&e);
        let s0 = overlap.stream();
        let s1 = overlap.stream();
        overlap
            .enqueue(s0, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        overlap.enqueue(s1, gemm_with_blocks(30)).unwrap();
        let overlap = overlap.run().unwrap();

        assert!(
            overlap.makespan_cycles < serial.makespan_cycles,
            "copy/compute overlap must shorten the makespan: {} vs {}",
            overlap.makespan_cycles,
            serial.makespan_cycles
        );
        // The overlapped makespan is the max of the two ops, not the sum.
        let longest = serial
            .spans
            .iter()
            .map(|s| s.end_cycles - s.start_cycles)
            .max()
            .unwrap();
        assert_eq!(overlap.makespan_cycles, longest);
    }

    #[test]
    fn copies_serialize_on_the_copy_engine() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        let (a, _) = sim
            .enqueue(s0, Workload::Transfer { bytes: 32 << 20 })
            .unwrap();
        let (b, _) = sim
            .enqueue(s1, Workload::Transfer { bytes: 32 << 20 })
            .unwrap();
        let report = sim.run().unwrap();
        let (a_span, b_span) = (
            report.spans.iter().find(|s| s.stream == a.stream).unwrap(),
            report.spans.iter().find(|s| s.stream == b.stream).unwrap(),
        );
        // One copy engine: the second transfer starts when the first ends.
        assert_eq!(b_span.start_cycles, a_span.end_cycles);
    }

    #[test]
    fn small_kernels_co_reside_big_kernels_serialize() {
        let e = engine();
        let launch = e.spec().kernel_launch_cycles;
        // Two device-filling kernels (60 blocks = 2 per SM x 30 SMs).
        let mut big = StreamSim::new(&e);
        let (b0, b1) = (big.stream(), big.stream());
        let (_, m) = big.enqueue(b0, gemm_with_blocks(60)).unwrap();
        big.enqueue(b1, gemm_with_blocks(60)).unwrap();
        let big = big.run().unwrap();
        let one = m.into_kernel().elapsed_cycles;
        // The second kernel's blocks admit the instant the first's
        // retire, so only one launch teardown sits on the critical path.
        assert_eq!(
            big.makespan_cycles,
            2 * one - launch,
            "device-filling kernels must serialize block-for-block"
        );

        // Two half-device kernels (30 blocks each) co-reside: every SM
        // hosts one block of each, and the makespan is a single kernel's.
        let mut half = StreamSim::new(&e);
        let (h0, h1) = (half.stream(), half.stream());
        let (_, m) = half.enqueue(h0, gemm_with_blocks(30)).unwrap();
        half.enqueue(h1, gemm_with_blocks(30)).unwrap();
        let half = half.run().unwrap();
        assert_eq!(
            half.makespan_cycles,
            m.into_kernel().elapsed_cycles,
            "half-device kernels must co-reside"
        );
        assert!(
            half.max_coresident_kernels_per_sm >= 2,
            "both kernels' blocks must share SMs, got {}",
            half.max_coresident_kernels_per_sm
        );

        // Two one-block kernels fit side by side too.
        let mut small = StreamSim::new(&e);
        let (s0, s1) = (small.stream(), small.stream());
        let (_, m) = small.enqueue(s0, gemm_with_blocks(1)).unwrap();
        small.enqueue(s1, gemm_with_blocks(1)).unwrap();
        let small = small.run().unwrap();
        assert_eq!(
            small.makespan_cycles,
            m.into_kernel().elapsed_cycles,
            "one-block kernels must co-reside"
        );
    }

    #[test]
    fn sm_capacity_is_never_overcommitted() {
        let e = engine();
        let spec = e.spec().clone();
        let mut sim = StreamSim::new(&e);
        // A mix of demands across eight streams, with releases that tempt
        // the scheduler into packing mistakes. Combined demand (114
        // blocks) is nearly twice the device's 60 block slots.
        let demands = [20usize, 15, 10, 5, 25, 1, 30, 8];
        for (i, &d) in demands.iter().enumerate() {
            let s = sim.stream();
            sim.enqueue_at(s, gemm_with_blocks(d), (i as u64) * 1_000)
                .unwrap();
        }
        let report = sim.run().unwrap();
        // The admission invariant, observed end to end: peak device-wide
        // resident warps never exceed the warp slots.
        let warp_slots = spec.num_sms as u64 * spec.max_warps_per_sm() as u64;
        assert!(
            report.peak_resident_warps <= warp_slots,
            "overcommitted: {} resident warps > {warp_slots} slots",
            report.peak_resident_warps
        );
        // And the device really was shared: more than one kernel's worth
        // of warps was resident at the peak (30 blocks x 8 warps = 240).
        assert!(report.peak_resident_warps > 240);
        assert!(report.max_coresident_kernels_per_sm >= 2);
        let mean = report.mean_kernel_occupancy();
        assert!(mean > 0.0 && mean <= 1.0, "occupancy {mean} out of range");
    }

    #[test]
    fn equal_start_heads_commit_in_stream_order() {
        let e = engine();
        let launch = e.spec().kernel_launch_cycles;
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        // Two device-filling kernels released at the same instant: both
        // heads are schedulable at cycle 0 and contend for every block
        // slot. The lowest stream id must win the device.
        let (_, m) = sim.enqueue_at(s1, gemm_with_blocks(60), 0).unwrap();
        sim.enqueue_at(s0, gemm_with_blocks(60), 0).unwrap();
        let report = sim.run().unwrap();
        let one = m.into_kernel().elapsed_cycles;
        assert_eq!(report.spans[0].stream, s0, "lowest stream commits first");
        assert_eq!(report.spans[0].start_cycles, 0);
        assert_eq!(
            report.spans[1].stream, s1,
            "spans sort (start, stream, index)"
        );
        assert_eq!(
            report.spans[1].start_cycles,
            one - launch,
            "stream 1's blocks admit when stream 0's retire"
        );
    }

    #[test]
    fn copy_engine_and_sm_ties_resolve_to_lowest_stream() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        let s2 = sim.stream();
        let s3 = sim.stream();
        // Blockers: a copy holding the copy engine and a device-filling
        // kernel holding every SM block slot.
        let (_, copy_m) = sim
            .enqueue(s2, Workload::Transfer { bytes: 32 << 20 })
            .unwrap();
        let (_, kernel_m) = sim.enqueue(s3, gemm_with_blocks(60)).unwrap();
        let copy_frees = e.spec().ms_to_cycles(copy_m.time_ms());
        let sm_frees = kernel_m.into_kernel().elapsed_cycles - e.spec().kernel_launch_cycles;
        // Followers released at the instant both resources are free (the
        // later of the two frees; the other freed earlier): a follow-up
        // copy on stream 1 and a follow-up kernel on stream 0, both
        // schedulable at exactly `t`.
        let t = copy_frees.max(sm_frees);
        let (k, _) = sim.enqueue_at(s0, gemm_with_blocks(60), t).unwrap();
        let (c, _) = sim
            .enqueue_at(s1, Workload::Transfer { bytes: 1 << 20 }, t)
            .unwrap();
        let report = sim.run().unwrap();
        let kernel_span = report
            .spans
            .iter()
            .find(|sp| sp.stream == k.stream && sp.index == k.index)
            .unwrap();
        let copy_span = report
            .spans
            .iter()
            .find(|sp| sp.stream == c.stream && sp.index == c.index)
            .unwrap();
        assert_eq!(kernel_span.start_cycles, t);
        assert_eq!(copy_span.start_cycles, t);
        // Equal starts read in lowest-stream-id order: the stream-0
        // kernel precedes the stream-1 copy in the sorted spans.
        let pos = |stream: StreamId| {
            report
                .spans
                .iter()
                .position(|sp| sp.stream == stream && sp.start_cycles == t)
                .unwrap()
        };
        assert!(pos(s0) < pos(s1), "lowest stream id commits first on ties");
    }

    #[test]
    fn events_order_across_streams() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let producer = sim.stream();
        let consumer = sim.stream();
        let (prod_op, _) = sim.enqueue(producer, gemm_with_blocks(10)).unwrap();
        let done = sim.event();
        sim.record_event(producer, done).unwrap();
        sim.wait_event(consumer, done).unwrap();
        let (cons_op, _) = sim.enqueue(consumer, gemm_with_blocks(10)).unwrap();
        let report = sim.run().unwrap();
        let produced = report.op_end(prod_op).unwrap();
        let consumer_span = report
            .spans
            .iter()
            .find(|s| s.stream == cons_op.stream && s.index == cons_op.index)
            .unwrap();
        assert!(
            consumer_span.start_cycles >= produced,
            "consumer started at {} before the producer finished at {produced}",
            consumer_span.start_cycles
        );
    }

    #[test]
    fn release_times_hold_work_back() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let (h, _) = sim.enqueue_at(s, gemm_with_blocks(2), 1_000_000).unwrap();
        let report = sim.run().unwrap();
        let span = report
            .spans
            .iter()
            .find(|sp| sp.stream == h.stream && sp.index == h.index)
            .unwrap();
        assert_eq!(span.start_cycles, 1_000_000);
    }

    #[test]
    fn wait_before_record_cycle_deadlocks() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let a = sim.stream();
        let b = sim.stream();
        let ea = sim.event();
        let eb = sim.event();
        // a waits for eb before recording ea; b waits for ea before
        // recording eb: classic cross-wait cycle.
        sim.wait_event(a, eb).unwrap();
        sim.record_event(a, ea).unwrap();
        sim.wait_event(b, ea).unwrap();
        sim.record_event(b, eb).unwrap();
        let err = sim.run().unwrap_err();
        assert_eq!(err, GpuError::StreamDeadlock { stream: 0 });
    }

    #[test]
    fn wait_on_never_recorded_event_deadlocks() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let idle = sim.stream();
        let blocked = sim.stream();
        // The event exists but no stream ever records it; work queued
        // behind the wait must surface as a deadlock on the waiting
        // stream, not hang or get scheduled.
        let never = sim.event();
        sim.enqueue(idle, gemm_with_blocks(2)).unwrap();
        sim.wait_event(blocked, never).unwrap();
        sim.enqueue(blocked, gemm_with_blocks(2)).unwrap();
        let err = sim.run().unwrap_err();
        assert_eq!(err, GpuError::StreamDeadlock { stream: blocked.0 });
    }

    #[test]
    fn invalid_handles_are_rejected() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let ev = sim.event();
        let other = StreamId(7);
        assert_eq!(
            sim.enqueue(other, gemm_with_blocks(1)).unwrap_err(),
            GpuError::UnknownStream { id: 7 }
        );
        assert_eq!(
            sim.wait_event(s, EventId(9)).unwrap_err(),
            GpuError::UnknownEvent { id: 9 }
        );
        sim.record_event(s, ev).unwrap();
        assert!(matches!(
            sim.record_event(s, ev).unwrap_err(),
            GpuError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn schedule_is_identical_across_sim_thread_counts() {
        let spec = GpuSpec::quadro_p6000();
        let run_at = |threads: usize| {
            let tracer = Arc::new(TraceRecorder::new());
            let e = Engine::builder(spec.clone())
                .sim_threads(threads)
                .tracer(Arc::clone(&tracer))
                .build()
                .unwrap();
            let mut sim = StreamSim::new(&e);
            let s0 = sim.stream();
            let s1 = sim.stream();
            sim.enqueue(s0, Workload::Transfer { bytes: 8 << 20 })
                .unwrap();
            sim.enqueue(s0, gemm_with_blocks(12)).unwrap();
            let ev = sim.event();
            sim.record_event(s0, ev).unwrap();
            sim.wait_event(s1, ev).unwrap();
            sim.enqueue(s1, gemm_with_blocks(25)).unwrap();
            sim.enqueue(s1, Workload::Transfer { bytes: 4 << 20 })
                .unwrap();
            let report = sim.run().unwrap();
            (report, tracer.to_chrome_json())
        };
        let (serial_report, serial_trace) = run_at(1);
        for threads in [2, 4] {
            let (report, trace) = run_at(threads);
            assert_eq!(report, serial_report, "threads {threads}");
            assert_eq!(trace, serial_trace, "threads {threads}");
        }
    }

    #[test]
    fn faulted_ops_burn_their_cycles_on_the_schedule() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let plan = Arc::new(
            FaultPlan::new(FaultConfig {
                transfer_fail_prob: 1.0,
                seed: 9,
                ..FaultConfig::default()
            })
            .unwrap(),
        );
        let e = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(plan)
            .build()
            .unwrap();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let doomed = sim
            .try_enqueue_at(s, Workload::Transfer { bytes: 32 << 20 }, 0)
            .unwrap();
        assert_eq!(doomed.fault, Some(FaultKind::TransferFailure));
        let clean = sim.try_enqueue_at(s, gemm_with_blocks(4), 0).unwrap();
        assert_eq!(clean.fault, None);
        let report = sim.run().unwrap();
        let copy = &report.spans[0];
        assert_eq!(copy.fault, Some(FaultKind::TransferFailure));
        // The doomed transfer holds the copy engine for its full priced
        // window; the next op on the stream starts only after it ends.
        let copy_cycles = e.spec().ms_to_cycles(doomed.metrics.time_ms());
        assert_eq!(copy.end_cycles - copy.start_cycles, copy_cycles);
        assert!(copy_cycles > 0);
        let kernel = &report.spans[1];
        assert_eq!(kernel.fault, None);
        assert!(kernel.start_cycles >= copy.end_cycles);
        assert_eq!(report.copy_busy_cycles, copy_cycles);
    }

    #[test]
    fn traced_schedules_emit_overlapping_stream_spans() {
        let tracer = Arc::new(TraceRecorder::new());
        let e = Engine::builder(GpuSpec::quadro_p6000())
            .tracer(Arc::clone(&tracer))
            .build()
            .unwrap();
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        sim.enqueue(s0, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        sim.enqueue(s1, gemm_with_blocks(30)).unwrap();
        let report = sim.run().unwrap();
        // Pricing must not leak device-stream spans; only the committed
        // schedule is recorded, and the clock advances by the makespan.
        assert_eq!(tracer.clock_cycles(), report.makespan_cycles);
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.kind == SpanKind::StreamCopy));
        assert!(events.iter().any(|e| e.kind == SpanKind::StreamKernel));
        // The two spans overlap on the timeline (that's the point).
        let (a, b) = (&events[0], &events[1]);
        assert!(
            a.start_cycles < b.start_cycles + b.dur_cycles
                && b.start_cycles < a.start_cycles + a.dur_cycles,
            "stream spans must overlap: {a:?} vs {b:?}"
        );
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"cat\":\"stream_copy\""));
        assert!(json.contains("\"cat\":\"stream_kernel\""));
        assert!(
            json.contains("\"occupancy\""),
            "kernel stream spans carry their achieved occupancy"
        );
    }
}
