//! Simulated CUDA-style streams and events on the simulated clock.
//!
//! The serial [`Engine`] answers "how long does this kernel take alone?";
//! this module answers "how long does a *mix* take when issued onto
//! concurrent streams?" — the question serving workloads ask. A
//! [`StreamSim`] borrows an engine, prices every enqueued [`Workload`]
//! through the engine's deterministic cost model at enqueue time, and then
//! schedules the priced ops with a serial discrete-event loop that models
//! the overlap machinery of a real device:
//!
//! - **Per-stream FIFO**: ops on one stream execute in enqueue order,
//!   never overlapping each other.
//! - **Copy/compute overlap**: transfers occupy a single copy engine
//!   (serialized among themselves, like one DMA engine per direction-less
//!   PCIe model), while kernels occupy SMs — a copy and a kernel on
//!   different streams proceed concurrently.
//! - **SM-capacity arbitration**: a kernel occupies
//!   `min(num_blocks, num_sms)` SM slots for its whole duration. Kernels
//!   whose combined demand fits co-reside; a kernel that does not fit
//!   waits for slots to free (big launches serialize, small ones pack).
//! - **Events**: [`StreamSim::record_event`] marks a point in one
//!   stream's FIFO; [`StreamSim::wait_event`] gates another stream on it
//!   (cross-stream dependencies without coupling whole streams).
//!
//! Scheduling is greedy earliest-feasible-start: each round commits the
//! schedulable head op with the globally minimal start time (ties break
//! toward the lowest stream id), so the schedule is a pure function of
//! the enqueued ops. Pricing is worker-count-invariant and the scheduler
//! is serial, so reports and traces are byte-identical at any
//! `GNNADVISOR_SIM_THREADS` value.
//!
//! With a tracer attached to the engine, the committed schedule is
//! recorded as overlapping [`SpanKind::StreamKernel`] /
//! [`SpanKind::StreamCopy`] spans, one chrome lane per stream.

use crate::context::RunContext;
use crate::engine::{Engine, Workload, WorkloadMetrics};
use crate::fault::FaultKind;
use crate::trace::{ArgValue, SpanKind, TraceEvent, STREAM_TRACK_BASE};
use crate::{GpuError, Result};

/// Identifies one simulated stream of a [`StreamSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(usize);

impl StreamId {
    /// The stream's index (issue order).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Identifies one simulated event of a [`StreamSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// Handle to one enqueued op: its stream and position in that stream's
/// FIFO. Use it to look up completion times in the [`StreamReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpHandle {
    /// The stream the op was enqueued on.
    pub stream: StreamId,
    /// The op's position in the stream's FIFO.
    pub index: usize,
}

/// What one scheduled op was, as reported in [`OpSpan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// A kernel launch or roofline GEMM occupying SM slots.
    Kernel,
    /// A host↔device transfer occupying the copy engine.
    Copy,
    /// An event record or wait (zero duration).
    Event,
}

/// One op's placement on the committed schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// The stream the op ran on.
    pub stream: StreamId,
    /// The op's position in its stream's FIFO.
    pub index: usize,
    /// Display name (kernel name, `copy <n> B`, `record`/`wait`).
    pub name: String,
    /// What kind of op this was.
    pub class: OpClass,
    /// Scheduled start on the simulated clock, cycles.
    pub start_cycles: u64,
    /// Scheduled end on the simulated clock, cycles.
    pub end_cycles: u64,
    /// The injected fault that killed this op, if any. A faulted op still
    /// occupies its resources for its full `[start, end)` window — the
    /// failure is observed at `end_cycles`.
    pub fault: Option<FaultKind>,
}

/// The committed schedule of one [`StreamSim::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Every op's placement, in commit order.
    pub spans: Vec<OpSpan>,
    /// End of the last op, cycles (the schedule's simulated wall time).
    pub makespan_cycles: u64,
    /// The makespan in milliseconds at the device clock.
    pub makespan_ms: f64,
    /// Total cycles of kernel occupancy (sum over kernels of duration).
    pub kernel_busy_cycles: u64,
    /// Total cycles the copy engine was busy.
    pub copy_busy_cycles: u64,
}

impl StreamReport {
    /// The completion cycle of one enqueued op.
    pub fn op_end(&self, handle: OpHandle) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.stream == handle.stream && s.index == handle.index)
            .map(|s| s.end_cycles)
    }
}

/// The priced, schedulable form of one enqueued op.
#[derive(Debug, Clone)]
enum OpKind {
    /// Occupies `sm_demand` SM slots for `cycles`.
    Kernel { cycles: u64, sm_demand: u32 },
    /// Occupies the copy engine for `cycles`.
    Copy { cycles: u64 },
    /// Marks the event complete when reached in the stream's FIFO.
    Record { event: usize },
    /// Blocks the stream until the event completes.
    Wait { event: usize },
}

#[derive(Debug, Clone)]
struct Op {
    kind: OpKind,
    name: String,
    /// Earliest permitted start on the simulated clock (a release time —
    /// serving uses it to pin batches to their dispatch instants).
    not_before: u64,
    /// The injected fault this op dies with, drawn at enqueue time.
    fault: Option<FaultKind>,
}

/// What [`StreamSim::try_enqueue_at`] committed: the op's handle, its
/// standalone metrics, and — with a fault plan attached to the engine —
/// whether the op is doomed to fail on the schedule. The fault is known
/// at enqueue time (verdicts are drawn in submission order), so callers
/// can plan retries before running the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Enqueued {
    /// Handle for completion-time lookups in the [`StreamReport`].
    pub handle: OpHandle,
    /// The op's standalone metrics (stretched if the op drew a slowdown).
    pub metrics: WorkloadMetrics,
    /// The fault this op will die with, if any; it still burns its full
    /// priced time on the schedule first.
    pub fault: Option<FaultKind>,
}

/// A deterministic multi-stream scheduler over one [`Engine`]. See the
/// module docs for the model; see [`StreamSim::run`] for the output.
#[derive(Debug)]
pub struct StreamSim<'e> {
    engine: &'e Engine,
    /// Private pricing context, so enqueue-time pricing neither contends
    /// with nor perturbs the engine's shared context users.
    ctx: RunContext,
    streams: Vec<Vec<Op>>,
    /// `Some(record op issued)` per created event.
    event_recorded: Vec<bool>,
}

impl<'e> StreamSim<'e> {
    /// A simulator with no streams over `engine`'s cost model.
    pub fn new(engine: &'e Engine) -> Self {
        Self {
            engine,
            ctx: RunContext::new(),
            streams: Vec::new(),
            event_recorded: Vec::new(),
        }
    }

    /// Creates a new, empty stream.
    pub fn stream(&mut self) -> StreamId {
        self.streams.push(Vec::new());
        StreamId(self.streams.len() - 1)
    }

    /// Number of created streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Enqueues a workload on `stream`, pricing it through the engine
    /// immediately (ops are priced as if alone on the device; the
    /// scheduler arbitrates only *when* they run). Returns the op's
    /// handle and its standalone metrics.
    pub fn enqueue(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
    ) -> Result<(OpHandle, WorkloadMetrics)> {
        self.enqueue_at(stream, workload, 0)
    }

    /// [`StreamSim::enqueue`] with a release time: the op may not start
    /// before `not_before_cycles` on the simulated clock, even if its
    /// stream is idle earlier.
    pub fn enqueue_at(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
        not_before_cycles: u64,
    ) -> Result<(OpHandle, WorkloadMetrics)> {
        self.try_enqueue_at(stream, workload, not_before_cycles)
            .map(|e| (e.handle, e.metrics))
    }

    /// [`StreamSim::enqueue_at`] exposing the op's enqueue-time fault
    /// verdict (always `None` without a fault plan on the engine).
    pub fn try_enqueue_at(
        &mut self,
        stream: StreamId,
        workload: Workload<'_>,
        not_before_cycles: u64,
    ) -> Result<Enqueued> {
        self.check_stream(stream)?;
        let (metrics, fault) = self.engine.submit_untraced(&mut self.ctx, workload)?;
        let spec = self.engine.spec();
        let (kind, name) = match &metrics {
            WorkloadMetrics::Kernel(m) => (
                OpKind::Kernel {
                    cycles: m.elapsed_cycles,
                    // A launch with fewer blocks than SMs leaves slots for
                    // co-resident kernels; anything bigger owns the device.
                    sm_demand: (m.num_blocks.min(spec.num_sms as u64) as u32).max(1),
                },
                m.name.clone(),
            ),
            WorkloadMetrics::Transfer(m) => (
                OpKind::Copy {
                    cycles: spec.ms_to_cycles(m.time_ms),
                },
                format!("copy {} B", m.bytes),
            ),
        };
        let handle = self.push_op(
            stream,
            Op {
                kind,
                name,
                not_before: not_before_cycles,
                fault,
            },
        );
        Ok(Enqueued {
            handle,
            metrics,
            fault,
        })
    }

    /// Creates an event. It completes when a [`StreamSim::record_event`]
    /// op for it is reached in its stream's FIFO.
    pub fn event(&mut self) -> EventId {
        self.event_recorded.push(false);
        EventId(self.event_recorded.len() - 1)
    }

    /// Enqueues a record op for `event` on `stream`: the event completes
    /// once every op enqueued on `stream` before this point has finished.
    pub fn record_event(&mut self, stream: StreamId, event: EventId) -> Result<OpHandle> {
        self.check_stream(stream)?;
        let recorded = self
            .event_recorded
            .get_mut(event.0)
            .ok_or(GpuError::UnknownEvent { id: event.0 })?;
        if *recorded {
            return Err(GpuError::InvalidConfig {
                reason: format!("event {} recorded twice", event.0),
            });
        }
        *recorded = true;
        Ok(self.push_op(
            stream,
            Op {
                kind: OpKind::Record { event: event.0 },
                name: format!("record e{}", event.0),
                not_before: 0,
                fault: None,
            },
        ))
    }

    /// Enqueues a wait op on `stream`: subsequent ops of the stream may
    /// not start until `event` completes.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) -> Result<OpHandle> {
        self.check_stream(stream)?;
        if event.0 >= self.event_recorded.len() {
            return Err(GpuError::UnknownEvent { id: event.0 });
        }
        Ok(self.push_op(
            stream,
            Op {
                kind: OpKind::Wait { event: event.0 },
                name: format!("wait e{}", event.0),
                not_before: 0,
                fault: None,
            },
        ))
    }

    fn check_stream(&self, stream: StreamId) -> Result<()> {
        if stream.0 < self.streams.len() {
            Ok(())
        } else {
            Err(GpuError::UnknownStream { id: stream.0 })
        }
    }

    fn push_op(&mut self, stream: StreamId, op: Op) -> OpHandle {
        let fifo = &mut self.streams[stream.0];
        fifo.push(op);
        OpHandle {
            stream,
            index: fifo.len() - 1,
        }
    }

    /// Schedules every enqueued op and returns the committed timeline.
    ///
    /// Greedy discrete-event loop: each round computes, for every
    /// stream's head op, the earliest start satisfying (a) the stream's
    /// FIFO, (b) the op's release time, (c) event completion for waits,
    /// (d) copy-engine availability for transfers, and (e) SM capacity
    /// over the op's whole duration for kernels; the globally earliest
    /// head commits (lowest stream id on ties). Consumes the simulator —
    /// one `StreamSim` is one schedule.
    ///
    /// # Errors
    ///
    /// [`GpuError::StreamDeadlock`] when no head is schedulable but ops
    /// remain (every remaining head waits on an event whose record op
    /// sits behind another blocked wait, or was never enqueued).
    pub fn run(self) -> Result<StreamReport> {
        let spec = self.engine.spec();
        let num_sms = spec.num_sms;
        let num_streams = self.streams.len();
        let mut next_op = vec![0usize; num_streams];
        let mut stream_ready = vec![0u64; num_streams];
        let mut event_time: Vec<Option<u64>> = vec![None; self.event_recorded.len()];
        let mut copy_free = 0u64;
        // Committed kernel residencies as (start, end, sm_demand).
        let mut resident: Vec<(u64, u64, u32)> = Vec::new();
        let mut spans: Vec<OpSpan> = Vec::new();
        let mut kernel_busy = 0u64;
        let mut copy_busy = 0u64;
        let total_ops: usize = self.streams.iter().map(Vec::len).sum();

        while spans.len() < total_ops {
            // Earliest feasible start among stream heads.
            let mut best: Option<(u64, usize)> = None;
            for (s, fifo) in self.streams.iter().enumerate() {
                let Some(op) = fifo.get(next_op[s]) else {
                    continue;
                };
                let dep = stream_ready[s].max(op.not_before);
                let start = match op.kind {
                    OpKind::Record { .. } => Some(dep),
                    OpKind::Wait { event } => event_time[event].map(|t| dep.max(t)),
                    OpKind::Copy { .. } => Some(dep.max(copy_free)),
                    OpKind::Kernel { cycles, sm_demand } => Some(fit_start(
                        &resident,
                        num_sms,
                        dep,
                        sm_demand.min(num_sms),
                        cycles,
                    )),
                };
                if let Some(t) = start {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, s));
                    }
                }
            }
            let Some((start, s)) = best else {
                let stream = (0..num_streams)
                    .find(|&s| next_op[s] < self.streams[s].len())
                    .expect("ops remain, so some stream is blocked");
                return Err(GpuError::StreamDeadlock { stream });
            };
            // Commit the op.
            let op = &self.streams[s][next_op[s]];
            let (end, class) = match op.kind {
                OpKind::Record { event } => {
                    event_time[event] = Some(start);
                    (start, OpClass::Event)
                }
                OpKind::Wait { .. } => (start, OpClass::Event),
                OpKind::Copy { cycles, .. } => {
                    let end = start + cycles;
                    copy_free = end;
                    copy_busy += cycles;
                    (end, OpClass::Copy)
                }
                OpKind::Kernel { cycles, sm_demand } => {
                    let end = start + cycles;
                    resident.push((start, end, sm_demand.min(num_sms)));
                    kernel_busy += cycles;
                    (end, OpClass::Kernel)
                }
            };
            spans.push(OpSpan {
                stream: StreamId(s),
                index: next_op[s],
                name: op.name.clone(),
                class,
                start_cycles: start,
                end_cycles: end,
                fault: op.fault,
            });
            stream_ready[s] = end;
            next_op[s] += 1;
        }

        let makespan_cycles = spans.iter().map(|s| s.end_cycles).max().unwrap_or(0);
        let report = StreamReport {
            makespan_cycles,
            makespan_ms: spec.cycles_to_ms(makespan_cycles),
            kernel_busy_cycles: kernel_busy,
            copy_busy_cycles: copy_busy,
            spans,
        };
        if let Some(tracer) = self.engine.tracer() {
            let events: Vec<TraceEvent> = report
                .spans
                .iter()
                .filter(|span| span.class != OpClass::Event)
                .map(|span| TraceEvent {
                    kind: match span.class {
                        OpClass::Copy => SpanKind::StreamCopy,
                        _ => SpanKind::StreamKernel,
                    },
                    name: span.name.clone(),
                    start_cycles: span.start_cycles,
                    dur_cycles: span.end_cycles - span.start_cycles,
                    track: STREAM_TRACK_BASE + span.stream.0 as u32,
                    args: {
                        let mut args = vec![
                            ("stream", ArgValue::Int(span.stream.0 as u64)),
                            ("cycles", ArgValue::Int(span.end_cycles - span.start_cycles)),
                        ];
                        if let Some(kind) = span.fault {
                            args.push(("fault", ArgValue::Text(kind.label().into())));
                        }
                        args
                    },
                    counter: false,
                })
                .collect();
            tracer.record_stream_schedule(events, makespan_cycles);
        }
        Ok(report)
    }
}

/// Earliest start `>= after` at which `demand` SM slots stay free for the
/// whole `[start, start + dur)` window, given the committed residencies.
/// Candidates are `after` and every committed end after it; the window
/// check also probes every committed start inside the window, so a
/// returned start never overcommits the device at any instant.
fn fit_start(resident: &[(u64, u64, u32)], num_sms: u32, after: u64, demand: u32, dur: u64) -> u64 {
    let mut candidates: Vec<u64> = resident
        .iter()
        .map(|&(_, end, _)| end)
        .filter(|&end| end > after)
        .collect();
    candidates.push(after);
    candidates.sort_unstable();
    candidates.dedup();
    'candidate: for &t in &candidates {
        let window_end = t + dur;
        let mut probes: Vec<u64> = vec![t];
        probes.extend(
            resident
                .iter()
                .map(|&(start, _, _)| start)
                .filter(|&start| start > t && start < window_end),
        );
        for &x in &probes {
            let used: u32 = resident
                .iter()
                .filter(|&&(start, end, _)| start <= x && end > x)
                .map(|&(_, _, slots)| slots)
                .sum();
            if used + demand > num_sms {
                continue 'candidate;
            }
        }
        return t;
    }
    unreachable!("the device is empty after the last committed end")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::trace::TraceRecorder;
    use std::sync::Arc;

    fn engine() -> Engine {
        Engine::new(GpuSpec::quadro_p6000())
    }

    /// A GEMM sized to `blocks` thread blocks (the roofline model assigns
    /// one block per 64 rows), for controlling SM demand.
    fn gemm_with_blocks(blocks: usize) -> Workload<'static> {
        Workload::Gemm {
            m: blocks * 64,
            n: 64,
            k: 256,
        }
    }

    #[test]
    fn fifo_within_a_stream() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let (a, _) = sim.enqueue(s, gemm_with_blocks(4)).unwrap();
        let (b, _) = sim.enqueue(s, gemm_with_blocks(4)).unwrap();
        let (c, _) = sim
            .enqueue(s, Workload::Transfer { bytes: 1 << 20 })
            .unwrap();
        let report = sim.run().unwrap();
        // Ops on one stream execute in order, back to back.
        let ends: Vec<u64> = [a, b, c]
            .iter()
            .map(|&h| report.op_end(h).unwrap())
            .collect();
        assert!(ends[0] < ends[1] && ends[1] < ends[2]);
        let spans = &report.spans;
        assert_eq!(spans.len(), 3);
        assert!(spans[1].start_cycles >= spans[0].end_cycles);
        assert!(spans[2].start_cycles >= spans[1].end_cycles);
    }

    #[test]
    fn copy_and_compute_overlap_across_streams() {
        let e = engine();
        // Serialized: one stream runs copy then kernel.
        let mut serial = StreamSim::new(&e);
        let s = serial.stream();
        serial
            .enqueue(s, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        serial.enqueue(s, gemm_with_blocks(30)).unwrap();
        let serial = serial.run().unwrap();

        // Overlapped: copy and kernel on independent streams.
        let mut overlap = StreamSim::new(&e);
        let s0 = overlap.stream();
        let s1 = overlap.stream();
        overlap
            .enqueue(s0, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        overlap.enqueue(s1, gemm_with_blocks(30)).unwrap();
        let overlap = overlap.run().unwrap();

        assert!(
            overlap.makespan_cycles < serial.makespan_cycles,
            "copy/compute overlap must shorten the makespan: {} vs {}",
            overlap.makespan_cycles,
            serial.makespan_cycles
        );
        // The overlapped makespan is the max of the two ops, not the sum.
        let longest = serial
            .spans
            .iter()
            .map(|s| s.end_cycles - s.start_cycles)
            .max()
            .unwrap();
        assert_eq!(overlap.makespan_cycles, longest);
    }

    #[test]
    fn copies_serialize_on_the_copy_engine() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        let (a, _) = sim
            .enqueue(s0, Workload::Transfer { bytes: 32 << 20 })
            .unwrap();
        let (b, _) = sim
            .enqueue(s1, Workload::Transfer { bytes: 32 << 20 })
            .unwrap();
        let report = sim.run().unwrap();
        let (a_span, b_span) = (
            report.spans.iter().find(|s| s.stream == a.stream).unwrap(),
            report.spans.iter().find(|s| s.stream == b.stream).unwrap(),
        );
        // One copy engine: the second transfer starts when the first ends.
        assert_eq!(b_span.start_cycles, a_span.end_cycles);
    }

    #[test]
    fn small_kernels_co_reside_big_kernels_serialize() {
        let e = engine();
        // Two full-device kernels (30 blocks = 30 SMs on the P6000).
        let mut big = StreamSim::new(&e);
        let (b0, b1) = (big.stream(), big.stream());
        let (_, m) = big.enqueue(b0, gemm_with_blocks(30)).unwrap();
        big.enqueue(b1, gemm_with_blocks(30)).unwrap();
        let big = big.run().unwrap();
        let one = m.into_kernel().elapsed_cycles;
        assert_eq!(
            big.makespan_cycles,
            2 * one,
            "full-device kernels must serialize"
        );

        // Two one-block kernels fit side by side.
        let mut small = StreamSim::new(&e);
        let (s0, s1) = (small.stream(), small.stream());
        let (_, m) = small.enqueue(s0, gemm_with_blocks(1)).unwrap();
        small.enqueue(s1, gemm_with_blocks(1)).unwrap();
        let small = small.run().unwrap();
        assert_eq!(
            small.makespan_cycles,
            m.into_kernel().elapsed_cycles,
            "one-block kernels must co-reside"
        );
    }

    #[test]
    fn sm_capacity_is_never_overcommitted() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        // A mix of demands across four streams, with releases that tempt
        // the scheduler into packing mistakes.
        let demands = [20usize, 15, 10, 5, 25, 1, 30, 8];
        for (i, &d) in demands.iter().enumerate() {
            let s = sim.stream();
            sim.enqueue_at(s, gemm_with_blocks(d), (i as u64) * 1_000)
                .unwrap();
        }
        let report = sim.run().unwrap();
        // At every span boundary, the sum of resident kernel demands must
        // fit in the device's 30 SMs. A gemm named `gemm_{m}x{k}x{n}` ran
        // `m / 64` blocks, so demand is recoverable from the span name.
        let demand_of = |name: &str| -> u64 {
            let m: u64 = name
                .strip_prefix("gemm_")
                .and_then(|rest| rest.split('x').next())
                .and_then(|m| m.parse().ok())
                .expect("gemm span name carries its shape");
            (m / 64).min(30)
        };
        let kernels: Vec<&OpSpan> = report
            .spans
            .iter()
            .filter(|s| s.class == OpClass::Kernel)
            .collect();
        for probe in kernels.iter().map(|s| s.start_cycles) {
            let used: u64 = kernels
                .iter()
                .filter(|s| s.start_cycles <= probe && s.end_cycles > probe)
                .map(|s| demand_of(&s.name))
                .sum();
            assert!(used <= 30, "overcommitted at {probe}: {used} slots");
        }
    }

    #[test]
    fn events_order_across_streams() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let producer = sim.stream();
        let consumer = sim.stream();
        let (prod_op, _) = sim.enqueue(producer, gemm_with_blocks(10)).unwrap();
        let done = sim.event();
        sim.record_event(producer, done).unwrap();
        sim.wait_event(consumer, done).unwrap();
        let (cons_op, _) = sim.enqueue(consumer, gemm_with_blocks(10)).unwrap();
        let report = sim.run().unwrap();
        let produced = report.op_end(prod_op).unwrap();
        let consumer_span = report
            .spans
            .iter()
            .find(|s| s.stream == cons_op.stream && s.index == cons_op.index)
            .unwrap();
        assert!(
            consumer_span.start_cycles >= produced,
            "consumer started at {} before the producer finished at {produced}",
            consumer_span.start_cycles
        );
    }

    #[test]
    fn release_times_hold_work_back() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let (h, _) = sim.enqueue_at(s, gemm_with_blocks(2), 1_000_000).unwrap();
        let report = sim.run().unwrap();
        let span = report
            .spans
            .iter()
            .find(|sp| sp.stream == h.stream && sp.index == h.index)
            .unwrap();
        assert_eq!(span.start_cycles, 1_000_000);
    }

    #[test]
    fn wait_before_record_cycle_deadlocks() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let a = sim.stream();
        let b = sim.stream();
        let ea = sim.event();
        let eb = sim.event();
        // a waits for eb before recording ea; b waits for ea before
        // recording eb: classic cross-wait cycle.
        sim.wait_event(a, eb).unwrap();
        sim.record_event(a, ea).unwrap();
        sim.wait_event(b, ea).unwrap();
        sim.record_event(b, eb).unwrap();
        let err = sim.run().unwrap_err();
        assert_eq!(err, GpuError::StreamDeadlock { stream: 0 });
    }

    #[test]
    fn invalid_handles_are_rejected() {
        let e = engine();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let ev = sim.event();
        let other = StreamId(7);
        assert_eq!(
            sim.enqueue(other, gemm_with_blocks(1)).unwrap_err(),
            GpuError::UnknownStream { id: 7 }
        );
        assert_eq!(
            sim.wait_event(s, EventId(9)).unwrap_err(),
            GpuError::UnknownEvent { id: 9 }
        );
        sim.record_event(s, ev).unwrap();
        assert!(matches!(
            sim.record_event(s, ev).unwrap_err(),
            GpuError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn schedule_is_identical_across_sim_thread_counts() {
        let spec = GpuSpec::quadro_p6000();
        let run_at = |threads: usize| {
            let tracer = Arc::new(TraceRecorder::new());
            let e = Engine::builder(spec.clone())
                .sim_threads(threads)
                .tracer(Arc::clone(&tracer))
                .build()
                .unwrap();
            let mut sim = StreamSim::new(&e);
            let s0 = sim.stream();
            let s1 = sim.stream();
            sim.enqueue(s0, Workload::Transfer { bytes: 8 << 20 })
                .unwrap();
            sim.enqueue(s0, gemm_with_blocks(12)).unwrap();
            let ev = sim.event();
            sim.record_event(s0, ev).unwrap();
            sim.wait_event(s1, ev).unwrap();
            sim.enqueue(s1, gemm_with_blocks(25)).unwrap();
            sim.enqueue(s1, Workload::Transfer { bytes: 4 << 20 })
                .unwrap();
            let report = sim.run().unwrap();
            (report, tracer.to_chrome_json())
        };
        let (serial_report, serial_trace) = run_at(1);
        for threads in [2, 4] {
            let (report, trace) = run_at(threads);
            assert_eq!(report, serial_report, "threads {threads}");
            assert_eq!(trace, serial_trace, "threads {threads}");
        }
    }

    #[test]
    fn faulted_ops_burn_their_cycles_on_the_schedule() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let plan = Arc::new(
            FaultPlan::new(FaultConfig {
                transfer_fail_prob: 1.0,
                seed: 9,
                ..FaultConfig::default()
            })
            .unwrap(),
        );
        let e = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(plan)
            .build()
            .unwrap();
        let mut sim = StreamSim::new(&e);
        let s = sim.stream();
        let doomed = sim
            .try_enqueue_at(s, Workload::Transfer { bytes: 32 << 20 }, 0)
            .unwrap();
        assert_eq!(doomed.fault, Some(FaultKind::TransferFailure));
        let clean = sim.try_enqueue_at(s, gemm_with_blocks(4), 0).unwrap();
        assert_eq!(clean.fault, None);
        let report = sim.run().unwrap();
        let copy = &report.spans[0];
        assert_eq!(copy.fault, Some(FaultKind::TransferFailure));
        // The doomed transfer holds the copy engine for its full priced
        // window; the next op on the stream starts only after it ends.
        let copy_cycles = e.spec().ms_to_cycles(doomed.metrics.time_ms());
        assert_eq!(copy.end_cycles - copy.start_cycles, copy_cycles);
        assert!(copy_cycles > 0);
        let kernel = &report.spans[1];
        assert_eq!(kernel.fault, None);
        assert!(kernel.start_cycles >= copy.end_cycles);
        assert_eq!(report.copy_busy_cycles, copy_cycles);
    }

    #[test]
    fn traced_schedules_emit_overlapping_stream_spans() {
        let tracer = Arc::new(TraceRecorder::new());
        let e = Engine::builder(GpuSpec::quadro_p6000())
            .tracer(Arc::clone(&tracer))
            .build()
            .unwrap();
        let mut sim = StreamSim::new(&e);
        let s0 = sim.stream();
        let s1 = sim.stream();
        sim.enqueue(s0, Workload::Transfer { bytes: 64 << 20 })
            .unwrap();
        sim.enqueue(s1, gemm_with_blocks(30)).unwrap();
        let report = sim.run().unwrap();
        // Pricing must not leak device-stream spans; only the committed
        // schedule is recorded, and the clock advances by the makespan.
        assert_eq!(tracer.clock_cycles(), report.makespan_cycles);
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.kind == SpanKind::StreamCopy));
        assert!(events.iter().any(|e| e.kind == SpanKind::StreamKernel));
        // The two spans overlap on the timeline (that's the point).
        let (a, b) = (&events[0], &events[1]);
        assert!(
            a.start_cycles < b.start_cycles + b.dur_cycles
                && b.start_cycles < a.start_cycles + a.dur_cycles,
            "stream spans must overlap: {a:?} vs {b:?}"
        );
        let json = tracer.to_chrome_json();
        assert!(json.contains("\"cat\":\"stream_copy\""));
        assert!(json.contains("\"cat\":\"stream_kernel\""));
    }
}
