//! Block retirement on the simulated clock.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One group of blocks finishing together: `blocks` blocks of `launch`
/// leave SM `sm` at instant `at`, returning their resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retirement {
    /// Retirement instant, cycles.
    pub at: u64,
    /// The launch the blocks belong to (caller-assigned id).
    pub launch: usize,
    /// The SM the blocks leave.
    pub sm: usize,
    /// How many blocks retire together.
    pub blocks: u64,
}

/// Min-heap of pending retirements ordered by instant; equal instants pop
/// in push order (a sequence number breaks ties), so draining is fully
/// deterministic.
#[derive(Debug, Default)]
pub struct RetirementQueue {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    entries: Vec<Retirement>,
}

impl RetirementQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a retirement.
    pub fn push(&mut self, r: Retirement) {
        let seq = self.entries.len() as u64;
        self.entries.push(r);
        self.heap.push(Reverse((r.at, seq)));
    }

    /// The earliest pending retirement instant, if any.
    pub fn next_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((at, _))| *at)
    }

    /// Pops every retirement due at or before `now`, in (instant, push)
    /// order.
    pub fn pop_due(&mut self, now: u64) -> Vec<Retirement> {
        let mut due = Vec::new();
        while let Some(&Reverse((at, seq))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            due.push(self.entries[seq as usize]);
        }
        due
    }

    /// Whether no retirements are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(at: u64, launch: usize) -> Retirement {
        Retirement {
            at,
            launch,
            sm: 0,
            blocks: 1,
        }
    }

    #[test]
    fn drains_in_time_then_push_order() {
        let mut q = RetirementQueue::new();
        q.push(r(50, 0));
        q.push(r(10, 1));
        q.push(r(50, 2));
        q.push(r(10, 3));
        assert_eq!(q.next_at(), Some(10));
        let due = q.pop_due(10);
        assert_eq!(
            due.iter().map(|x| x.launch).collect::<Vec<_>>(),
            vec![1, 3],
            "equal instants pop in push order"
        );
        assert_eq!(q.next_at(), Some(50));
        assert!(q.pop_due(49).is_empty());
        let due = q.pop_due(u64::MAX);
        assert_eq!(due.iter().map(|x| x.launch).collect::<Vec<_>>(), vec![0, 2]);
        assert!(q.is_empty());
    }
}
