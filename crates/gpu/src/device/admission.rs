//! The command processor: per-SM slot state and block admission.

use std::collections::BTreeMap;

use crate::spec::{BlockResources, GpuSpec};

/// What one thread block pins on its SM for its whole residency, derived
/// from a launch's [`BlockResources`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDemand {
    /// Register-file bytes.
    pub regfile_bytes: u64,
    /// Static shared-memory bytes.
    pub smem_bytes: u64,
    /// Warp slots (whole warps; ragged tails round up).
    pub warp_slots: u32,
}

impl BlockDemand {
    /// The demand of one block of a launch.
    pub fn of(resources: &BlockResources) -> Self {
        Self {
            regfile_bytes: resources.regfile_bytes(),
            smem_bytes: resources.smem_bytes as u64,
            warp_slots: resources.warps(),
        }
    }
}

/// A snapshot of one SM's committed resource usage, for audits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmUsage {
    /// Register-file bytes in use.
    pub regfile_bytes: u64,
    /// Shared-memory bytes in use.
    pub smem_bytes: u64,
    /// Warp slots in use.
    pub warp_slots: u32,
    /// Resident blocks.
    pub blocks: u32,
}

/// Per-SM live state: free capacity plus, per resident launch, how many
/// of its blocks this SM currently hosts (for co-residency accounting).
#[derive(Debug, Clone)]
struct SmSlot {
    used: SmUsage,
    /// Resident block count per launch id; deterministic iteration order.
    resident: BTreeMap<usize, u64>,
}

/// Admits thread blocks to per-SM slots against the spec's register-file,
/// shared-memory, warp-slot, and block-slot limits, and takes them back
/// at retirement. Purely spatial — the simulated clock lives in the
/// caller's event loop and [`super::RetirementQueue`].
#[derive(Debug, Clone)]
pub struct CommandProcessor {
    regfile_per_sm: u64,
    smem_per_sm: u64,
    warps_per_sm: u32,
    blocks_per_sm: u32,
    sms: Vec<SmSlot>,
    max_coresident: u32,
}

impl CommandProcessor {
    /// An empty device with `spec.num_sms` SMs at the spec's limits.
    pub fn new(spec: &GpuSpec) -> Self {
        Self {
            regfile_per_sm: spec.regfile_bytes_per_sm as u64,
            smem_per_sm: spec.shared_mem_per_sm as u64,
            warps_per_sm: spec.max_warps_per_sm(),
            blocks_per_sm: spec.max_blocks_per_sm,
            sms: vec![
                SmSlot {
                    used: SmUsage::default(),
                    resident: BTreeMap::new(),
                };
                spec.num_sms as usize
            ],
            max_coresident: 0,
        }
    }

    /// Number of SMs.
    pub fn num_sms(&self) -> usize {
        self.sms.len()
    }

    /// Whether one more block of `demand` fits on SM `sm` right now.
    pub fn fits(&self, sm: usize, demand: &BlockDemand) -> bool {
        let used = &self.sms[sm].used;
        used.regfile_bytes + demand.regfile_bytes <= self.regfile_per_sm
            && used.smem_bytes + demand.smem_bytes <= self.smem_per_sm
            && used.warp_slots + demand.warp_slots <= self.warps_per_sm
            && used.blocks < self.blocks_per_sm
    }

    /// Admits up to `max_blocks` blocks of `launch`, breadth-first: each
    /// pass places at most one block per SM in ascending SM order (the
    /// hardware block scheduler's round-robin shape — it is what lets two
    /// launches share an SM instead of the first launch stacking one SM
    /// full). Returns `(sm, count)` pairs for every SM that admitted at
    /// least one block, in ascending SM order; the total may be anything
    /// from `0` (device full for this shape) to `max_blocks`.
    pub fn admit_up_to(
        &mut self,
        launch: usize,
        demand: &BlockDemand,
        max_blocks: u64,
    ) -> Vec<(usize, u64)> {
        let mut per_sm = vec![0u64; self.sms.len()];
        let mut remaining = max_blocks;
        while remaining > 0 {
            let mut placed_any = false;
            for (sm, count) in per_sm.iter_mut().enumerate() {
                if remaining == 0 {
                    break;
                }
                if self.fits(sm, demand) {
                    self.admit_one(sm, launch, demand);
                    *count += 1;
                    remaining -= 1;
                    placed_any = true;
                }
            }
            if !placed_any {
                break;
            }
        }
        per_sm
            .into_iter()
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    fn admit_one(&mut self, sm: usize, launch: usize, demand: &BlockDemand) {
        debug_assert!(self.fits(sm, demand), "admission checked by caller");
        let slot = &mut self.sms[sm];
        slot.used.regfile_bytes += demand.regfile_bytes;
        slot.used.smem_bytes += demand.smem_bytes;
        slot.used.warp_slots += demand.warp_slots;
        slot.used.blocks += 1;
        *slot.resident.entry(launch).or_insert(0) += 1;
        self.max_coresident = self.max_coresident.max(slot.resident.len() as u32);
    }

    /// Retires `count` blocks of `launch` from SM `sm`, returning every
    /// resource they pinned.
    ///
    /// # Panics
    ///
    /// Panics when the SM does not hold `count` blocks of `launch`, or
    /// when returning the resources would underflow any counter — a
    /// retirement that does not match its admission is a scheduler bug,
    /// never a recoverable condition.
    pub fn retire(&mut self, sm: usize, launch: usize, demand: &BlockDemand, count: u64) {
        let slot = &mut self.sms[sm];
        let resident = slot
            .resident
            .get_mut(&launch)
            .unwrap_or_else(|| panic!("launch {launch} has no blocks on SM {sm}"));
        assert!(
            *resident >= count,
            "retiring {count} blocks of launch {launch} from SM {sm}, only {resident} resident"
        );
        *resident -= count;
        if *resident == 0 {
            slot.resident.remove(&launch);
        }
        let sub = |used: &mut u64, freed: u64, what: &str| {
            *used = used
                .checked_sub(freed)
                .unwrap_or_else(|| panic!("retirement returned more {what} than admitted"));
        };
        sub(
            &mut slot.used.regfile_bytes,
            demand.regfile_bytes * count,
            "register-file bytes",
        );
        sub(
            &mut slot.used.smem_bytes,
            demand.smem_bytes * count,
            "shared-memory bytes",
        );
        slot.used.warp_slots = slot
            .used
            .warp_slots
            .checked_sub((demand.warp_slots as u64 * count) as u32)
            .expect("retirement returned more warp slots than admitted");
        slot.used.blocks = slot
            .used
            .blocks
            .checked_sub(count as u32)
            .expect("retirement returned more block slots than admitted");
    }

    /// The committed usage of SM `sm` right now, for audits.
    pub fn usage(&self, sm: usize) -> SmUsage {
        self.sms[sm].used
    }

    /// Highest number of distinct launches simultaneously resident on one
    /// SM so far — `>= 2` is proof of true kernel co-residency.
    pub fn max_coresident_launches(&self) -> u32 {
        self.max_coresident
    }

    /// Whether every SM is completely empty (every admission retired).
    pub fn is_idle(&self) -> bool {
        self.sms
            .iter()
            .all(|s| s.used == SmUsage::default() && s.resident.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BlockResources;

    fn cp() -> CommandProcessor {
        CommandProcessor::new(&GpuSpec::quadro_p6000())
    }

    fn demand(threads: u32, smem: usize) -> BlockDemand {
        BlockDemand::of(&BlockResources {
            regs_per_thread: 32,
            smem_bytes: smem,
            threads,
        })
    }

    #[test]
    fn admission_is_breadth_first() {
        let mut cp = cp();
        // 256-thread blocks, 8 warps each: 8 fit per SM, but the first
        // pass spreads one per SM.
        let placed = cp.admit_up_to(0, &demand(256, 0), 30);
        assert_eq!(placed.len(), 30);
        assert!(placed.iter().all(|&(_, n)| n == 1));
        // A second launch lands on the same SMs: co-residency.
        let placed = cp.admit_up_to(1, &demand(256, 0), 30);
        assert_eq!(placed.len(), 30);
        assert_eq!(cp.max_coresident_launches(), 2);
        assert_eq!(cp.usage(0).blocks, 2);
        assert_eq!(cp.usage(0).warp_slots, 16);
    }

    #[test]
    fn full_smes_admit_nothing_until_retirement() {
        let mut cp = cp();
        // 48 KiB blocks: 2 per SM (96 KiB per SM), 60 device-wide.
        let d = demand(256, 48 * 1024);
        let placed = cp.admit_up_to(0, &d, 100);
        let total: u64 = placed.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 60, "the device holds exactly 60 such blocks");
        assert!(cp.admit_up_to(1, &d, 1).is_empty(), "device full");
        cp.retire(0, 0, &d, 1);
        let placed = cp.admit_up_to(1, &d, 10);
        assert_eq!(
            placed,
            vec![(0, 1)],
            "the freed slot admits the next launch"
        );
        assert_eq!(
            cp.max_coresident_launches(),
            2,
            "launch 0's surviving block and launch 1's new block share SM 0"
        );
    }

    #[test]
    fn retirement_returns_everything() {
        let mut cp = cp();
        let d = demand(512, 16 * 1024);
        let placed = cp.admit_up_to(7, &d, 45);
        assert!(!cp.is_idle());
        for (sm, n) in placed {
            cp.retire(sm, 7, &d, n);
        }
        assert!(cp.is_idle());
    }

    #[test]
    #[should_panic(expected = "has no blocks")]
    fn over_retirement_panics() {
        let mut cp = cp();
        let d = demand(256, 0);
        cp.admit_up_to(3, &d, 1);
        cp.retire(0, 4, &d, 1);
    }

    #[test]
    fn admission_respects_every_limit() {
        let spec = GpuSpec::quadro_p6000();
        let mut cp = CommandProcessor::new(&spec);
        // Tiny blocks: the 32-block-slot cap binds before warp slots.
        let tiny = demand(32, 0);
        let placed = cp.admit_up_to(0, &tiny, 10_000);
        let total: u64 = placed.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 32 * 30);
        assert_eq!(cp.usage(0).blocks, spec.max_blocks_per_sm);
    }
}
