//! The occupancy-accurate device core: block-level admission and
//! retirement.
//!
//! Structured after Cyclotron's composable modules, the core splits block
//! scheduling into two small, independently testable pieces:
//!
//! - [`CommandProcessor`] ([`admission`]): holds per-SM free-resource
//!   state (register-file bytes, shared-memory bytes, warp slots, block
//!   slots from [`crate::GpuSpec`]) and admits thread blocks
//!   breadth-first across SMs — one block per SM per pass, like the
//!   hardware's block scheduler — so concurrent launches interleave on
//!   the same SM when resources permit (true kernel co-residency).
//! - [`RetirementQueue`] ([`retire`]): a time-ordered queue of admitted
//!   block groups; popping an entry at its retirement instant returns
//!   every resource the group pinned. Under- or over-returning panics —
//!   the conservation invariant is enforced, not assumed.
//!
//! [`crate::stream::StreamSim`] drives both from its event loop; tests
//! and proptests drive them directly to check the admission invariant
//! (at every instant, per-SM usage ≤ spec limits) without a scheduler in
//! the way.

pub mod admission;
pub mod retire;

pub use admission::{BlockDemand, CommandProcessor, SmUsage};
pub use retire::{Retirement, RetirementQueue};
