//! Device global-memory accounting.
//!
//! The Table 2 regime exists because the NeuGraph-scale graphs do not fit
//! device memory: reddit-full's activations plus edge buffers overflow a
//! 24 GB card, forcing chunked streaming. This module provides the
//! capacity bookkeeping that lets the runtime (and tests) *prove* which
//! plans fit and which must stream, instead of hard-coding the decision.

use crate::spec::GpuSpec;

/// Device memory capacities of the Table 3 cards, in bytes.
pub fn device_capacity_bytes(spec: &GpuSpec) -> u64 {
    // Table 3 "Max. Mem.": P6000 24 GB, V100 16 GB.
    match spec.name.as_str() {
        "Tesla V100" => 16 * 1024 * 1024 * 1024,
        _ => 24 * 1024 * 1024 * 1024,
    }
}

/// A named allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Human-readable buffer name for OOM reports.
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Tracks allocations against a fixed capacity.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    allocations: Vec<Allocation>,
    used: u64,
}

/// Out-of-memory report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The request that failed.
    pub request: Allocation,
    /// Bytes in use at the time.
    pub used: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl core::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "out of device memory: {} needs {} B but {} of {} B are in use",
            self.request.name, self.request.bytes, self.used, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl DeviceMemory {
    /// An empty tracker with the device's capacity.
    pub fn new(spec: &GpuSpec) -> Self {
        Self {
            capacity: device_capacity_bytes(spec),
            allocations: Vec::new(),
            used: 0,
        }
    }

    /// A tracker with an explicit capacity (tests, hypothetical devices).
    pub fn with_capacity(capacity: u64) -> Self {
        Self {
            capacity,
            allocations: Vec::new(),
            used: 0,
        }
    }

    /// Attempts an allocation.
    pub fn alloc(&mut self, name: impl Into<String>, bytes: u64) -> Result<(), OutOfMemory> {
        let request = Allocation {
            name: name.into(),
            bytes,
        };
        if self.used + bytes > self.capacity {
            return Err(OutOfMemory {
                request,
                used: self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.allocations.push(request);
        Ok(())
    }

    /// Frees the most recent allocation with the given name, returning
    /// whether one was found.
    pub fn free(&mut self, name: &str) -> bool {
        if let Some(pos) = self.allocations.iter().rposition(|a| a.name == name) {
            self.used -= self.allocations.remove(pos).bytes;
            true
        } else {
            false
        }
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.used
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Convenience: whether a whole GNN-inference working set fits —
    /// features in and out at the widest layer plus the adjacency arrays.
    pub fn plan_fits(num_nodes: usize, num_edges: usize, max_dim: usize, spec: &GpuSpec) -> bool {
        let mut mem = DeviceMemory::new(spec);
        let row = max_dim as u64 * 4;
        mem.alloc("features_in", num_nodes as u64 * row)
            .and_then(|()| mem.alloc("features_out", num_nodes as u64 * row))
            .and_then(|()| mem.alloc("row_ptr", (num_nodes as u64 + 1) * 8))
            .and_then(|()| mem.alloc("col_idx", num_edges as u64 * 4))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut mem = DeviceMemory::with_capacity(1000);
        mem.alloc("a", 400).expect("fits");
        mem.alloc("b", 500).expect("fits");
        assert_eq!(mem.used(), 900);
        assert_eq!(mem.remaining(), 100);
        let err = mem.alloc("c", 200).expect_err("overflow");
        assert_eq!(err.used, 900);
        assert!(mem.free("a"));
        assert!(!mem.free("a"), "already freed");
        mem.alloc("c", 200).expect("fits after free");
    }

    #[test]
    fn table3_capacities() {
        assert_eq!(device_capacity_bytes(&GpuSpec::quadro_p6000()), 24 << 30);
        assert_eq!(device_capacity_bytes(&GpuSpec::tesla_v100()), 16 << 30);
    }

    #[test]
    fn table1_graphs_fit_but_table2_streams() {
        let p6000 = GpuSpec::quadro_p6000();
        // amazon0505 (largest Table 1 graph) fits comfortably.
        assert!(DeviceMemory::plan_fits(410_236, 4_878_875, 96, &p6000));
        // enwiki at NeuGraph scale does not: 3.6M x 300-dim activations
        // x2 + 276M edges already exceed what inference can co-resident
        // with the framework's buffers... verify the raw numbers.
        let fits = DeviceMemory::plan_fits(3_598_623, 276_110_172, 300, &p6000);
        // 3.6M * 300 * 4 * 2 = 8.6 GB + 1.1 GB edges: fits a 24 GB card in
        // isolation, so single-graph inference is fine — what overflows is
        // NeuGraph's *training* working set (per-layer activations x 2
        // layers x forward+backward + edge buffers). Model that plan:
        let mut train = DeviceMemory::new(&p6000);
        let row = 300u64 * 4;
        let n = 3_598_623u64;
        let e = 276_110_172u64;
        let mut ok = true;
        for layer in 0..2 {
            ok &= train.alloc(format!("act_fwd_{layer}"), n * row).is_ok();
            ok &= train.alloc(format!("act_bwd_{layer}"), n * row).is_ok();
            ok &= train.alloc(format!("edge_buf_{layer}"), e * row).is_ok();
        }
        assert!(fits, "single-pass inference fits");
        assert!(
            !ok,
            "SAGA training working set with edge buffers must overflow"
        );
    }

    #[test]
    fn v100_is_tighter_than_p6000() {
        let n = 8_601_204usize; // amazon (Table 2)
        let e = 231_594_310usize;
        let p = DeviceMemory::plan_fits(n, e, 300, &GpuSpec::quadro_p6000());
        let v = DeviceMemory::plan_fits(n, e, 300, &GpuSpec::tesla_v100());
        // 8.6M x 300 x 4 x 2 = 20.6 GB + 0.9 GB edges: inside 24 GB,
        // outside 16 GB.
        assert!(p);
        assert!(!v);
    }
}
