//! Deterministic event-level GPU execution simulator.
//!
//! This crate is the reproduction's substitute for physical CUDA hardware
//! (the paper evaluates on a Quadro P6000 and a Tesla V100). Kernels are
//! expressed as *op-stream emitters*: for every thread block they emit a
//! per-warp sequence of abstract operations (compute, global reads/writes,
//! shared-memory traffic, atomics, barriers). The [`engine::Engine`]
//! consumes the stream and produces [`metrics::KernelMetrics`] with the
//! same quantities the paper measures via NVProf:
//!
//! - elapsed cycles / milliseconds,
//! - DRAM read/write bytes (through a set-associative LRU cache),
//! - cache hit rate,
//! - atomic-operation counts and serialization stalls,
//! - SM efficiency (useful issue cycles over elapsed × #SMs).
//!
//! Everything architectural that the paper's optimizations exploit is
//! modeled: warp lockstep (divergence costs the max over lanes), memory
//! coalescing (uncoalesced warps issue per-lane transactions), per-block
//! shared memory with capacity limits, atomic contention hotspots, block →
//! SM scheduling with tail imbalance, and host↔device transfers for
//! streaming baselines. Nothing is sampled from a clock or an unseeded RNG:
//! identical inputs produce identical metrics.

pub mod cache;
pub mod context;
pub mod device;
pub mod device_memory;
pub mod engine;
pub mod fault;
pub mod kernel;
pub mod metrics;
pub mod spec;
pub mod stream;
pub mod trace;
pub mod transfer;

pub use context::RunContext;
pub use device::{BlockDemand, CommandProcessor, Retirement, RetirementQueue, SmUsage};
pub use device_memory::DeviceMemory;
pub use engine::{
    parse_sim_threads, Engine, EngineBuilder, Workload, WorkloadMetrics, MAX_SIM_THREADS,
};
pub use fault::{FaultConfig, FaultKind, FaultPlan};
pub use kernel::{ArrayId, BlockSink, GridConfig, Kernel};
pub use metrics::{HitRateWindow, KernelMetrics, Limiter, PhaseBreakdown, RunMetrics};
pub use spec::{BlockResources, BlocksPerSm, GpuSpec, DEFAULT_REGS_PER_THREAD};
pub use stream::{Enqueued, EventId, OpClass, OpHandle, OpSpan, StreamId, StreamReport, StreamSim};
pub use trace::{ArgValue, SpanKind, TraceEvent, TraceRecorder};
pub use transfer::TransferMetrics;

/// Errors produced by the simulated device: invalid launch configurations,
/// invalid engine configurations, and stream-scheduling faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// `threads_per_block` exceeds the device maximum or is zero.
    InvalidBlockSize {
        /// Requested threads per block.
        requested: u32,
        /// Device maximum.
        max: u32,
    },
    /// Requested per-block shared memory exceeds the device limit.
    SharedMemoryOverflow {
        /// Requested bytes per block.
        requested: usize,
        /// Device limit in bytes.
        limit: usize,
    },
    /// The grid is empty (zero blocks).
    EmptyGrid,
    /// An [`EngineBuilder`] option (or environment override) is invalid.
    InvalidConfig {
        /// What was wrong with the configuration.
        reason: String,
    },
    /// An operation referenced a stream id this simulator never issued.
    UnknownStream {
        /// The offending stream id.
        id: usize,
    },
    /// An operation referenced an event id this simulator never issued.
    UnknownEvent {
        /// The offending event id.
        id: usize,
    },
    /// The stream schedule cannot make progress: every remaining stream
    /// head waits on an event whose `record_event` never becomes
    /// schedulable (a wait-before-record cycle).
    StreamDeadlock {
        /// One blocked stream id (the lowest, for determinism).
        stream: usize,
    },
    /// An injected fault from the engine's [`fault::FaultPlan`] killed an
    /// op. The op still burned its priced time on the simulated clock
    /// before failing.
    Fault {
        /// What kind of fault fired.
        kind: fault::FaultKind,
        /// Name of the op that died (kernel name, `"gemm"`, or
        /// `"transfer"`).
        op: String,
    },
}

impl core::fmt::Display for GpuError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GpuError::InvalidBlockSize { requested, max } => {
                write!(f, "invalid block size {requested} (device max {max})")
            }
            GpuError::SharedMemoryOverflow { requested, limit } => {
                write!(
                    f,
                    "shared memory request {requested} B exceeds per-block limit {limit} B"
                )
            }
            GpuError::EmptyGrid => write!(f, "kernel launched with an empty grid"),
            GpuError::InvalidConfig { reason } => {
                write!(f, "invalid engine configuration: {reason}")
            }
            GpuError::UnknownStream { id } => write!(f, "unknown stream id {id}"),
            GpuError::UnknownEvent { id } => write!(f, "unknown event id {id}"),
            GpuError::StreamDeadlock { stream } => {
                write!(
                    f,
                    "stream schedule deadlocked: stream {stream} waits on an event \
                     that can never be recorded"
                )
            }
            GpuError::Fault { kind, op } => {
                write!(f, "injected {kind} fault killed op `{op}`")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Crate-local result alias.
pub type Result<T> = core::result::Result<T, GpuError>;
