//! Simulated device specifications.
//!
//! The two presets carry the paper's Table 3 hardware: the Quadro P6000
//! used for the main evaluation and the Tesla V100 used for the
//! data-center case study (Figure 13c). Latency constants are not in
//! Table 3; they use representative published values for the respective
//! architectures and are identical across presets except where the
//! architecture genuinely differs, so cross-device comparisons reflect the
//! Table 3 resources (SMs, bandwidth, cache) rather than tuning.

use serde::{Deserialize, Serialize};

use crate::kernel::WARP_SIZE;

/// Architectural register width in bytes (one 32-bit register).
pub const REGISTER_BYTES: u32 = 4;

/// Default register demand per thread when a kernel does not declare one.
/// 32 registers is the compiler sweet spot both presets' toolchains target
/// (and keeps the register-file limit exactly as permissive as the
/// thread-slot limit at the default file size, so undeclared kernels see
/// no new constraint).
pub const DEFAULT_REGS_PER_THREAD: u32 = 32;

/// Typed per-block resource demand of one kernel launch — the quantities
/// the device core's command processor admits blocks against. Replaces
/// ad-hoc reads of `shared_mem_per_block` / `max_threads_per_sm` in the
/// advisor, kernels, and tuning layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockResources {
    /// Architectural registers per thread.
    pub regs_per_thread: u32,
    /// Static shared memory per block, bytes.
    pub smem_bytes: usize,
    /// Threads per block.
    pub threads: u32,
}

impl BlockResources {
    /// Register-file bytes one block pins on its SM.
    pub fn regfile_bytes(&self) -> u64 {
        self.regs_per_thread as u64 * REGISTER_BYTES as u64 * self.threads as u64
    }

    /// Warp slots one block occupies (ragged tails round up).
    pub fn warps(&self) -> u32 {
        self.threads.div_ceil(WARP_SIZE).max(1)
    }
}

/// How many blocks of one launch can co-reside on a single SM — the
/// result of [`GpuSpec::occupancy_limit`]. Zero means the block shape
/// exceeds a per-block device limit and can never launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlocksPerSm(u32);

impl BlocksPerSm {
    /// Blocks per SM; `0` = unlaunchable.
    pub fn get(&self) -> u32 {
        self.0
    }

    /// Whether a block of this shape can run on the device at all.
    pub fn is_launchable(&self) -> bool {
        self.0 > 0
    }
}

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Quadro P6000"`.
    pub name: String,
    /// Microarchitecture, e.g. `"Pascal"`.
    pub architecture: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Total CUDA cores across the device.
    pub cuda_cores: u32,
    /// Core clock in GHz; converts cycles to wall time.
    pub clock_ghz: f64,
    /// L2 cache capacity in bytes (the simulator's single cache level,
    /// standing in for the L1+L2+texture hierarchy the paper profiles).
    pub l2_bytes: usize,
    /// L2 associativity (ways per set).
    pub l2_ways: usize,
    /// Cache-line / memory-transaction size in bytes.
    pub line_bytes: usize,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Shared memory per SM shared among its resident blocks, in bytes —
    /// one of the four admission limits of
    /// [`GpuSpec::occupancy_limit`].
    pub shared_mem_per_sm: usize,
    /// Register-file capacity per SM, in bytes (64 K 32-bit registers on
    /// both Table 3 parts); resident blocks pin
    /// `regs_per_thread * 4 * threads` each.
    pub regfile_bytes_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM — with `threads_per_block`, this
    /// bounds how many blocks co-reside on an SM, which in turn bounds
    /// memory-latency hiding (big blocks lower occupancy).
    pub max_threads_per_sm: u32,
    /// Hard cap on resident blocks per SM regardless of how little each
    /// block demands (the hardware's block-slot count).
    pub max_blocks_per_sm: u32,
    /// Fixed dispatch/teardown cost per thread block in cycles (small
    /// blocks launch many of these).
    pub block_overhead_cycles: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: u64,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: u64,
    /// Shared-memory access latency in cycles.
    pub shared_latency_cycles: u64,
    /// Cost of issuing one atomic operation from a warp, in cycles.
    pub atomic_latency_cycles: u64,
    /// Additional serialization cost per conflicting atomic on the same
    /// address, in cycles.
    pub atomic_serialize_cycles: u64,
    /// Fixed per-kernel launch overhead in cycles.
    pub kernel_launch_cycles: u64,
    /// Cost of one `__syncthreads` barrier, in cycles.
    pub sync_cycles: u64,
    /// Issue cost of one memory transaction from a warp, in cycles.
    pub transaction_issue_cycles: u64,
    /// Warp instruction schedulers per SM (issue width in warps/cycle).
    pub warp_schedulers: u32,
    /// How many outstanding memory requests a block can overlap; divides
    /// memory stall latency (latency hiding).
    pub memory_parallelism: u64,
    /// Host↔device (PCIe) bandwidth in GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Host↔device transfer fixed latency in microseconds.
    pub pcie_latency_us: f64,
    /// Fraction of peak FLOPs a dense tuned GEMM achieves (cuBLAS-like).
    pub gemm_efficiency: f64,
}

impl GpuSpec {
    /// The paper's primary platform (Table 3 row 1): Pascal, 30 SMs,
    /// 3840 CUDA cores, 1.506 GHz, 12 TFLOPs, 3 MB L2, 432 GB/s.
    pub fn quadro_p6000() -> Self {
        Self {
            name: "Quadro P6000".into(),
            architecture: "Pascal".into(),
            num_sms: 30,
            cuda_cores: 3840,
            clock_ghz: 1.506,
            l2_bytes: 3 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            regfile_bytes_per_sm: 256 * 1024,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            block_overhead_cycles: 120,
            dram_bandwidth_gbps: 432.0,
            dram_latency_cycles: 400,
            l2_latency_cycles: 90,
            shared_latency_cycles: 24,
            atomic_latency_cycles: 40,
            atomic_serialize_cycles: 12,
            kernel_launch_cycles: 6000,
            sync_cycles: 40,
            transaction_issue_cycles: 4,
            warp_schedulers: 4,
            memory_parallelism: 8,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 10.0,
            gemm_efficiency: 0.6,
        }
    }

    /// The data-center platform (Table 3 row 2): Volta, 80 SMs, 5120 CUDA
    /// cores, 1.530 GHz, 14 TFLOPs, 6 MB L2, 900 GB/s.
    pub fn tesla_v100() -> Self {
        Self {
            name: "Tesla V100".into(),
            architecture: "Volta".into(),
            num_sms: 80,
            cuda_cores: 5120,
            clock_ghz: 1.530,
            l2_bytes: 6 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            regfile_bytes_per_sm: 256 * 1024,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            block_overhead_cycles: 110,
            dram_bandwidth_gbps: 900.0,
            dram_latency_cycles: 375,
            l2_latency_cycles: 80,
            shared_latency_cycles: 20,
            atomic_latency_cycles: 36,
            atomic_serialize_cycles: 10,
            kernel_launch_cycles: 6000,
            sync_cycles: 35,
            transaction_issue_cycles: 4,
            warp_schedulers: 4,
            memory_parallelism: 10,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 10.0,
            gemm_efficiency: 0.65,
        }
    }

    /// CUDA cores per SM.
    pub fn cores_per_sm(&self) -> u32 {
        self.cuda_cores / self.num_sms
    }

    /// Peak FMA throughput in FLOPs per cycle across the device
    /// (2 FLOPs per core-cycle).
    pub fn flops_per_cycle(&self) -> f64 {
        2.0 * self.cuda_cores as f64
    }

    /// Peak single-precision throughput in TFLOPs (sanity-check against the
    /// Table 3 "Throughput" column).
    pub fn peak_tflops(&self) -> f64 {
        self.flops_per_cycle() * self.clock_ghz / 1000.0
    }

    /// DRAM bytes the whole device can move per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.clock_ghz
    }

    /// Converts a cycle count to milliseconds at the core clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }

    /// Converts milliseconds to core-clock cycles (rounded to nearest);
    /// the inverse of [`GpuSpec::cycles_to_ms`] used to place transfers
    /// and serving deadlines on the cycle-granular simulated clock.
    pub fn ms_to_cycles(&self, ms: f64) -> u64 {
        (ms * self.clock_ghz * 1e6).round() as u64
    }

    /// Number of L2 sets implied by capacity, ways and line size.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bytes / self.line_bytes / self.l2_ways).max(1)
    }

    /// Warp slots per SM (`max_threads_per_sm / 32`).
    pub fn max_warps_per_sm(&self) -> u32 {
        (self.max_threads_per_sm / WARP_SIZE).max(1)
    }

    /// How many blocks of the given shape one SM can host at once: the
    /// minimum over the four per-SM admission limits (warp slots,
    /// shared-memory bytes, register-file bytes, block slots), or `0`
    /// when the block exceeds a *per-block* device limit (too many
    /// threads, or more static shared memory than one block may request)
    /// and can never launch. This is the single source of truth for
    /// occupancy: the engine's latency-hiding depth, the stream
    /// scheduler's block admission, and Algorithm 1's shared-memory
    /// sizing all ask it.
    pub fn occupancy_limit(&self, r: &BlockResources) -> BlocksPerSm {
        if r.threads == 0
            || r.threads > self.max_threads_per_block
            || r.smem_bytes > self.shared_mem_per_block
        {
            return BlocksPerSm(0);
        }
        let by_warps = self.max_warps_per_sm() / r.warps();
        let by_smem = self
            .shared_mem_per_sm
            .checked_div(r.smem_bytes)
            .map_or(u32::MAX, |n| n.min(u32::MAX as usize) as u32);
        let by_regs = (self.regfile_bytes_per_sm as u64)
            .checked_div(r.regfile_bytes())
            .map_or(u32::MAX, |n| n.min(u32::MAX as u64) as u32);
        BlocksPerSm(
            by_warps
                .min(by_smem)
                .min(by_regs)
                .min(self.max_blocks_per_sm),
        )
    }

    /// Achieved occupancy of a launch alone on the device, in `[0, 1]`:
    /// resident warps per SM over the SM's warp slots. Residency is the
    /// shape's [`GpuSpec::occupancy_limit`], but a grid too small to fill
    /// every SM to that limit achieves proportionally less (its blocks
    /// spread breadth-first, `ceil(num_blocks / num_sms)` deep).
    pub fn achieved_occupancy(&self, r: &BlockResources, num_blocks: u64) -> f64 {
        let limit = self.occupancy_limit(r).get() as u64;
        if limit == 0 || num_blocks == 0 {
            return 0.0;
        }
        let resident = limit.min(num_blocks.div_ceil(self.num_sms as u64));
        (resident * r.warps() as u64) as f64 / self.max_warps_per_sm() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p6000_matches_table3() {
        let s = GpuSpec::quadro_p6000();
        assert_eq!(s.num_sms, 30);
        assert_eq!(s.cuda_cores, 3840);
        assert_eq!(s.cores_per_sm(), 128);
        // Table 3 reports 12 TFLOPs peak.
        assert!(
            (s.peak_tflops() - 12.0).abs() < 0.5,
            "peak = {}",
            s.peak_tflops()
        );
        assert_eq!(s.l2_bytes, 3 * 1024 * 1024);
    }

    #[test]
    fn v100_matches_table3() {
        let s = GpuSpec::tesla_v100();
        assert_eq!(s.num_sms, 80);
        assert_eq!(s.cuda_cores, 5120);
        // Table 3 reports 14 TFLOPs peak; 5120 cores * 2 * 1.53 = 15.7 —
        // the marketing figure undersells; accept the band.
        assert!(s.peak_tflops() > 13.0 && s.peak_tflops() < 16.5);
        assert!(s.dram_bandwidth_gbps / GpuSpec::quadro_p6000().dram_bandwidth_gbps > 2.0);
    }

    #[test]
    fn occupancy_limit_takes_the_binding_resource() {
        let s = GpuSpec::quadro_p6000();
        let r = |threads: u32, smem: usize, regs: u32| BlockResources {
            regs_per_thread: regs,
            smem_bytes: smem,
            threads,
        };
        // Warp slots bind: 64 warp slots / 8 warps per block = 8.
        assert_eq!(s.occupancy_limit(&r(256, 0, 32)).get(), 8);
        // Shared memory binds: 96 KiB per SM / 48 KiB per block = 2.
        assert_eq!(s.occupancy_limit(&r(128, 48 * 1024, 32)).get(), 2);
        // Register file binds: 256 KiB / (64 regs * 4 B * 256 thr) = 4.
        assert_eq!(s.occupancy_limit(&r(256, 0, 64)).get(), 4);
        // Block slots bind for tiny blocks: warp slots would allow 64.
        assert_eq!(s.occupancy_limit(&r(32, 0, 8)).get(), 32);
        assert_eq!(s.occupancy_limit(&r(32, 0, 8)).get(), s.max_blocks_per_sm);
        // Per-block limits make the shape unlaunchable, not just tight.
        assert!(!s.occupancy_limit(&r(2048, 0, 32)).is_launchable());
        assert!(!s.occupancy_limit(&r(256, 49 * 1024, 32)).is_launchable());
        assert!(!s.occupancy_limit(&r(0, 0, 32)).is_launchable());
        // Ragged block sizes round up to whole warps: 33 threads pin 2
        // warp slots.
        assert_eq!(s.occupancy_limit(&r(33, 0, 8)).get(), 32);
        assert_eq!(s.occupancy_limit(&r(1000, 0, 8)).get(), 2);
    }

    #[test]
    fn occupancy_limit_matches_the_legacy_hiding_inputs() {
        // The engine's latency-hiding depth used to be
        // min(max_threads_per_sm / tpb, 2 * shared_mem_per_block / smem).
        // With the Table-3 defaults (96 KiB smem/SM, 256 KiB regfile, 32
        // regs/thread) the new four-way limit reproduces it for every
        // warp-aligned block size, so engine metrics did not move.
        let s = GpuSpec::quadro_p6000();
        for tpb in [32u32, 64, 128, 256, 512, 1024] {
            for smem in [0usize, 1024, 16 * 1024, 48 * 1024] {
                let legacy_threads = (s.max_threads_per_sm / tpb).max(1);
                let legacy_shared = (2 * s.shared_mem_per_block)
                    .checked_div(smem)
                    .map_or(u32::MAX, |n| (n as u32).max(1));
                let legacy = legacy_threads.min(legacy_shared).min(s.max_blocks_per_sm);
                let got = s
                    .occupancy_limit(&BlockResources {
                        regs_per_thread: DEFAULT_REGS_PER_THREAD,
                        smem_bytes: smem,
                        threads: tpb,
                    })
                    .get();
                assert_eq!(got, legacy, "tpb {tpb} smem {smem}");
            }
        }
    }

    #[test]
    fn block_resources_accounting() {
        let r = BlockResources {
            regs_per_thread: 32,
            smem_bytes: 1024,
            threads: 96,
        };
        assert_eq!(r.warps(), 3);
        assert_eq!(r.regfile_bytes(), 32 * 4 * 96);
        let s = GpuSpec::tesla_v100();
        assert_eq!(s.max_warps_per_sm(), 64);
        assert_eq!(s.shared_mem_per_sm, 96 * 1024);
        assert_eq!(s.regfile_bytes_per_sm, 256 * 1024);
    }

    #[test]
    fn derived_quantities() {
        let s = GpuSpec::quadro_p6000();
        assert!(s.dram_bytes_per_cycle() > 200.0);
        assert!(s.l2_sets() >= 1024);
        assert!((s.cycles_to_ms(1_506_000) - 1.0).abs() < 1e-9);
        assert_eq!(s.ms_to_cycles(1.0), 1_506_000);
        assert_eq!(s.ms_to_cycles(s.cycles_to_ms(12_345)), 12_345);
    }
}
