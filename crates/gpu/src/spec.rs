//! Simulated device specifications.
//!
//! The two presets carry the paper's Table 3 hardware: the Quadro P6000
//! used for the main evaluation and the Tesla V100 used for the
//! data-center case study (Figure 13c). Latency constants are not in
//! Table 3; they use representative published values for the respective
//! architectures and are identical across presets except where the
//! architecture genuinely differs, so cross-device comparisons reflect the
//! Table 3 resources (SMs, bandwidth, cache) rather than tuning.

use serde::{Deserialize, Serialize};

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"Quadro P6000"`.
    pub name: String,
    /// Microarchitecture, e.g. `"Pascal"`.
    pub architecture: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Total CUDA cores across the device.
    pub cuda_cores: u32,
    /// Core clock in GHz; converts cycles to wall time.
    pub clock_ghz: f64,
    /// L2 cache capacity in bytes (the simulator's single cache level,
    /// standing in for the L1+L2+texture hierarchy the paper profiles).
    pub l2_bytes: usize,
    /// L2 associativity (ways per set).
    pub l2_ways: usize,
    /// Cache-line / memory-transaction size in bytes.
    pub line_bytes: usize,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM — with `threads_per_block`, this
    /// bounds how many blocks co-reside on an SM, which in turn bounds
    /// memory-latency hiding (big blocks lower occupancy).
    pub max_threads_per_sm: u32,
    /// Fixed dispatch/teardown cost per thread block in cycles (small
    /// blocks launch many of these).
    pub block_overhead_cycles: u64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in cycles.
    pub dram_latency_cycles: u64,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: u64,
    /// Shared-memory access latency in cycles.
    pub shared_latency_cycles: u64,
    /// Cost of issuing one atomic operation from a warp, in cycles.
    pub atomic_latency_cycles: u64,
    /// Additional serialization cost per conflicting atomic on the same
    /// address, in cycles.
    pub atomic_serialize_cycles: u64,
    /// Fixed per-kernel launch overhead in cycles.
    pub kernel_launch_cycles: u64,
    /// Cost of one `__syncthreads` barrier, in cycles.
    pub sync_cycles: u64,
    /// Issue cost of one memory transaction from a warp, in cycles.
    pub transaction_issue_cycles: u64,
    /// Warp instruction schedulers per SM (issue width in warps/cycle).
    pub warp_schedulers: u32,
    /// How many outstanding memory requests a block can overlap; divides
    /// memory stall latency (latency hiding).
    pub memory_parallelism: u64,
    /// Host↔device (PCIe) bandwidth in GB/s.
    pub pcie_bandwidth_gbps: f64,
    /// Host↔device transfer fixed latency in microseconds.
    pub pcie_latency_us: f64,
    /// Fraction of peak FLOPs a dense tuned GEMM achieves (cuBLAS-like).
    pub gemm_efficiency: f64,
}

impl GpuSpec {
    /// The paper's primary platform (Table 3 row 1): Pascal, 30 SMs,
    /// 3840 CUDA cores, 1.506 GHz, 12 TFLOPs, 3 MB L2, 432 GB/s.
    pub fn quadro_p6000() -> Self {
        Self {
            name: "Quadro P6000".into(),
            architecture: "Pascal".into(),
            num_sms: 30,
            cuda_cores: 3840,
            clock_ghz: 1.506,
            l2_bytes: 3 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            block_overhead_cycles: 120,
            dram_bandwidth_gbps: 432.0,
            dram_latency_cycles: 400,
            l2_latency_cycles: 90,
            shared_latency_cycles: 24,
            atomic_latency_cycles: 40,
            atomic_serialize_cycles: 12,
            kernel_launch_cycles: 6000,
            sync_cycles: 40,
            transaction_issue_cycles: 4,
            warp_schedulers: 4,
            memory_parallelism: 8,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 10.0,
            gemm_efficiency: 0.6,
        }
    }

    /// The data-center platform (Table 3 row 2): Volta, 80 SMs, 5120 CUDA
    /// cores, 1.530 GHz, 14 TFLOPs, 6 MB L2, 900 GB/s.
    pub fn tesla_v100() -> Self {
        Self {
            name: "Tesla V100".into(),
            architecture: "Volta".into(),
            num_sms: 80,
            cuda_cores: 5120,
            clock_ghz: 1.530,
            l2_bytes: 6 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            block_overhead_cycles: 110,
            dram_bandwidth_gbps: 900.0,
            dram_latency_cycles: 375,
            l2_latency_cycles: 80,
            shared_latency_cycles: 20,
            atomic_latency_cycles: 36,
            atomic_serialize_cycles: 10,
            kernel_launch_cycles: 6000,
            sync_cycles: 35,
            transaction_issue_cycles: 4,
            warp_schedulers: 4,
            memory_parallelism: 10,
            pcie_bandwidth_gbps: 12.0,
            pcie_latency_us: 10.0,
            gemm_efficiency: 0.65,
        }
    }

    /// CUDA cores per SM.
    pub fn cores_per_sm(&self) -> u32 {
        self.cuda_cores / self.num_sms
    }

    /// Peak FMA throughput in FLOPs per cycle across the device
    /// (2 FLOPs per core-cycle).
    pub fn flops_per_cycle(&self) -> f64 {
        2.0 * self.cuda_cores as f64
    }

    /// Peak single-precision throughput in TFLOPs (sanity-check against the
    /// Table 3 "Throughput" column).
    pub fn peak_tflops(&self) -> f64 {
        self.flops_per_cycle() * self.clock_ghz / 1000.0
    }

    /// DRAM bytes the whole device can move per core cycle.
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bandwidth_gbps / self.clock_ghz
    }

    /// Converts a cycle count to milliseconds at the core clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e6)
    }

    /// Converts milliseconds to core-clock cycles (rounded to nearest);
    /// the inverse of [`GpuSpec::cycles_to_ms`] used to place transfers
    /// and serving deadlines on the cycle-granular simulated clock.
    pub fn ms_to_cycles(&self, ms: f64) -> u64 {
        (ms * self.clock_ghz * 1e6).round() as u64
    }

    /// Number of L2 sets implied by capacity, ways and line size.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bytes / self.line_bytes / self.l2_ways).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p6000_matches_table3() {
        let s = GpuSpec::quadro_p6000();
        assert_eq!(s.num_sms, 30);
        assert_eq!(s.cuda_cores, 3840);
        assert_eq!(s.cores_per_sm(), 128);
        // Table 3 reports 12 TFLOPs peak.
        assert!(
            (s.peak_tflops() - 12.0).abs() < 0.5,
            "peak = {}",
            s.peak_tflops()
        );
        assert_eq!(s.l2_bytes, 3 * 1024 * 1024);
    }

    #[test]
    fn v100_matches_table3() {
        let s = GpuSpec::tesla_v100();
        assert_eq!(s.num_sms, 80);
        assert_eq!(s.cuda_cores, 5120);
        // Table 3 reports 14 TFLOPs peak; 5120 cores * 2 * 1.53 = 15.7 —
        // the marketing figure undersells; accept the band.
        assert!(s.peak_tflops() > 13.0 && s.peak_tflops() < 16.5);
        assert!(s.dram_bandwidth_gbps / GpuSpec::quadro_p6000().dram_bandwidth_gbps > 2.0);
    }

    #[test]
    fn derived_quantities() {
        let s = GpuSpec::quadro_p6000();
        assert!(s.dram_bytes_per_cycle() > 200.0);
        assert!(s.l2_sets() >= 1024);
        assert!((s.cycles_to_ms(1_506_000) - 1.0).abs() < 1e-9);
        assert_eq!(s.ms_to_cycles(1.0), 1_506_000);
        assert_eq!(s.ms_to_cycles(s.cycles_to_ms(12_345)), 12_345);
    }
}
