//! Kernel execution engine: block costing, SM scheduling, global bounds.
//!
//! The timing model follows the analytical-GPU-model tradition (Hong & Kim
//! style) at block granularity:
//!
//! - **Warp critical path**: each warp's time alone is `busy + stall /
//!   memory_parallelism` (outstanding requests overlap up to the device's
//!   memory-level parallelism).
//! - **Issue bound**: the SM's schedulers retire at most `warp_schedulers`
//!   warp-instructions per cycle, so a block needs at least
//!   `Σ busy / warp_schedulers` cycles.
//! - **Bandwidth bound**: a block's DRAM traffic cannot beat the SM's share
//!   of device bandwidth.
//!
//! The block costs the max of the three plus barrier overhead. Blocks are
//! then placed greedily on the earliest-free SM; kernel elapsed time is the
//! busiest SM plus launch overhead, floored by two device-wide bounds:
//! aggregate DRAM bandwidth and the hottest atomic line (atomics on one
//! address serialize globally).
//!
//! SM efficiency composes tail balance (how evenly SMs finish) with warp
//! issue utilization (how much of each issued cycle is useful lanes) — the
//! two wastes that group-based workload management eliminates.

use crate::cache::SetAssocCache;
use crate::kernel::{BlockSink, Kernel, WARP_SIZE};
use crate::metrics::KernelMetrics;
use crate::spec::GpuSpec;
use crate::transfer::{transfer, TransferMetrics};
use crate::Result;

/// A simulated GPU ready to run kernels.
///
/// # Examples
///
/// ```
/// use gnnadvisor_gpu::{Engine, GpuSpec};
///
/// let engine = Engine::new(GpuSpec::quadro_p6000());
/// // Price the update phase of a 10k-node GCN layer (10k x 96 -> 16).
/// let gemm = engine.run_gemm(10_000, 16, 96);
/// assert!(gemm.time_ms > 0.0);
/// // Price a 4 MB host-to-device feature upload.
/// let copy = engine.run_transfer(4_000_000);
/// assert!(copy.time_ms > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    spec: GpuSpec,
}

impl Engine {
    /// Creates an engine for the given device.
    pub fn new(spec: GpuSpec) -> Self {
        Self { spec }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Launches a kernel and returns its metrics.
    pub fn run(&self, kernel: &dyn Kernel) -> Result<KernelMetrics> {
        let grid = kernel.grid();
        grid.validate(&self.spec)?;

        let mut cache =
            SetAssocCache::new(self.spec.l2_sets(), self.spec.l2_ways, self.spec.line_bytes);
        let mut atomic_hotspots: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();

        // Earliest-finish-time greedy SM assignment.
        let mut sm_busy = vec![0u64; self.spec.num_sms as usize];
        let mut totals = KernelMetrics {
            name: kernel.name().to_string(),
            ..Default::default()
        };
        let mut useful_total = 0u64;
        let mut busy_issue_total = 0u64;
        let mut serialized_atomics_total = 0u64;

        let sm_bw_cycles_per_byte =
            self.spec.num_sms as f64 / self.spec.dram_bytes_per_cycle().max(1e-9);

        // Occupancy-limited latency hiding: big blocks co-reside less on an
        // SM, so fewer independent warps are available to cover memory
        // stalls. Shared-memory demand caps residency the same way.
        let resident_by_threads =
            (self.spec.max_threads_per_sm / grid.threads_per_block.max(1)).max(1) as u64;
        let resident_by_shared = (2 * self.spec.shared_mem_per_block)
            .checked_div(grid.shared_mem_bytes)
            .map_or(u64::MAX, |b| b.max(1) as u64);
        let resident = resident_by_threads.min(resident_by_shared);
        // Roughly half the resident blocks have runnable warps at any
        // moment (the rest drain at barriers/tails), so effective
        // latency-hiding depth is resident/2 — a 1024-thread launch (2
        // resident) barely covers one outstanding miss, which is the
        // right-hand rise of the paper's Figure 11b.
        let hiding = self.spec.memory_parallelism.min((resident / 2).max(1));

        for block_id in 0..grid.num_blocks {
            let mut sink = BlockSink::new(
                &self.spec,
                &mut cache,
                &mut atomic_hotspots,
                grid.threads_per_block,
            );
            kernel.emit_block(block_id, &mut sink);
            sink.finish();
            let acc = sink.acc;

            let busy_sum: u64 = acc.warps.iter().map(|w| w.busy).sum();
            let useful_sum: u64 = acc.warps.iter().map(|w| w.useful).sum();
            let critical: u64 = acc
                .warps
                .iter()
                .map(|w| w.busy + w.stall / hiding)
                .max()
                .unwrap_or(0);
            let issue_bound = busy_sum / self.spec.warp_schedulers as u64;
            let block_dram = acc.dram_read_bytes + acc.dram_write_bytes;
            let bw_bound = (block_dram as f64 * sm_bw_cycles_per_byte) as u64;
            // Stall throughput: the SM can keep ~hiding x 8 memory
            // requests in flight across all the block's warps; below that
            // occupancy the block's aggregate stall time becomes the
            // bottleneck (the low-occupancy penalty of huge blocks).
            let stall_sum: u64 = acc.warps.iter().map(|w| w.stall).sum();
            let stall_bound = stall_sum / (hiding * 8);
            let block_cycles = critical.max(issue_bound).max(bw_bound).max(stall_bound)
                + acc.syncs * self.spec.sync_cycles
                + self.spec.block_overhead_cycles;

            // Place on the least-busy SM.
            let (sm, _) = sm_busy
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .expect("num_sms > 0 by spec");
            sm_busy[sm] += block_cycles;

            totals.dram_read_bytes += acc.dram_read_bytes;
            totals.dram_write_bytes += acc.dram_write_bytes;
            totals.l2_hits += acc.l2_hits;
            totals.l2_misses += acc.l2_misses;
            totals.atomic_ops += acc.atomic_ops;
            serialized_atomics_total += acc.serialized_atomics;
            totals.shared_bytes += acc.shared_bytes;
            useful_total += useful_sum;
            busy_issue_total += busy_sum;
        }

        let busiest = sm_busy.iter().copied().max().unwrap_or(0);
        // Device-wide floors.
        let device_bw_bound = ((totals.dram_read_bytes + totals.dram_write_bytes) as f64
            / self.spec.dram_bytes_per_cycle().max(1e-9)) as u64;
        // The hottest line's round count is the longest per-word atomic
        // serial chain in the kernel.
        let hotspot_rounds = atomic_hotspots.values().copied().max().unwrap_or(0);
        let atomic_bound = hotspot_rounds.saturating_mul(self.spec.atomic_serialize_cycles);
        let body = busiest.max(device_bw_bound).max(atomic_bound);
        let elapsed = body + self.spec.kernel_launch_cycles;
        totals.limiter = if self.spec.kernel_launch_cycles >= body {
            crate::metrics::Limiter::LaunchOverhead
        } else if atomic_bound >= busiest && atomic_bound >= device_bw_bound {
            crate::metrics::Limiter::AtomicHotspot
        } else if device_bw_bound >= busiest {
            crate::metrics::Limiter::DeviceBandwidth
        } else {
            crate::metrics::Limiter::SmTime
        };

        totals.atomic_serialization_cycles =
            serialized_atomics_total * self.spec.atomic_serialize_cycles;
        totals.useful_cycles = useful_total;
        totals.num_blocks = grid.num_blocks as u64;
        totals.elapsed_cycles = elapsed;
        totals.time_ms = self.spec.cycles_to_ms(elapsed);

        // SM efficiency = issue-feed ratio x lane utilization: how much of
        // the device's total SM-time is spent issuing (busy / schedulers
        // over elapsed x SMs — intra-block critical-warp slack and cross-SM
        // tail imbalance both shrink it) times how useful the issued lanes
        // are (divergence and uncoalesced access shrink it).
        let feed_eff = if body == 0 {
            1.0
        } else {
            (busy_issue_total as f64 / self.spec.warp_schedulers as f64)
                / (body as f64 * self.spec.num_sms as f64)
        };
        let warp_eff = if busy_issue_total == 0 {
            1.0
        } else {
            (useful_total as f64 / (busy_issue_total as f64 * WARP_SIZE as f64)).min(1.0)
        };
        totals.sm_efficiency = (feed_eff.min(1.0) * warp_eff).clamp(0.0, 1.0);

        Ok(totals)
    }

    /// Prices a dense `m x k · k x n` GEMM (the update-phase DGEMM/MLP) with
    /// a cuBLAS-like roofline: compute at `gemm_efficiency` of peak FLOPs,
    /// memory as one pass over the three operand matrices.
    pub fn run_gemm(&self, m: usize, n: usize, k: usize) -> KernelMetrics {
        let flops = 2 * m as u64 * n as u64 * k as u64;
        let compute_cycles =
            (flops as f64 / (self.spec.flops_per_cycle() * self.spec.gemm_efficiency)) as u64;
        let bytes = 4 * (m * k + k * n + m * n) as u64;
        let bw_cycles = (bytes as f64 / self.spec.dram_bytes_per_cycle()) as u64;
        let elapsed = compute_cycles.max(bw_cycles) + self.spec.kernel_launch_cycles;
        KernelMetrics {
            name: format!("gemm_{m}x{k}x{n}"),
            elapsed_cycles: elapsed,
            time_ms: self.spec.cycles_to_ms(elapsed),
            dram_read_bytes: 4 * (m * k + k * n) as u64,
            dram_write_bytes: 4 * (m * n) as u64,
            // A tuned GEMM is heavily cache-blocked; model a high hit rate
            // by attributing ideal-reuse traffic only.
            l2_hits: (flops / 64).max(1),
            l2_misses: (bytes / self.spec.line_bytes as u64).max(1),
            sm_efficiency: self.spec.gemm_efficiency,
            useful_cycles: flops,
            num_blocks: m.div_ceil(64) as u64,
            limiter: if compute_cycles >= bw_cycles {
                crate::metrics::Limiter::SmTime
            } else {
                crate::metrics::Limiter::DeviceBandwidth
            },
            ..Default::default()
        }
    }

    /// Prices a host→device or device→host copy.
    pub fn run_transfer(&self, bytes: u64) -> TransferMetrics {
        transfer(&self.spec, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayId, GridConfig};

    /// A kernel whose blocks each run `warps` warps of `cycles` uniform
    /// compute and read `bytes` of global memory at a per-block offset.
    struct Uniform {
        blocks: usize,
        warps: usize,
        cycles: u64,
        bytes: u64,
    }

    impl Kernel for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: (self.warps as u32) * WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
            for w in 0..self.warps {
                sink.begin_warp();
                sink.compute(self.cycles, WARP_SIZE);
                if self.bytes > 0 {
                    let offset = (block_id * self.warps + w) as u64 * self.bytes;
                    sink.global_read(ArrayId(0), offset, self.bytes);
                }
            }
        }
    }

    /// One block does 100x the work of the others.
    struct Imbalanced {
        blocks: usize,
    }

    impl Kernel for Imbalanced {
        fn name(&self) -> &str {
            "imbalanced"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
            sink.begin_warp();
            sink.compute(if block_id == 0 { 100_000 } else { 1_000 }, WARP_SIZE);
        }
    }

    /// Every block hammers the same atomic address.
    struct HotAtomic {
        blocks: usize,
        per_block: u64,
    }

    impl Kernel for HotAtomic {
        fn name(&self) -> &str {
            "hot_atomic"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, _block_id: usize, sink: &mut BlockSink<'_>) {
            sink.begin_warp();
            sink.atomic_rmw(ArrayId(9), 0, 4, self.per_block);
        }
    }

    fn engine() -> Engine {
        Engine::new(GpuSpec::quadro_p6000())
    }

    #[test]
    fn deterministic_runs() {
        let e = engine();
        let k = Uniform {
            blocks: 64,
            warps: 4,
            cycles: 500,
            bytes: 4096,
        };
        let a = e.run(&k).unwrap();
        let b = e.run(&k).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_work_takes_longer() {
        let e = engine();
        let small = e
            .run(&Uniform {
                blocks: 30,
                warps: 2,
                cycles: 1_000,
                bytes: 0,
            })
            .unwrap();
        let big = e
            .run(&Uniform {
                blocks: 300,
                warps: 2,
                cycles: 1_000,
                bytes: 0,
            })
            .unwrap();
        assert!(big.elapsed_cycles > small.elapsed_cycles);
    }

    #[test]
    fn blocks_spread_across_sms() {
        let e = engine();
        // 30 identical blocks on 30 SMs should take about one block's time.
        let one = e
            .run(&Uniform {
                blocks: 1,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            })
            .unwrap();
        let thirty = e
            .run(&Uniform {
                blocks: 30,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            })
            .unwrap();
        assert!(
            thirty.elapsed_cycles < one.elapsed_cycles * 2,
            "30 blocks must run concurrently: {} vs {}",
            thirty.elapsed_cycles,
            one.elapsed_cycles
        );
    }

    #[test]
    fn imbalance_lowers_sm_efficiency() {
        let e = engine();
        let balanced = e
            .run(&Uniform {
                blocks: 60,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            })
            .unwrap();
        let skewed = e.run(&Imbalanced { blocks: 60 }).unwrap();
        assert!(
            skewed.sm_efficiency < balanced.sm_efficiency * 0.5,
            "skewed {} vs balanced {}",
            skewed.sm_efficiency,
            balanced.sm_efficiency
        );
    }

    #[test]
    fn atomic_hotspot_bounds_kernel() {
        let e = engine();
        let cold = e
            .run(&HotAtomic {
                blocks: 1,
                per_block: 10,
            })
            .unwrap();
        let hot = e
            .run(&HotAtomic {
                blocks: 60,
                per_block: 1_000,
            })
            .unwrap();
        assert_eq!(hot.atomic_ops, 60_000);
        assert!(hot.atomic_serialization_cycles > 0);
        // 60k serialized atomics must dominate elapsed time.
        assert!(hot.elapsed_cycles > cold.elapsed_cycles * 50);
        let floor = 60_000 * e.spec().atomic_serialize_cycles;
        assert!(
            hot.elapsed_cycles >= floor,
            "{} < {floor}",
            hot.elapsed_cycles
        );
    }

    #[test]
    fn bandwidth_bound_applies() {
        let e = engine();
        // 1 block streaming 100 MB with trivial compute: elapsed must be at
        // least bytes / device bandwidth.
        let k = Uniform {
            blocks: 256,
            warps: 4,
            cycles: 1,
            bytes: 400_000,
        };
        let m = e.run(&k).unwrap();
        let min_cycles = (m.dram_bytes() as f64 / e.spec().dram_bytes_per_cycle()) as u64;
        assert!(m.elapsed_cycles >= min_cycles);
        assert!(m.dram_read_bytes >= 256 * 4 * 400_000 - e.spec().line_bytes as u64 * 1024);
    }

    #[test]
    fn v100_beats_p6000_on_same_kernel() {
        let k = Uniform {
            blocks: 320,
            warps: 8,
            cycles: 2_000,
            bytes: 65_536,
        };
        let p = Engine::new(GpuSpec::quadro_p6000()).run(&k).unwrap();
        let v = Engine::new(GpuSpec::tesla_v100()).run(&k).unwrap();
        assert!(
            v.time_ms < p.time_ms,
            "V100 ({} ms) must outrun P6000 ({} ms)",
            v.time_ms,
            p.time_ms
        );
    }

    #[test]
    fn gemm_costs_scale_with_flops() {
        let e = engine();
        let small = e.run_gemm(1000, 16, 16);
        let big = e.run_gemm(1000, 256, 256);
        // 256x the FLOPs; launch overhead damps the ratio at this size.
        assert!(big.time_ms > small.time_ms * 4.0);
        assert!(small.sm_efficiency > 0.5);
    }

    #[test]
    fn empty_grid_rejected() {
        let e = engine();
        let k = Uniform {
            blocks: 0,
            warps: 1,
            cycles: 1,
            bytes: 0,
        };
        assert!(e.run(&k).is_err());
    }

    #[test]
    fn limiter_classification() {
        let e = engine();
        // Tiny kernel: launch-bound.
        let tiny = e.run(&Uniform { blocks: 1, warps: 1, cycles: 10, bytes: 0 }).unwrap();
        assert_eq!(tiny.limiter, crate::metrics::Limiter::LaunchOverhead);
        // Pure compute: SM-time-bound.
        let compute = e
            .run(&Uniform { blocks: 600, warps: 8, cycles: 50_000, bytes: 0 })
            .unwrap();
        assert_eq!(compute.limiter, crate::metrics::Limiter::SmTime);
        // Atomic hammer: atomic-hotspot-bound.
        let hot = e.run(&HotAtomic { blocks: 60, per_block: 5_000 }).unwrap();
        assert_eq!(hot.limiter, crate::metrics::Limiter::AtomicHotspot);
    }

    #[test]
    fn launch_overhead_floor() {
        let e = engine();
        let m = e
            .run(&Uniform {
                blocks: 1,
                warps: 1,
                cycles: 1,
                bytes: 0,
            })
            .unwrap();
        assert!(m.elapsed_cycles >= e.spec().kernel_launch_cycles);
    }
}
