//! Kernel execution engine: block costing, SM scheduling, global bounds.
//!
//! The timing model follows the analytical-GPU-model tradition (Hong & Kim
//! style) at block granularity:
//!
//! - **Warp critical path**: each warp's time alone is `busy + stall /
//!   memory_parallelism` (outstanding requests overlap up to the device's
//!   memory-level parallelism).
//! - **Issue bound**: the SM's schedulers retire at most `warp_schedulers`
//!   warp-instructions per cycle, so a block needs at least
//!   `Σ busy / warp_schedulers` cycles.
//! - **Bandwidth bound**: a block's DRAM traffic cannot beat the SM's share
//!   of device bandwidth.
//!
//! The block costs the max of the three plus barrier overhead. Blocks are
//! then placed greedily on the earliest-free SM; kernel elapsed time is the
//! busiest SM plus launch overhead, floored by two device-wide bounds:
//! aggregate DRAM bandwidth and the hottest atomic line (atomics on one
//! address serialize globally).
//!
//! SM efficiency composes tail balance (how evenly SMs finish) with warp
//! issue utilization (how much of each issued cycle is useful lanes) — the
//! two wastes that group-based workload management eliminates.
//!
//! # Parallel, allocation-free execution
//!
//! The block loop runs sharded: [`crate::context::plan_shards`] splits the
//! launch into contiguous chunks in dispatch order, each simulated against
//! a private partition of the L2's sets. Worker threads claim whole shards,
//! so cross-block temporal locality (the paper's Figure 12 signal) is
//! preserved within each chunk, and the decomposition depends only on the
//! launch shape — results are bit-identical for any worker count, including
//! one. Per-chunk metrics merge with order-independent sums; SM placement
//! runs serially over the concatenated per-shard block costs, in dispatch
//! order, exactly as the serial loop would.
//!
//! All mutable state lives in a recycled [`RunContext`], so steady-state
//! launches allocate nothing on the hot path. The worker count comes from
//! `GNNADVISOR_SIM_THREADS` (or [`EngineBuilder::sim_threads`]); `0` means
//! one worker per available core.
//!
//! # Submission API
//!
//! Every way of putting work on the simulated device goes through one
//! typed entry point: [`Engine::submit`] takes a [`Workload`] — a kernel
//! launch, a roofline-priced GEMM, or a host↔device transfer — and returns
//! [`WorkloadMetrics`]. This uniform surface is what
//! [`crate::stream::StreamSim`] enqueues onto simulated streams. The
//! pre-existing `run`/`run_in`/`run_gemm`/`run_transfer` entry points are
//! deprecated one-line wrappers over `submit` (each doc states its exact
//! `submit` equivalent), and the old `with_tracer`/`with_sim_threads`
//! setters are gone — [`Engine::builder`] is the configuration surface.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::context::{plan_shards, RunContext, ShardSlot};
use crate::fault::{FaultKind, FaultPlan, OpVerdict};
use crate::kernel::{BlockSink, GridConfig, Kernel, WARP_SIZE};
use crate::metrics::{KernelMetrics, PhaseBreakdown};
use crate::spec::{BlockResources, GpuSpec};
use crate::trace::{HotBlock, ShardTrace, TraceRecorder, HOTSPOTS_PER_KERNEL};
use crate::transfer::{transfer, TransferMetrics};
use crate::{GpuError, Result};

/// Hard ceiling on configured simulation workers — far above any host's
/// core count, so anything bigger is a typo, not a configuration.
pub const MAX_SIM_THREADS: usize = 4096;

/// Block shape of the roofline GEMM's tiles: a cuBLAS-style 64×64 output
/// tile per 256-thread block, staging both operand panels in shared
/// memory. Two such blocks co-reside per SM (the smem limit binds), so a
/// device-filling GEMM still saturates the machine while small GEMMs
/// leave room for a concurrent kernel's blocks — the co-residency the
/// stream scheduler's admission path models.
pub const GEMM_BLOCK_RESOURCES: BlockResources = BlockResources {
    regs_per_thread: 32,
    smem_bytes: 48 * 1024,
    threads: 256,
};

/// Parses a `GNNADVISOR_SIM_THREADS` value: `0` (or an empty/whitespace
/// string) means one worker per available core. Rejects anything that is
/// not a small non-negative integer with a pointed message — a garbage
/// value silently falling back to all cores would hide the typo (matching
/// the `GNNADVISOR_SCALE` guard in the bench runner).
pub fn parse_sim_threads(raw: &str) -> core::result::Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(0);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n <= MAX_SIM_THREADS => Ok(n),
        Ok(n) => Err(format!(
            "GNNADVISOR_SIM_THREADS={n} exceeds the {MAX_SIM_THREADS}-worker \
             ceiling; use 0 for one worker per core"
        )),
        Err(_) => Err(format!(
            "GNNADVISOR_SIM_THREADS must be a non-negative integer \
             (0 = one worker per core), got {raw:?}; unset it to use all cores"
        )),
    }
}

/// One unit of device work, submitted through [`Engine::submit`] (and
/// enqueued onto simulated streams by [`crate::stream::StreamSim`]).
#[derive(Clone, Copy)]
pub enum Workload<'a> {
    /// A kernel launch simulated at block granularity.
    Kernel(&'a dyn Kernel),
    /// A dense `m x k · k x n` GEMM priced by the roofline model.
    Gemm {
        /// Rows of the left operand (and the output).
        m: usize,
        /// Columns of the right operand (and the output).
        n: usize,
        /// Inner (contraction) dimension.
        k: usize,
    },
    /// A host↔device copy of `bytes` over the PCIe model.
    Transfer {
        /// Payload size in bytes.
        bytes: u64,
    },
}

impl core::fmt::Debug for Workload<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Workload::Kernel(k) => f.debug_tuple("Kernel").field(&k.name()).finish(),
            Workload::Gemm { m, n, k } => f
                .debug_struct("Gemm")
                .field("m", m)
                .field("n", n)
                .field("k", k)
                .finish(),
            Workload::Transfer { bytes } => {
                f.debug_struct("Transfer").field("bytes", bytes).finish()
            }
        }
    }
}

/// The metrics produced by one submitted [`Workload`]: kernels and GEMMs
/// yield full [`KernelMetrics`], transfers yield [`TransferMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadMetrics {
    /// Metrics of a simulated kernel launch or roofline-priced GEMM.
    Kernel(KernelMetrics),
    /// Metrics of a host↔device transfer.
    Transfer(TransferMetrics),
}

impl WorkloadMetrics {
    /// Simulated wall time of the workload in milliseconds.
    pub fn time_ms(&self) -> f64 {
        match self {
            WorkloadMetrics::Kernel(m) => m.time_ms,
            WorkloadMetrics::Transfer(m) => m.time_ms,
        }
    }

    /// The kernel metrics, if this was a kernel or GEMM workload.
    pub fn as_kernel(&self) -> Option<&KernelMetrics> {
        match self {
            WorkloadMetrics::Kernel(m) => Some(m),
            WorkloadMetrics::Transfer(_) => None,
        }
    }

    /// The transfer metrics, if this was a transfer workload.
    pub fn as_transfer(&self) -> Option<&TransferMetrics> {
        match self {
            WorkloadMetrics::Kernel(_) => None,
            WorkloadMetrics::Transfer(m) => Some(m),
        }
    }

    /// Unwraps kernel/GEMM metrics.
    ///
    /// # Panics
    ///
    /// Panics if the workload was a transfer.
    pub fn into_kernel(self) -> KernelMetrics {
        match self {
            WorkloadMetrics::Kernel(m) => m,
            WorkloadMetrics::Transfer(_) => {
                panic!("expected kernel metrics, got transfer metrics")
            }
        }
    }

    /// Unwraps transfer metrics.
    ///
    /// # Panics
    ///
    /// Panics if the workload was a kernel or GEMM.
    pub fn into_transfer(self) -> TransferMetrics {
        match self {
            WorkloadMetrics::Kernel(_) => panic!("expected transfer metrics, got kernel metrics"),
            WorkloadMetrics::Transfer(m) => m,
        }
    }
}

/// Validated construction of an [`Engine`]. Options accumulate on the
/// builder and are checked once, at [`EngineBuilder::build`] — unlike the
/// removed `with_*` setters, an invalid configuration is a typed error
/// instead of a panic or silent fallback.
///
/// # Examples
///
/// ```
/// use gnnadvisor_gpu::{Engine, GpuSpec};
///
/// let engine = Engine::builder(GpuSpec::quadro_p6000())
///     .sim_threads(2)
///     .build()
///     .expect("2 workers is a valid configuration");
/// assert_eq!(engine.sim_threads(), 2);
/// // Zero workers is rejected at build() — use `sim_threads_auto()`
/// // (or omit the option) for one worker per core.
/// assert!(Engine::builder(GpuSpec::quadro_p6000())
///     .sim_threads(0)
///     .build()
///     .is_err());
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    spec: GpuSpec,
    sim_threads: SimThreadsRequest,
    tracer: Option<Arc<TraceRecorder>>,
    fault_plan: Option<Arc<FaultPlan>>,
}

/// How the builder was asked to pick the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimThreadsRequest {
    /// No request: defer to `GNNADVISOR_SIM_THREADS` at `build()`.
    Env,
    /// `sim_threads(n)`: explicit count, validated at `build()`.
    Explicit(usize),
    /// `sim_threads_auto()`: one worker per available core.
    Auto,
}

impl EngineBuilder {
    /// Requests an explicit simulation worker count. `build()` rejects `0`
    /// (the old setters' "auto" sentinel) — say [`Self::sim_threads_auto`]
    /// when you mean one worker per core — and anything above
    /// [`MAX_SIM_THREADS`].
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = SimThreadsRequest::Explicit(threads);
        self
    }

    /// Requests one simulation worker per available core (the default when
    /// `GNNADVISOR_SIM_THREADS` is unset).
    pub fn sim_threads_auto(mut self) -> Self {
        self.sim_threads = SimThreadsRequest::Auto;
        self
    }

    /// Attaches a span recorder; every launch, GEMM, and transfer of the
    /// built engine is recorded on the simulated clock.
    pub fn tracer(mut self, tracer: Arc<TraceRecorder>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Attaches a chaos schedule: every subsequent submission consumes one
    /// op verdict from `plan` and may come back as [`GpuError::Fault`]
    /// after burning its priced time. Clones of the engine share the plan
    /// (like they share the run context), so a multi-stream simulation
    /// over one engine draws from a single deterministic fault sequence.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Validates the options and constructs the engine. With no explicit
    /// worker count, `GNNADVISOR_SIM_THREADS` is consulted; a malformed
    /// value is returned as [`GpuError::InvalidConfig`] rather than the
    /// panic [`Engine::new`] raises.
    pub fn build(self) -> Result<Engine> {
        let sim_threads = match self.sim_threads {
            // `sim_threads(0)` is almost always a stale caller still
            // speaking the old setter's sentinel language; make the auto
            // request explicit instead of guessing.
            SimThreadsRequest::Explicit(0) => {
                return Err(GpuError::InvalidConfig {
                    reason: "sim_threads(0) is rejected; call sim_threads_auto() \
                             for one worker per core"
                        .into(),
                })
            }
            SimThreadsRequest::Explicit(n) if n > MAX_SIM_THREADS => {
                return Err(GpuError::InvalidConfig {
                    reason: format!(
                        "sim_threads({n}) exceeds the {MAX_SIM_THREADS}-worker ceiling"
                    ),
                })
            }
            SimThreadsRequest::Explicit(n) => n,
            SimThreadsRequest::Auto => 0,
            SimThreadsRequest::Env => match std::env::var("GNNADVISOR_SIM_THREADS") {
                Err(std::env::VarError::NotPresent) => 0,
                Err(std::env::VarError::NotUnicode(_)) => {
                    return Err(GpuError::InvalidConfig {
                        reason: "GNNADVISOR_SIM_THREADS is not valid unicode; \
                                 unset it to use all cores"
                            .into(),
                    })
                }
                Ok(raw) => {
                    parse_sim_threads(&raw).map_err(|reason| GpuError::InvalidConfig { reason })?
                }
            },
        };
        Ok(Engine {
            spec: self.spec,
            sim_threads,
            ctx: Arc::new(Mutex::new(RunContext::new())),
            tracer: self.tracer,
            fault_plan: self.fault_plan,
        })
    }
}

/// A simulated GPU ready to run kernels.
///
/// Cloning an engine is cheap and **shares** its [`RunContext`], so a sweep
/// that clones one engine per candidate still reuses a single set of
/// simulation buffers.
///
/// # Examples
///
/// ```
/// use gnnadvisor_gpu::{Engine, GpuSpec, Workload};
///
/// let engine = Engine::new(GpuSpec::quadro_p6000());
/// let mut ctx = engine.lock_context();
/// // Price the update phase of a 10k-node GCN layer (10k x 96 -> 16).
/// let gemm = engine
///     .submit(&mut ctx, Workload::Gemm { m: 10_000, n: 16, k: 96 })
///     .unwrap();
/// assert!(gemm.time_ms() > 0.0);
/// // Price a 4 MB host-to-device feature upload.
/// let copy = engine
///     .submit(&mut ctx, Workload::Transfer { bytes: 4_000_000 })
///     .unwrap();
/// assert!(copy.time_ms() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    spec: GpuSpec,
    /// Worker threads for the sharded block loop; `0` = one per core.
    sim_threads: usize,
    ctx: Arc<Mutex<RunContext>>,
    /// Opt-in span recorder; `None` keeps the hot path untouched.
    tracer: Option<Arc<TraceRecorder>>,
    /// Opt-in chaos schedule; `None` keeps submissions infallible beyond
    /// launch validation.
    fault_plan: Option<Arc<FaultPlan>>,
}

impl Engine {
    /// Creates an engine for the given device. The worker count defaults to
    /// the `GNNADVISOR_SIM_THREADS` environment variable (`0` or unset =
    /// one worker per available core).
    ///
    /// # Panics
    ///
    /// Panics when `GNNADVISOR_SIM_THREADS` is set to something that is
    /// not a non-negative integer at most [`MAX_SIM_THREADS`] — see
    /// [`parse_sim_threads`].
    pub fn new(spec: GpuSpec) -> Self {
        let sim_threads = match std::env::var("GNNADVISOR_SIM_THREADS") {
            Err(std::env::VarError::NotPresent) => 0,
            Err(std::env::VarError::NotUnicode(_)) => {
                panic!("GNNADVISOR_SIM_THREADS is not valid unicode; unset it to use all cores")
            }
            Ok(raw) => parse_sim_threads(&raw).unwrap_or_else(|msg| panic!("{msg}")),
        };
        Self {
            spec,
            sim_threads,
            ctx: Arc::new(Mutex::new(RunContext::new())),
            tracer: None,
            fault_plan: None,
        }
    }

    /// Starts a validated [`EngineBuilder`] for the given device. This is
    /// the only way to configure tracing and worker counts (the `with_*`
    /// setters it replaced are gone).
    pub fn builder(spec: GpuSpec) -> EngineBuilder {
        EngineBuilder {
            spec,
            sim_threads: SimThreadsRequest::Env,
            tracer: None,
            fault_plan: None,
        }
    }

    /// The attached span recorder, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Arc<TraceRecorder>> {
        self.tracer.as_ref()
    }

    /// The attached chaos schedule, if fault injection is enabled.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault_plan.as_ref()
    }

    /// The configured simulation worker count (`0` = one per core).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Locks and returns the engine's own (shared) [`RunContext`], for
    /// passing to [`Engine::submit`]. Clones of the engine share this
    /// context; holding the guard across submissions recycles its
    /// allocations without re-locking.
    pub fn lock_context(&self) -> std::sync::MutexGuard<'_, RunContext> {
        self.ctx.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Submits one typed [`Workload`] — kernel launch, GEMM, or transfer —
    /// and returns its [`WorkloadMetrics`]. The context is fully
    /// re-prepared per submission, so any context yields identical
    /// results; reusing one across submissions just recycles allocations.
    /// Use [`Engine::lock_context`] for the engine's shared context, or an
    /// owned [`RunContext`] for isolation.
    ///
    /// With a [`EngineBuilder::fault_plan`] attached, the submission may
    /// come back as [`GpuError::Fault`]; the op still burned its priced
    /// time on the plan's simulated clock before failing.
    pub fn submit(&self, ctx: &mut RunContext, workload: Workload<'_>) -> Result<WorkloadMetrics> {
        let op = Self::op_name(&workload);
        let (metrics, fault) = self.price_with_faults(ctx, workload, true)?;
        match fault {
            Some(kind) => Err(GpuError::Fault { kind, op }),
            None => Ok(metrics),
        }
    }

    /// Short op label for fault errors and stream spans.
    fn op_name(workload: &Workload<'_>) -> String {
        match workload {
            Workload::Kernel(kernel) => kernel.name().to_string(),
            Workload::Gemm { m, n, k } => format!("gemm_{m}x{k}x{n}"),
            Workload::Transfer { .. } => "transfer".to_string(),
        }
    }

    /// `submit` with tracing suppressed: [`crate::stream::StreamSim`]
    /// prices enqueued work through this path and records stream-placed
    /// spans itself once the schedule is known.
    pub(crate) fn submit_untraced(
        &self,
        ctx: &mut RunContext,
        workload: Workload<'_>,
    ) -> Result<(WorkloadMetrics, Option<FaultKind>)> {
        self.price_with_faults(ctx, workload, false)
    }

    /// Prices one workload under the engine's fault plan (if any). A
    /// `Slow` verdict stretches the metrics before they are returned or
    /// traced; a `Fail` verdict (or a device-reset crossing during the
    /// op) is reported alongside the burned metrics rather than as an
    /// `Err`, so stream schedulers can still occupy the device with the
    /// failed op's cycles. Verdicts are consumed on this serial path —
    /// never inside the sharded block loop — so the fault sequence depends
    /// only on submission order, not on `GNNADVISOR_SIM_THREADS`.
    fn price_with_faults(
        &self,
        ctx: &mut RunContext,
        workload: Workload<'_>,
        traced: bool,
    ) -> Result<(WorkloadMetrics, Option<FaultKind>)> {
        let Some(plan) = &self.fault_plan else {
            return self.submit_inner(ctx, workload, traced).map(|m| (m, None));
        };
        let is_transfer = matches!(workload, Workload::Transfer { .. });
        let verdict = plan.next_verdict(is_transfer);
        let (slow_factor, mut fault) = match verdict {
            OpVerdict::Ok => (1.0, None),
            OpVerdict::Slow { factor } => (factor, None),
            OpVerdict::Fail { kind } => (1.0, Some(kind)),
        };
        // An op that dies never completes, so its span is not recorded;
        // the trace stays a timeline of finished work. Slowed ops are
        // traced at their stretched timings.
        let traced = traced && fault.is_none();
        let metrics = self.price_inner(ctx, workload, traced, slow_factor)?;
        if let Some(kind) = plan.absorb_time(metrics.time_ms()) {
            fault.get_or_insert(kind);
        }
        Ok((metrics, fault))
    }

    fn submit_inner(
        &self,
        ctx: &mut RunContext,
        workload: Workload<'_>,
        traced: bool,
    ) -> Result<WorkloadMetrics> {
        self.price_inner(ctx, workload, traced, 1.0)
    }

    fn price_inner(
        &self,
        ctx: &mut RunContext,
        workload: Workload<'_>,
        traced: bool,
        slow_factor: f64,
    ) -> Result<WorkloadMetrics> {
        match workload {
            Workload::Kernel(kernel) => self
                .launch_kernel(ctx, kernel, traced, slow_factor)
                .map(WorkloadMetrics::Kernel),
            Workload::Gemm { m, n, k } => Ok(WorkloadMetrics::Kernel(self.price_gemm_inner(
                m,
                n,
                k,
                traced,
                slow_factor,
            ))),
            Workload::Transfer { bytes } => Ok(WorkloadMetrics::Transfer(
                self.price_transfer(bytes, traced),
            )),
        }
    }

    /// Launches a kernel against the engine's own (shared) context.
    /// Exactly `submit(&mut self.lock_context(), Workload::Kernel(kernel))`.
    #[deprecated(since = "0.4.0", note = "use Engine::submit with Workload::Kernel")]
    pub fn run(&self, kernel: &dyn Kernel) -> Result<KernelMetrics> {
        self.submit(&mut self.lock_context(), Workload::Kernel(kernel))
            .map(WorkloadMetrics::into_kernel)
    }

    /// Launches a kernel against an explicit context. Exactly
    /// `submit(ctx, Workload::Kernel(kernel))`.
    #[deprecated(since = "0.4.0", note = "use Engine::submit with Workload::Kernel")]
    pub fn run_in(&self, ctx: &mut RunContext, kernel: &dyn Kernel) -> Result<KernelMetrics> {
        self.submit(ctx, Workload::Kernel(kernel))
            .map(WorkloadMetrics::into_kernel)
    }

    /// Simulates one kernel launch. The context is fully re-prepared
    /// first, so any context yields identical results; passing the same
    /// one across launches just recycles its allocations. `slow_factor`
    /// (an injected-fault stretch, `1.0` = clean) is applied before
    /// tracing, so recorded spans show the perturbed timings.
    fn launch_kernel(
        &self,
        ctx: &mut RunContext,
        kernel: &dyn Kernel,
        traced: bool,
        slow_factor: f64,
    ) -> Result<KernelMetrics> {
        let grid = kernel.grid();
        grid.validate(&self.spec)?;

        let plan = plan_shards(grid.num_blocks, self.spec.l2_sets());
        ctx.prepare(&self.spec, &plan);

        let sm_bw_cycles_per_byte =
            self.spec.num_sms as f64 / self.spec.dram_bytes_per_cycle().max(1e-9);

        // Occupancy-limited latency hiding: big blocks co-reside less on an
        // SM, so fewer independent warps are available to cover memory
        // stalls. Shared-memory and register-file demand cap residency the
        // same way; `occupancy_limit` is the single source of truth.
        let resources = kernel.block_resources();
        let resident = self.spec.occupancy_limit(&resources).get().max(1) as u64;
        // Roughly half the resident blocks have runnable warps at any
        // moment (the rest drain at barriers/tails), so effective
        // latency-hiding depth is resident/2 — a 1024-thread launch (2
        // resident) barely covers one outstanding miss, which is the
        // right-hand rise of the paper's Figure 11b.
        let hiding = self.spec.memory_parallelism.min((resident / 2).max(1));

        let workers = self.worker_count(plan.num_shards);
        if workers <= 1 {
            for shard in 0..plan.num_shards {
                let slot = ctx.shards[shard]
                    .get_mut()
                    .unwrap_or_else(|p| p.into_inner());
                self.simulate_chunk(
                    kernel,
                    &grid,
                    plan.range(shard, grid.num_blocks),
                    hiding,
                    sm_bw_cycles_per_byte,
                    slot,
                );
            }
        } else {
            // Workers claim whole shards from a shared counter. Claim order
            // is racy but irrelevant: each shard's result depends only on
            // its own chunk, and the merge below is order-independent.
            let next = AtomicUsize::new(0);
            let shards = &ctx.shards[..plan.num_shards];
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= shards.len() {
                            break;
                        }
                        let mut slot = shards[shard].lock().unwrap_or_else(|p| p.into_inner());
                        self.simulate_chunk(
                            kernel,
                            &grid,
                            plan.range(shard, grid.num_blocks),
                            hiding,
                            sm_bw_cycles_per_byte,
                            &mut slot,
                        );
                    });
                }
            });
        }

        // Serial merge. Counter totals are plain sums and hotspot rounds
        // add per line, so shard order cannot matter; SM placement walks
        // the per-shard block costs in dispatch order, exactly like the
        // serial loop.
        let RunContext {
            shards,
            merged_hotspots,
            sm_busy,
            shard_traces,
            hot_blocks,
        } = ctx;
        let mut totals = KernelMetrics {
            name: kernel.name().to_string(),
            ..Default::default()
        };
        let mut useful_total = 0u64;
        let mut busy_issue_total = 0u64;
        let mut serialized_atomics_total = 0u64;
        // Per-shard spans and launch-wide hotspot blocks, gathered only
        // when tracing: both derive from per-shard state that is already
        // worker-count-invariant, so traced timelines are too. Their
        // buffers live in the context (emptied by `prepare`) so repeated
        // launches recycle the allocations.
        let tracing = traced && self.tracer.is_some();
        for (shard_idx, slot) in shards[..plan.num_shards].iter_mut().enumerate() {
            let slot = slot.get_mut().unwrap_or_else(|p| p.into_inner());
            if tracing {
                let range = plan.range(shard_idx, grid.num_blocks);
                shard_traces.push(ShardTrace {
                    first_block: range.start,
                    num_blocks: range.len(),
                    cycles: slot.block_cycles.iter().sum(),
                    l2_hits: slot.totals.l2_hits,
                    l2_misses: slot.totals.l2_misses,
                    dram_bytes: slot.totals.dram_read_bytes + slot.totals.dram_write_bytes,
                });
                // Top-K most expensive blocks across the launch, ordered
                // by cycles descending then block id — the deterministic
                // warp-imbalance hotspot list.
                let mut offset = 0u64;
                for (i, &cycles) in slot.block_cycles.iter().enumerate() {
                    let candidate = HotBlock {
                        block_id: range.start + i,
                        shard: shard_idx,
                        offset_cycles: offset,
                        cycles,
                    };
                    offset += cycles;
                    let pos = hot_blocks.partition_point(|h| {
                        h.cycles > cycles || (h.cycles == cycles && h.block_id < candidate.block_id)
                    });
                    if pos < HOTSPOTS_PER_KERNEL {
                        hot_blocks.insert(pos, candidate);
                        hot_blocks.truncate(HOTSPOTS_PER_KERNEL);
                    }
                }
            }
            totals.dram_read_bytes += slot.totals.dram_read_bytes;
            totals.dram_write_bytes += slot.totals.dram_write_bytes;
            totals.l2_hits += slot.totals.l2_hits;
            totals.l2_misses += slot.totals.l2_misses;
            totals.atomic_ops += slot.totals.atomic_ops;
            totals.shared_bytes += slot.totals.shared_bytes;
            serialized_atomics_total += slot.totals.serialized_atomics;
            useful_total += slot.totals.useful_cycles;
            busy_issue_total += slot.totals.busy_issue_cycles;
            for (&line, &rounds) in &slot.hotspots {
                *merged_hotspots.entry(line).or_insert(0) += rounds;
            }
            // Earliest-finish-time greedy SM assignment.
            for &block_cycles in &slot.block_cycles {
                let (sm, _) = sm_busy
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &t)| t)
                    .expect("num_sms > 0 by spec");
                sm_busy[sm] += block_cycles;
            }
        }

        let busiest = sm_busy.iter().copied().max().unwrap_or(0);
        // Device-wide floors.
        let device_bw_bound = ((totals.dram_read_bytes + totals.dram_write_bytes) as f64
            / self.spec.dram_bytes_per_cycle().max(1e-9)) as u64;
        // The hottest line's round count is the longest per-word atomic
        // serial chain in the kernel.
        let hotspot_rounds = merged_hotspots.values().copied().max().unwrap_or(0);
        let atomic_bound = hotspot_rounds.saturating_mul(self.spec.atomic_serialize_cycles);
        let body = busiest.max(device_bw_bound).max(atomic_bound);
        let elapsed = body + self.spec.kernel_launch_cycles;
        totals.limiter = if self.spec.kernel_launch_cycles >= body {
            crate::metrics::Limiter::LaunchOverhead
        } else if atomic_bound >= busiest && atomic_bound >= device_bw_bound {
            crate::metrics::Limiter::AtomicHotspot
        } else if device_bw_bound >= busiest {
            crate::metrics::Limiter::DeviceBandwidth
        } else {
            crate::metrics::Limiter::SmTime
        };

        totals.atomic_serialization_cycles =
            serialized_atomics_total * self.spec.atomic_serialize_cycles;
        totals.useful_cycles = useful_total;
        totals.num_blocks = grid.num_blocks as u64;
        totals.achieved_occupancy = self
            .spec
            .achieved_occupancy(&resources, grid.num_blocks as u64);
        totals.elapsed_cycles = elapsed;
        totals.time_ms = self.spec.cycles_to_ms(elapsed);

        // Exact phase partition of the elapsed cycles: DRAM bandwidth
        // demand claims the body first, the atomic serial chain claims
        // what bandwidth cannot explain, and per-SM work absorbs the
        // rest. compute + dram + atomic + launch == elapsed, always.
        let dram_phase = device_bw_bound.min(body);
        let atomic_phase = atomic_bound.min(body - dram_phase);
        totals.phases = PhaseBreakdown {
            compute_cycles: body - dram_phase - atomic_phase,
            dram_cycles: dram_phase,
            atomic_cycles: atomic_phase,
            launch_cycles: elapsed - body,
        };

        // SM efficiency = issue-feed ratio x lane utilization: how much of
        // the device's total SM-time is spent issuing (busy / schedulers
        // over elapsed x SMs — intra-block critical-warp slack and cross-SM
        // tail imbalance both shrink it) times how useful the issued lanes
        // are (divergence and uncoalesced access shrink it).
        let feed_eff = if body == 0 {
            1.0
        } else {
            (busy_issue_total as f64 / self.spec.warp_schedulers as f64)
                / (body as f64 * self.spec.num_sms as f64)
        };
        let warp_eff = if busy_issue_total == 0 {
            1.0
        } else {
            (useful_total as f64 / (busy_issue_total as f64 * WARP_SIZE as f64)).min(1.0)
        };
        totals.sm_efficiency = (feed_eff.min(1.0) * warp_eff).clamp(0.0, 1.0);

        if slow_factor != 1.0 {
            totals.stretch(slow_factor, &self.spec);
        }

        if tracing {
            if let Some(tracer) = &self.tracer {
                tracer.record_kernel(&totals, &self.spec, shard_traces, hot_blocks);
            }
        }

        Ok(totals)
    }

    /// Simulates one contiguous chunk of blocks against its shard's private
    /// cache and hotspot map, in dispatch order.
    fn simulate_chunk(
        &self,
        kernel: &dyn Kernel,
        grid: &GridConfig,
        blocks: std::ops::Range<usize>,
        hiding: u64,
        sm_bw_cycles_per_byte: f64,
        slot: &mut ShardSlot,
    ) {
        let ShardSlot {
            cache,
            hotspots,
            acc,
            block_cycles,
            totals,
        } = slot;
        for block_id in blocks {
            let mut sink = BlockSink::new(&self.spec, cache, hotspots, acc, grid.threads_per_block);
            kernel.emit_block(block_id, &mut sink);
            sink.finish();

            let busy_sum: u64 = acc.warp_busy.iter().sum();
            let useful_sum: u64 = acc.warp_useful.iter().sum();
            let critical: u64 = acc
                .warp_busy
                .iter()
                .zip(&acc.warp_stall)
                .map(|(&busy, &stall)| busy + stall / hiding)
                .max()
                .unwrap_or(0);
            let issue_bound = busy_sum / self.spec.warp_schedulers as u64;
            let block_dram = acc.dram_read_bytes + acc.dram_write_bytes;
            let bw_bound = (block_dram as f64 * sm_bw_cycles_per_byte) as u64;
            // Stall throughput: the SM can keep ~hiding x 8 memory
            // requests in flight across all the block's warps; below that
            // occupancy the block's aggregate stall time becomes the
            // bottleneck (the low-occupancy penalty of huge blocks).
            let stall_sum: u64 = acc.warp_stall.iter().sum();
            let stall_bound = stall_sum / (hiding * 8);
            let cycles = critical.max(issue_bound).max(bw_bound).max(stall_bound)
                + acc.syncs * self.spec.sync_cycles
                + self.spec.block_overhead_cycles;

            block_cycles.push(cycles);
            totals.add_block(acc, busy_sum, useful_sum);
        }
    }

    /// How many worker threads to spawn for `num_shards` shards.
    fn worker_count(&self, num_shards: usize) -> usize {
        if num_shards <= 1 {
            return 1;
        }
        let configured = if self.sim_threads > 0 {
            self.sim_threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        configured.min(num_shards)
    }

    /// Prices a dense `m x k · k x n` GEMM (the update-phase DGEMM/MLP).
    /// Exactly `submit(&mut self.lock_context(), Workload::Gemm { m, n, k })`.
    ///
    /// # Panics
    ///
    /// Panics when an attached [`EngineBuilder::fault_plan`] kills the
    /// submission — the legacy signature has no error channel. Use
    /// [`Engine::submit`] under fault injection.
    #[deprecated(since = "0.4.0", note = "use Engine::submit with Workload::Gemm")]
    pub fn run_gemm(&self, m: usize, n: usize, k: usize) -> KernelMetrics {
        self.submit(&mut self.lock_context(), Workload::Gemm { m, n, k })
            .expect("GEMM pricing only fails under an injected fault plan")
            .into_kernel()
    }

    /// Prices a dense `m x k · k x n` GEMM (the update-phase DGEMM/MLP) with
    /// a cuBLAS-like roofline: compute at `gemm_efficiency` of peak FLOPs,
    /// memory as one pass over the three operand matrices. `slow_factor`
    /// is an injected-fault stretch (`1.0` = clean), applied before
    /// tracing.
    fn price_gemm_inner(
        &self,
        m: usize,
        n: usize,
        k: usize,
        traced: bool,
        slow_factor: f64,
    ) -> KernelMetrics {
        let flops = 2 * m as u64 * n as u64 * k as u64;
        let compute_cycles =
            (flops as f64 / (self.spec.flops_per_cycle() * self.spec.gemm_efficiency)) as u64;
        let bytes = 4 * (m * k + k * n + m * n) as u64;
        let bw_cycles = (bytes as f64 / self.spec.dram_bytes_per_cycle()) as u64;
        let body = compute_cycles.max(bw_cycles);
        let elapsed = body + self.spec.kernel_launch_cycles;
        let dram_phase = bw_cycles.min(body);
        let mut metrics = KernelMetrics {
            name: format!("gemm_{m}x{k}x{n}"),
            elapsed_cycles: elapsed,
            time_ms: self.spec.cycles_to_ms(elapsed),
            dram_read_bytes: 4 * (m * k + k * n) as u64,
            dram_write_bytes: 4 * (m * n) as u64,
            // A tuned GEMM is heavily cache-blocked; model a high hit rate
            // by attributing ideal-reuse traffic only.
            l2_hits: (flops / 64).max(1),
            l2_misses: (bytes / self.spec.line_bytes as u64).max(1),
            sm_efficiency: self.spec.gemm_efficiency,
            achieved_occupancy: self
                .spec
                .achieved_occupancy(&GEMM_BLOCK_RESOURCES, m.div_ceil(64) as u64),
            useful_cycles: flops,
            num_blocks: m.div_ceil(64) as u64,
            limiter: if compute_cycles >= bw_cycles {
                crate::metrics::Limiter::SmTime
            } else {
                crate::metrics::Limiter::DeviceBandwidth
            },
            phases: PhaseBreakdown {
                compute_cycles: body - dram_phase,
                dram_cycles: dram_phase,
                atomic_cycles: 0,
                launch_cycles: self.spec.kernel_launch_cycles,
            },
            ..Default::default()
        };
        if slow_factor != 1.0 {
            metrics.stretch(slow_factor, &self.spec);
        }
        if traced {
            if let Some(tracer) = &self.tracer {
                tracer.record_gemm(&metrics);
            }
        }
        metrics
    }

    /// Prices a host→device or device→host copy. Exactly
    /// `submit(&mut self.lock_context(), Workload::Transfer { bytes })`.
    ///
    /// # Panics
    ///
    /// Panics when an attached [`EngineBuilder::fault_plan`] kills the
    /// submission — the legacy signature has no error channel. Use
    /// [`Engine::submit`] under fault injection.
    #[deprecated(since = "0.4.0", note = "use Engine::submit with Workload::Transfer")]
    pub fn run_transfer(&self, bytes: u64) -> TransferMetrics {
        self.submit(&mut self.lock_context(), Workload::Transfer { bytes })
            .expect("transfer pricing only fails under an injected fault plan")
            .into_transfer()
    }

    /// Prices a host→device or device→host copy over the PCIe model.
    fn price_transfer(&self, bytes: u64, traced: bool) -> TransferMetrics {
        let metrics = transfer(&self.spec, bytes);
        if traced {
            if let Some(tracer) = &self.tracer {
                tracer.record_transfer(&metrics, &self.spec);
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArrayId, GridConfig};

    /// A kernel whose blocks each run `warps` warps of `cycles` uniform
    /// compute and read `bytes` of global memory at a per-block offset.
    struct Uniform {
        blocks: usize,
        warps: usize,
        cycles: u64,
        bytes: u64,
    }

    impl Kernel for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: (self.warps as u32) * WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
            for w in 0..self.warps {
                sink.begin_warp();
                sink.compute(self.cycles, WARP_SIZE);
                if self.bytes > 0 {
                    let offset = (block_id * self.warps + w) as u64 * self.bytes;
                    sink.global_read(ArrayId(0), offset, self.bytes);
                }
            }
        }
    }

    /// One block does 100x the work of the others.
    struct Imbalanced {
        blocks: usize,
    }

    impl Kernel for Imbalanced {
        fn name(&self) -> &str {
            "imbalanced"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
            sink.begin_warp();
            sink.compute(if block_id == 0 { 100_000 } else { 1_000 }, WARP_SIZE);
        }
    }

    /// Every block hammers the same atomic address.
    struct HotAtomic {
        blocks: usize,
        per_block: u64,
    }

    impl Kernel for HotAtomic {
        fn name(&self) -> &str {
            "hot_atomic"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, _block_id: usize, sink: &mut BlockSink<'_>) {
            sink.begin_warp();
            sink.atomic_rmw(ArrayId(9), 0, 4, self.per_block);
        }
    }

    /// Blocks read overlapping windows of a shared array and hit a small
    /// pool of atomic counters — sensitive to both cache state ordering and
    /// hotspot-map merge order, which is what makes it a good determinism
    /// probe across thread counts.
    struct Windowed {
        blocks: usize,
    }

    impl Kernel for Windowed {
        fn name(&self) -> &str {
            "windowed"
        }
        fn grid(&self) -> GridConfig {
            GridConfig {
                num_blocks: self.blocks,
                threads_per_block: 2 * WARP_SIZE,
                shared_mem_bytes: 0,
            }
        }
        fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
            sink.begin_warp();
            sink.compute(200, WARP_SIZE);
            // 1 KB window sliding 256 B per block: each block re-reads 3/4
            // of its predecessor's lines.
            sink.global_read(ArrayId(1), block_id as u64 * 256, 1024);
            sink.begin_warp();
            let offsets: Vec<u64> = (0..WARP_SIZE as u64)
                .map(|lane| (block_id as u64 * 31 + lane * 97) % 8192)
                .collect();
            sink.global_read_scattered(ArrayId(1), &offsets, 4);
            sink.atomic_rmw(ArrayId(2), (block_id % 7) as u64 * 4, 4, 32);
            sink.sync();
        }
    }

    fn engine() -> Engine {
        Engine::new(GpuSpec::quadro_p6000())
    }

    /// Submits a kernel launch through the engine's shared context.
    fn launch(e: &Engine, k: &dyn Kernel) -> Result<KernelMetrics> {
        e.submit(&mut e.lock_context(), Workload::Kernel(k))
            .map(WorkloadMetrics::into_kernel)
    }

    /// Submits a roofline GEMM through the engine's shared context.
    fn gemm(e: &Engine, m: usize, n: usize, k: usize) -> KernelMetrics {
        e.submit(&mut e.lock_context(), Workload::Gemm { m, n, k })
            .expect("gemm workloads are infallible")
            .into_kernel()
    }

    #[test]
    fn deterministic_runs() {
        let e = engine();
        let k = Uniform {
            blocks: 64,
            warps: 4,
            cycles: 500,
            bytes: 4096,
        };
        let a = launch(&e, &k).unwrap();
        let b = launch(&e, &k).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn identical_across_thread_counts() {
        // The sharded engine must be bit-identical for any worker count,
        // including the serial fast path, on a kernel whose cache hits and
        // atomic hotspots are renumbering/order sensitive.
        let k = Windowed { blocks: 320 };
        let spec = GpuSpec::quadro_p6000();
        let at = |b: EngineBuilder| launch(&b.build().unwrap(), &k).unwrap();
        let serial = at(Engine::builder(spec.clone()).sim_threads(1));
        assert!(serial.l2_hits > 0, "probe kernel must exercise the cache");
        assert!(serial.atomic_ops > 0, "probe kernel must exercise atomics");
        for threads in [2, 3, 8] {
            let m = at(Engine::builder(spec.clone()).sim_threads(threads));
            assert_eq!(m, serial, "thread count {threads} changed the result");
        }
        let auto = at(Engine::builder(spec.clone()).sim_threads_auto());
        assert_eq!(auto, serial, "auto worker count changed the result");
    }

    #[test]
    fn builder_validates_at_build() {
        let spec = GpuSpec::quadro_p6000();
        // Zero is the deprecated setters' auto sentinel, not a worker count.
        let err = Engine::builder(spec.clone()).sim_threads(0).build();
        assert!(
            matches!(err, Err(GpuError::InvalidConfig { ref reason })
                if reason.contains("sim_threads_auto")),
            "{err:?}"
        );
        let err = Engine::builder(spec.clone())
            .sim_threads(MAX_SIM_THREADS + 1)
            .build();
        assert!(
            matches!(err, Err(GpuError::InvalidConfig { ref reason })
                if reason.contains("ceiling")),
            "{err:?}"
        );
        // Valid explicit and auto configurations build.
        assert_eq!(
            Engine::builder(spec.clone())
                .sim_threads(3)
                .build()
                .unwrap()
                .sim_threads(),
            3
        );
        assert_eq!(
            Engine::builder(spec)
                .sim_threads_auto()
                .build()
                .unwrap()
                .sim_threads(),
            0
        );
    }

    #[test]
    fn submit_matches_specialized_paths() {
        // One typed entry point, three workload shapes: results must be
        // identical to what the per-shape internals produce.
        let e = engine();
        let k = Windowed { blocks: 96 };
        let mut ctx = RunContext::new();
        let via_submit = e
            .submit(&mut ctx, Workload::Kernel(&k))
            .unwrap()
            .into_kernel();
        assert_eq!(via_submit, launch(&e, &k).unwrap());

        let g = e
            .submit(
                &mut ctx,
                Workload::Gemm {
                    m: 256,
                    n: 32,
                    k: 64,
                },
            )
            .unwrap();
        assert!(g.as_kernel().is_some());
        assert!(g.as_transfer().is_none());
        assert!(g.time_ms() > 0.0);

        let t = e
            .submit(&mut ctx, Workload::Transfer { bytes: 1 << 20 })
            .unwrap()
            .into_transfer();
        assert_eq!(t.bytes, 1 << 20);
        assert!(t.time_ms > 0.0);
    }

    #[test]
    fn sim_threads_env_values_are_guarded() {
        assert_eq!(parse_sim_threads("0"), Ok(0));
        assert_eq!(parse_sim_threads(" 8 "), Ok(8));
        assert_eq!(parse_sim_threads(""), Ok(0));
        assert_eq!(parse_sim_threads("4096"), Ok(MAX_SIM_THREADS));
        for garbage in ["banana", "-1", "3.5", "0x4", ""] {
            if garbage.is_empty() {
                continue;
            }
            let err = parse_sim_threads(garbage).expect_err(garbage);
            assert!(err.contains("non-negative integer"), "{err}");
            assert!(err.contains(garbage), "error must echo the value: {err}");
        }
        let err = parse_sim_threads("1000000").expect_err("oversized");
        assert!(err.contains("ceiling"), "{err}");
    }

    #[test]
    fn phases_partition_elapsed_exactly() {
        // Every limiter regime: compute-bound, bandwidth-bound,
        // atomic-bound, launch-bound, plus the GEMM path — in each, the
        // four phases must sum to the kernel's elapsed cycles.
        let e = engine();
        let runs = [
            launch(
                &e,
                &Uniform {
                    blocks: 64,
                    warps: 4,
                    cycles: 50_000,
                    bytes: 64,
                },
            )
            .unwrap(),
            launch(
                &e,
                &Uniform {
                    blocks: 64,
                    warps: 1,
                    cycles: 1,
                    bytes: 1 << 20,
                },
            )
            .unwrap(),
            launch(
                &e,
                &HotAtomic {
                    blocks: 64,
                    per_block: 10_000,
                },
            )
            .unwrap(),
            launch(
                &e,
                &Uniform {
                    blocks: 1,
                    warps: 1,
                    cycles: 1,
                    bytes: 0,
                },
            )
            .unwrap(),
            gemm(&e, 512, 64, 128),
        ];
        for m in &runs {
            assert_eq!(
                m.phases.total_cycles(),
                m.elapsed_cycles,
                "{}: {:?} vs elapsed {}",
                m.name,
                m.phases,
                m.elapsed_cycles
            );
        }
        // And the dominant phase matches the limiter classification.
        assert!(runs[0].phases.compute_cycles > runs[0].phases.dram_cycles);
        assert!(runs[1].phases.dram_cycles > runs[1].phases.compute_cycles);
        assert!(runs[2].phases.atomic_cycles > 0);
        assert_eq!(runs[3].phases.launch_cycles, e.spec().kernel_launch_cycles);
    }

    #[test]
    fn traces_are_byte_identical_across_thread_counts() {
        let spec = GpuSpec::quadro_p6000();
        let trace_of = |threads: Option<usize>| {
            let tracer = std::sync::Arc::new(crate::trace::TraceRecorder::new());
            let b = Engine::builder(spec.clone()).tracer(std::sync::Arc::clone(&tracer));
            let b = match threads {
                Some(n) => b.sim_threads(n),
                None => b.sim_threads_auto(),
            };
            let e = b.build().unwrap();
            launch(&e, &Windowed { blocks: 320 }).unwrap();
            gemm(&e, 256, 32, 64);
            e.submit(&mut e.lock_context(), Workload::Transfer { bytes: 1 << 20 })
                .unwrap();
            (tracer.to_chrome_json(), tracer.flame_report())
        };
        let serial = trace_of(Some(1));
        assert!(serial.0.contains("\"traceEvents\""));
        for threads in [Some(2), Some(4), Some(8), None] {
            assert_eq!(trace_of(threads), serial, "threads {threads:?}");
        }
        // Run-to-run stability at a fixed thread count too.
        assert_eq!(trace_of(Some(4)), trace_of(Some(4)));
    }

    #[test]
    fn untraced_engine_records_nothing() {
        let e = engine();
        assert!(e.tracer().is_none());
        let m = launch(&e, &Windowed { blocks: 32 }).unwrap();
        // Tracing off must not change metrics vs a traced engine.
        let tracer = std::sync::Arc::new(crate::trace::TraceRecorder::new());
        let traced = Engine::builder(GpuSpec::quadro_p6000())
            .tracer(std::sync::Arc::clone(&tracer))
            .build()
            .unwrap();
        let mt = launch(&traced, &Windowed { blocks: 32 }).unwrap();
        assert_eq!(m, mt, "tracing must be observation-only");
        assert!(!tracer.is_empty());
    }

    #[test]
    fn context_reuse_is_transparent() {
        // Interleaving other kernels through the same shared context must
        // not leak state into a repeated launch.
        let e = engine();
        let k = Windowed { blocks: 200 };
        let first = launch(&e, &k).unwrap();
        launch(
            &e,
            &Uniform {
                blocks: 70,
                warps: 3,
                cycles: 123,
                bytes: 512,
            },
        )
        .unwrap();
        launch(
            &e,
            &HotAtomic {
                blocks: 60,
                per_block: 50,
            },
        )
        .unwrap();
        let again = launch(&e, &k).unwrap();
        assert_eq!(first, again);
        // A clone shares the context and still reproduces the result.
        assert_eq!(launch(&e.clone(), &k).unwrap(), first);
    }

    #[test]
    fn explicit_context_matches_engine_context() {
        let e = engine();
        let k = Windowed { blocks: 128 };
        let mut ctx = RunContext::new();
        let via_fresh = e
            .submit(&mut ctx, Workload::Kernel(&k))
            .unwrap()
            .into_kernel();
        let via_engine = launch(&e, &k).unwrap();
        assert_eq!(via_fresh, via_engine);
        // Reusing the explicit context is also transparent.
        assert_eq!(
            e.submit(&mut ctx, Workload::Kernel(&k))
                .unwrap()
                .into_kernel(),
            via_fresh
        );
    }

    #[test]
    fn more_work_takes_longer() {
        let e = engine();
        let small = launch(
            &e,
            &Uniform {
                blocks: 30,
                warps: 2,
                cycles: 1_000,
                bytes: 0,
            },
        )
        .unwrap();
        let big = launch(
            &e,
            &Uniform {
                blocks: 300,
                warps: 2,
                cycles: 1_000,
                bytes: 0,
            },
        )
        .unwrap();
        assert!(big.elapsed_cycles > small.elapsed_cycles);
    }

    #[test]
    fn blocks_spread_across_sms() {
        let e = engine();
        // 30 identical blocks on 30 SMs should take about one block's time.
        let one = launch(
            &e,
            &Uniform {
                blocks: 1,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            },
        )
        .unwrap();
        let thirty = launch(
            &e,
            &Uniform {
                blocks: 30,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            },
        )
        .unwrap();
        assert!(
            thirty.elapsed_cycles < one.elapsed_cycles * 2,
            "30 blocks must run concurrently: {} vs {}",
            thirty.elapsed_cycles,
            one.elapsed_cycles
        );
    }

    #[test]
    fn imbalance_lowers_sm_efficiency() {
        let e = engine();
        let balanced = launch(
            &e,
            &Uniform {
                blocks: 60,
                warps: 1,
                cycles: 10_000,
                bytes: 0,
            },
        )
        .unwrap();
        let skewed = launch(&e, &Imbalanced { blocks: 60 }).unwrap();
        assert!(
            skewed.sm_efficiency < balanced.sm_efficiency * 0.5,
            "skewed {} vs balanced {}",
            skewed.sm_efficiency,
            balanced.sm_efficiency
        );
    }

    #[test]
    fn atomic_hotspot_bounds_kernel() {
        let e = engine();
        let cold = launch(
            &e,
            &HotAtomic {
                blocks: 1,
                per_block: 10,
            },
        )
        .unwrap();
        let hot = launch(
            &e,
            &HotAtomic {
                blocks: 60,
                per_block: 1_000,
            },
        )
        .unwrap();
        assert_eq!(hot.atomic_ops, 60_000);
        assert!(hot.atomic_serialization_cycles > 0);
        // 60k serialized atomics must dominate elapsed time.
        assert!(hot.elapsed_cycles > cold.elapsed_cycles * 50);
        let floor = 60_000 * e.spec().atomic_serialize_cycles;
        assert!(
            hot.elapsed_cycles >= floor,
            "{} < {floor}",
            hot.elapsed_cycles
        );
    }

    #[test]
    fn bandwidth_bound_applies() {
        let e = engine();
        // 1 block streaming 100 MB with trivial compute: elapsed must be at
        // least bytes / device bandwidth.
        let k = Uniform {
            blocks: 256,
            warps: 4,
            cycles: 1,
            bytes: 400_000,
        };
        let m = launch(&e, &k).unwrap();
        let min_cycles = (m.dram_bytes() as f64 / e.spec().dram_bytes_per_cycle()) as u64;
        assert!(m.elapsed_cycles >= min_cycles);
        assert!(m.dram_read_bytes >= 256 * 4 * 400_000 - e.spec().line_bytes as u64 * 1024);
    }

    #[test]
    fn v100_beats_p6000_on_same_kernel() {
        let k = Uniform {
            blocks: 320,
            warps: 8,
            cycles: 2_000,
            bytes: 65_536,
        };
        let p = launch(&Engine::new(GpuSpec::quadro_p6000()), &k).unwrap();
        let v = launch(&Engine::new(GpuSpec::tesla_v100()), &k).unwrap();
        assert!(
            v.time_ms < p.time_ms,
            "V100 ({} ms) must outrun P6000 ({} ms)",
            v.time_ms,
            p.time_ms
        );
    }

    #[test]
    fn gemm_costs_scale_with_flops() {
        let e = engine();
        let small = gemm(&e, 1000, 16, 16);
        let big = gemm(&e, 1000, 256, 256);
        // 256x the FLOPs; launch overhead damps the ratio at this size.
        assert!(big.time_ms > small.time_ms * 4.0);
        assert!(small.sm_efficiency > 0.5);
    }

    #[test]
    fn empty_grid_rejected() {
        let e = engine();
        let k = Uniform {
            blocks: 0,
            warps: 1,
            cycles: 1,
            bytes: 0,
        };
        assert!(launch(&e, &k).is_err());
    }

    #[test]
    fn limiter_classification() {
        let e = engine();
        // Tiny kernel: launch-bound.
        let tiny = launch(
            &e,
            &Uniform {
                blocks: 1,
                warps: 1,
                cycles: 10,
                bytes: 0,
            },
        )
        .unwrap();
        assert_eq!(tiny.limiter, crate::metrics::Limiter::LaunchOverhead);
        // Pure compute: SM-time-bound.
        let compute = launch(
            &e,
            &Uniform {
                blocks: 600,
                warps: 8,
                cycles: 50_000,
                bytes: 0,
            },
        )
        .unwrap();
        assert_eq!(compute.limiter, crate::metrics::Limiter::SmTime);
        // Atomic hammer: atomic-hotspot-bound.
        let hot = launch(
            &e,
            &HotAtomic {
                blocks: 60,
                per_block: 5_000,
            },
        )
        .unwrap();
        assert_eq!(hot.limiter, crate::metrics::Limiter::AtomicHotspot);
    }

    #[test]
    fn faulted_submissions_return_typed_errors() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let plan = Arc::new(
            FaultPlan::new(FaultConfig {
                transfer_fail_prob: 1.0,
                seed: 3,
                ..FaultConfig::default()
            })
            .unwrap(),
        );
        let e = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(Arc::clone(&plan))
            .build()
            .unwrap();
        let mut ctx = RunContext::new();
        let err = e
            .submit(&mut ctx, Workload::Transfer { bytes: 1 << 20 })
            .unwrap_err();
        assert_eq!(
            err,
            GpuError::Fault {
                kind: FaultKind::TransferFailure,
                op: "transfer".into(),
            }
        );
        // Kernels sail through a transfer-only fault config.
        assert!(e
            .submit(
                &mut ctx,
                Workload::Gemm {
                    m: 256,
                    n: 32,
                    k: 64
                }
            )
            .is_ok());
        // The failed transfer still consumed an op index (burned time).
        assert_eq!(plan.op_count(), 2);
    }

    #[test]
    fn slowdown_stretches_metrics_and_keeps_phases_exact() {
        use crate::fault::{FaultConfig, FaultPlan};
        let spec = GpuSpec::quadro_p6000();
        let clean = launch(&Engine::new(spec.clone()), &Windowed { blocks: 96 }).unwrap();
        let plan = Arc::new(
            FaultPlan::new(FaultConfig {
                kernel_slow_prob: 1.0,
                kernel_slow_factor: 3.0,
                seed: 11,
                ..FaultConfig::default()
            })
            .unwrap(),
        );
        let e = Engine::builder(spec).fault_plan(plan).build().unwrap();
        let slow = launch(&e, &Windowed { blocks: 96 }).unwrap();
        assert_eq!(slow.elapsed_cycles, clean.elapsed_cycles * 3);
        assert_eq!(
            slow.phases.total_cycles(),
            slow.elapsed_cycles,
            "stretch must keep the phase partition exact"
        );
        assert!((slow.time_ms - clean.time_ms * 3.0).abs() < 1e-9);
        assert!((slow.sm_efficiency - clean.sm_efficiency / 3.0).abs() < 1e-12);
        // The slowdown changes only time attribution, not counted work.
        assert_eq!(slow.dram_read_bytes, clean.dram_read_bytes);
        assert_eq!(slow.l2_hits, clean.l2_hits);
        assert_eq!(slow.atomic_ops, clean.atomic_ops);
    }

    #[test]
    fn device_reset_kills_the_op_crossing_the_instant() {
        use crate::fault::{FaultConfig, FaultKind, FaultPlan};
        let e = Engine::new(GpuSpec::quadro_p6000());
        let mut ctx = RunContext::new();
        let one = e
            .submit(&mut ctx, Workload::Transfer { bytes: 8 << 20 })
            .unwrap()
            .time_ms();
        // Reset midway through the third transfer.
        let plan = Arc::new(
            FaultPlan::new(FaultConfig {
                device_reset_ms: Some(one * 2.5),
                ..FaultConfig::default()
            })
            .unwrap(),
        );
        let chaotic = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(plan)
            .build()
            .unwrap();
        for i in 0..2 {
            assert!(
                chaotic
                    .submit(&mut ctx, Workload::Transfer { bytes: 8 << 20 })
                    .is_ok(),
                "transfer {i} precedes the reset"
            );
        }
        let err = chaotic
            .submit(&mut ctx, Workload::Transfer { bytes: 8 << 20 })
            .unwrap_err();
        assert_eq!(
            err,
            GpuError::Fault {
                kind: FaultKind::DeviceReset,
                op: "transfer".into(),
            }
        );
        // The device recovers: the reset fires once.
        assert!(chaotic
            .submit(&mut ctx, Workload::Transfer { bytes: 8 << 20 })
            .is_ok());
    }

    #[test]
    fn fault_sequences_are_identical_across_thread_counts() {
        use crate::fault::{FaultConfig, FaultPlan};
        let spec = GpuSpec::quadro_p6000();
        let cfg = FaultConfig {
            transfer_fail_prob: 0.4,
            kernel_slow_prob: 0.3,
            kernel_slow_factor: 2.0,
            kernel_timeout_prob: 0.3,
            seed: 77,
            ..FaultConfig::default()
        };
        let outcomes_at = |threads: usize| {
            let e = Engine::builder(spec.clone())
                .sim_threads(threads)
                .fault_plan(Arc::new(FaultPlan::new(cfg.clone()).unwrap()))
                .build()
                .unwrap();
            let mut ctx = RunContext::new();
            let k = Windowed { blocks: 160 };
            (0..40)
                .map(|i| {
                    let workload = match i % 3 {
                        0 => Workload::Kernel(&k),
                        1 => Workload::Gemm {
                            m: 128,
                            n: 16,
                            k: 32,
                        },
                        _ => Workload::Transfer { bytes: 1 << 18 },
                    };
                    match e.submit(&mut ctx, workload) {
                        Ok(m) => format!("ok {:.6}", m.time_ms()),
                        Err(err) => format!("err {err}"),
                    }
                })
                .collect::<Vec<String>>()
        };
        let serial = outcomes_at(1);
        assert!(serial.iter().any(|o| o.starts_with("err")));
        assert!(serial.iter().any(|o| o.starts_with("ok")));
        assert_eq!(
            outcomes_at(4),
            serial,
            "fault sequence must not depend on workers"
        );
    }

    #[test]
    fn launch_overhead_floor() {
        let e = engine();
        let m = launch(
            &e,
            &Uniform {
                blocks: 1,
                warps: 1,
                cycles: 1,
                bytes: 0,
            },
        )
        .unwrap();
        assert!(m.elapsed_cycles >= e.spec().kernel_launch_cycles);
    }
}
