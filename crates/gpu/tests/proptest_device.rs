//! Property-based tests on the device core's admission invariant and the
//! block-level stream dispatcher's determinism.
//!
//! The command processor must never overcommit an SM — register-file
//! bytes, shared-memory bytes, warp slots, and block slots all stay
//! within the spec at every instant — and retirement must return every
//! resource an admission pinned, leaving the device idle once the last
//! block retires.

use proptest::collection::vec;
use proptest::prelude::*;

use gnnadvisor_gpu::{
    BlockDemand, BlockResources, CommandProcessor, Engine, GpuSpec, Retirement, RetirementQueue,
    StreamSim, Workload,
};

/// A randomly shaped launch: block resources plus a grid size.
#[derive(Debug, Clone)]
struct LaunchPlan {
    resources: BlockResources,
    blocks: u64,
    /// How long each admitted block stays resident.
    block_cycles: u64,
}

fn launch_plan() -> impl Strategy<Value = LaunchPlan> {
    const THREADS: [u32; 8] = [32, 64, 96, 128, 192, 256, 512, 1024];
    (
        16u32..=256,        // regs per thread
        0usize..=48 * 1024, // static shared memory
        0usize..THREADS.len(),
        1u64..=200, // grid blocks
        1u64..=50,  // residency cycles
    )
        .prop_map(|(regs, smem, threads, blocks, cycles)| LaunchPlan {
            resources: BlockResources {
                regs_per_thread: regs,
                smem_bytes: smem,
                threads: THREADS[threads],
            },
            blocks,
            block_cycles: cycles,
        })
}

/// Audits every SM of `cp` against the spec's per-SM limits.
fn assert_within_limits(cp: &CommandProcessor, spec: &GpuSpec) {
    for sm in 0..cp.num_sms() {
        let used = cp.usage(sm);
        assert!(used.regfile_bytes <= spec.regfile_bytes_per_sm as u64);
        assert!(used.smem_bytes <= spec.shared_mem_per_sm as u64);
        assert!(used.warp_slots <= spec.max_warps_per_sm());
        assert!(used.blocks <= spec.max_blocks_per_sm);
    }
}

proptest! {
    /// Drive random launches through admission and retirement on the
    /// simulated clock; at every instant the per-SM usage respects every
    /// limit, and once all blocks retire the device is idle again.
    #[test]
    fn admission_never_overcommits_and_retirement_returns_everything(
        plans in vec(launch_plan(), 1..8),
        p6000 in 0u8..2,
    ) {
        let spec = if p6000 == 0 { GpuSpec::quadro_p6000() } else { GpuSpec::tesla_v100() };
        // The scheduler rejects shapes that fit no SM before admission
        // ([`GpuSpec::occupancy_limit`] gates launches); mirror that here.
        let plans: Vec<_> = plans
            .into_iter()
            .filter(|p| spec.occupancy_limit(&p.resources).is_launchable())
            .collect();
        let mut cp = CommandProcessor::new(&spec);
        let mut rq = RetirementQueue::new();
        // Per launch: (demand, blocks still to admit).
        let mut pending: Vec<(BlockDemand, u64)> = plans
            .iter()
            .map(|p| (BlockDemand::of(&p.resources), p.blocks))
            .collect();
        let mut now = 0u64;
        loop {
            // Retire everything due, then audit.
            for Retirement { launch, sm, blocks, .. } in rq.pop_due(now) {
                cp.retire(sm, launch, &pending[launch].0, blocks);
            }
            assert_within_limits(&cp, &spec);
            // Admit as much as fits of every launch, in order.
            for (launch, plan) in plans.iter().enumerate() {
                let (demand, remaining) = pending[launch];
                if remaining == 0 {
                    continue;
                }
                let placed = cp.admit_up_to(launch, &demand, remaining);
                assert_within_limits(&cp, &spec);
                let total: u64 = placed.iter().map(|&(_, n)| n).sum();
                prop_assert!(total <= remaining);
                pending[launch].1 -= total;
                for (sm, blocks) in placed {
                    rq.push(Retirement {
                        at: now + plan.block_cycles,
                        launch,
                        sm,
                        blocks,
                    });
                }
            }
            match rq.next_at() {
                Some(at) => {
                    prop_assert!(at > now, "the clock must advance");
                    now = at;
                }
                None => break,
            }
        }
        prop_assert!(pending.iter().all(|&(_, n)| n == 0), "every block admitted");
        prop_assert!(cp.is_idle(), "retirement must return every resource");
    }

    /// The block-level dispatcher commits byte-identical schedules at any
    /// engine shard count: same spans, same occupancy, same makespan.
    #[test]
    fn dispatcher_schedule_is_identical_across_thread_counts(
        grids in vec((1usize..=80, 0u64..=5_000), 1..6),
        // 0 = no copy stream; otherwise that many bytes on a copy stream.
        copy_bytes in 0u64..=(64 << 20),
    ) {
        let copy_bytes = (copy_bytes > 0).then_some(copy_bytes);
        let run_at = |threads: usize| {
            let e = Engine::builder(GpuSpec::quadro_p6000())
                .sim_threads(threads)
                .build()
                .expect("valid thread count");
            let mut sim = StreamSim::new(&e);
            for &(blocks, release) in &grids {
                let s = sim.stream();
                sim.enqueue_at(s, Workload::Gemm { m: blocks * 64, n: 64, k: 256 }, release)
                    .expect("valid stream");
            }
            if let Some(bytes) = copy_bytes {
                let s = sim.stream();
                sim.enqueue(s, Workload::Transfer { bytes }).expect("valid stream");
            }
            sim.run().expect("no deadlock in straight-line work")
        };
        let baseline = run_at(1);
        for threads in [2, 4] {
            prop_assert_eq!(&run_at(threads), &baseline);
        }
    }
}
