//! Property-based tests on the GPU simulator's invariants.

use proptest::prelude::*;

use gnnadvisor_gpu::cache::SetAssocCache;
use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{
    ArrayId, BlockSink, Engine, GpuSpec, GridConfig, Kernel, KernelMetrics, TransferMetrics,
    Workload, WorkloadMetrics,
};

/// Submits a kernel launch through the engine's shared context.
fn launch(engine: &Engine, k: &dyn Kernel) -> gnnadvisor_gpu::Result<KernelMetrics> {
    engine
        .submit(&mut engine.lock_context(), Workload::Kernel(k))
        .map(WorkloadMetrics::into_kernel)
}

/// Submits a roofline GEMM through the engine's shared context.
fn gemm(engine: &Engine, m: usize, n: usize, k: usize) -> KernelMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Gemm { m, n, k })
        .expect("gemm workloads are infallible")
        .into_kernel()
}

/// Submits a transfer through the engine's shared context.
fn transfer(engine: &Engine, bytes: u64) -> TransferMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Transfer { bytes })
        .expect("transfer workloads are infallible")
        .into_transfer()
}

/// A kernel generated from a compact description: per block, a list of
/// warps; per warp, (compute cycles, read offset, read bytes, atomics).
#[derive(Debug, Clone)]
struct ScriptKernel {
    tpb: u32,
    blocks: Vec<Vec<(u64, u64, u64, u64)>>,
}

impl Kernel for ScriptKernel {
    fn name(&self) -> &str {
        "script"
    }
    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.blocks.len().max(1),
            threads_per_block: self.tpb,
            shared_mem_bytes: 0,
        }
    }
    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        for &(cycles, offset, bytes, atomics) in &self.blocks[block_id] {
            sink.begin_warp();
            sink.compute(cycles, WARP_SIZE);
            sink.global_read(ArrayId(0), offset, bytes);
            if atomics > 0 {
                sink.atomic_rmw(ArrayId(1), offset % 4096, 64, atomics);
            }
        }
    }
}

fn arb_kernel() -> impl Strategy<Value = ScriptKernel> {
    let warp = (0u64..500, 0u64..100_000, 0u64..2048, 0u64..20);
    let block = proptest::collection::vec(warp, 1..6);
    (
        proptest::collection::vec(block, 1..20),
        prop_oneof![Just(32u32), Just(128), Just(256)],
    )
        .prop_map(|(blocks, tpb)| ScriptKernel { tpb, blocks })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The simulator is deterministic: identical kernels produce identical
    /// metrics, on either device preset.
    #[test]
    fn engine_is_deterministic(k in arb_kernel()) {
        for spec in [GpuSpec::quadro_p6000(), GpuSpec::tesla_v100()] {
            let engine = Engine::new(spec);
            let a = launch(&engine, &k).expect("runs");
            let b = launch(&engine, &k).expect("runs");
            prop_assert_eq!(a, b);
        }
    }

    /// Conservation: hits + misses equals total line touches; DRAM read
    /// bytes equal misses times the line size; elapsed always covers the
    /// launch overhead; SM efficiency stays in [0, 1].
    #[test]
    fn metric_conservation(k in arb_kernel()) {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let m = launch(&engine, &k).expect("runs");
        let line = engine.spec().line_bytes as u64;
        prop_assert!(m.dram_read_bytes <= (m.l2_misses) * line);
        prop_assert!(m.elapsed_cycles >= engine.spec().kernel_launch_cycles);
        prop_assert!((0.0..=1.0).contains(&m.sm_efficiency));
        prop_assert!(m.time_ms > 0.0);
        prop_assert_eq!(m.num_blocks as usize, k.blocks.len().max(1));
    }

    /// Sharded and serial simulation agree: tiling any generated kernel
    /// past the sharding threshold (64+ blocks, so the parallel
    /// decomposition actually engages), the conserved quantities — DRAM
    /// bytes, atomic ops, block count — and indeed the full metrics are
    /// bit-identical between 1 worker and many.
    #[test]
    fn sharded_totals_match_serial(k in arb_kernel(), workers in 2usize..9) {
        let mut big = k;
        let tile = big.blocks.clone();
        while big.blocks.len() < 64 {
            big.blocks.extend(tile.iter().cloned());
        }
        let spec = GpuSpec::quadro_p6000();
        let serial_engine = Engine::builder(spec.clone())
            .sim_threads(1)
            .build()
            .expect("valid");
        let serial = launch(&serial_engine, &big).expect("runs");
        let sharded_engine = Engine::builder(spec)
            .sim_threads(workers)
            .build()
            .expect("valid");
        let sharded = launch(&sharded_engine, &big).expect("runs");
        prop_assert_eq!(serial.dram_read_bytes, sharded.dram_read_bytes);
        prop_assert_eq!(serial.dram_write_bytes, sharded.dram_write_bytes);
        prop_assert_eq!(serial.atomic_ops, sharded.atomic_ops);
        prop_assert_eq!(serial.num_blocks, sharded.num_blocks);
        prop_assert_eq!(serial, sharded, "full metrics must be bit-identical");
    }

    /// Monotonicity: appending a block never makes the kernel faster.
    #[test]
    fn more_blocks_never_faster(k in arb_kernel()) {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let base = launch(&engine, &k).expect("runs");
        let mut bigger = k.clone();
        let extra = bigger.blocks[0].clone();
        // Duplicate every block once: strictly more work on every SM.
        let blocks = bigger.blocks.clone();
        bigger.blocks.extend(blocks);
        bigger.blocks.push(extra);
        let m = launch(&engine, &bigger).expect("runs");
        prop_assert!(m.elapsed_cycles >= base.elapsed_cycles,
            "{} < {}", m.elapsed_cycles, base.elapsed_cycles);
    }

    /// Cache conservation under arbitrary access sequences.
    #[test]
    fn cache_counts_balance(accesses in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..300)) {
        let mut cache = SetAssocCache::new(64, 4, 128);
        let mut touched = 0u64;
        for (addr, bytes) in accesses {
            let (h, m) = cache.access_range(addr, bytes);
            let first = addr / 128;
            let last = (addr + bytes - 1) / 128;
            prop_assert_eq!(h + m, last - first + 1);
            touched += h + m;
        }
        prop_assert_eq!(cache.hits() + cache.misses(), touched);
        prop_assert!(cache.hit_rate() >= 0.0 && cache.hit_rate() <= 1.0);
    }

    /// Transfers price monotonically in bytes.
    #[test]
    fn transfer_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(transfer(&engine, lo).time_ms <= transfer(&engine, hi).time_ms);
    }

    /// GEMM cost grows (weakly) in every dimension.
    #[test]
    fn gemm_monotone(m in 1usize..2000, n in 1usize..256, kk in 1usize..256) {
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let base = gemm(&engine, m, n, kk).elapsed_cycles;
        prop_assert!(gemm(&engine, m * 2, n, kk).elapsed_cycles >= base);
        prop_assert!(gemm(&engine, m, n * 2, kk).elapsed_cycles >= base);
        prop_assert!(gemm(&engine, m, n, kk * 2).elapsed_cycles >= base);
    }
}
