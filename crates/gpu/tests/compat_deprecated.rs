//! Compatibility coverage for the deprecated `Engine` entry points.
//!
//! The `run`/`run_in`/`run_gemm`/`run_transfer` methods are one-line
//! wrappers over [`Engine::submit`] (the old `with_tracer`/
//! `with_sim_threads` setters are gone — [`Engine::builder`] replaced
//! them). This is the **only** place in the workspace that still calls
//! the wrappers: everything else speaks the new API, so a deprecation
//! warning anywhere outside this file is a regression (CI compiles with
//! `-D deprecated`).
#![allow(deprecated)]

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{
    ArrayId, BlockSink, Engine, GpuSpec, GridConfig, Kernel, RunContext, Workload,
};

/// A small deterministic probe kernel.
struct Probe;

impl Kernel for Probe {
    fn name(&self) -> &str {
        "probe"
    }
    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: 48,
            threads_per_block: 2 * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }
    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        sink.begin_warp();
        sink.compute(300, WARP_SIZE);
        sink.global_read(ArrayId(0), block_id as u64 * 256, 1024);
        sink.atomic_rmw(ArrayId(1), (block_id % 5) as u64 * 4, 4, 16);
    }
}

#[test]
fn deprecated_run_matches_submit() {
    let engine = Engine::new(GpuSpec::quadro_p6000());
    let via_shim = engine.run(&Probe).expect("runs");
    let via_submit = engine
        .submit(&mut engine.lock_context(), Workload::Kernel(&Probe))
        .expect("runs")
        .into_kernel();
    assert_eq!(via_shim, via_submit);
}

#[test]
fn deprecated_run_in_matches_submit() {
    let engine = Engine::new(GpuSpec::quadro_p6000());
    let mut ctx = RunContext::new();
    let via_shim = engine.run_in(&mut ctx, &Probe).expect("runs");
    let via_submit = engine
        .submit(&mut ctx, Workload::Kernel(&Probe))
        .expect("runs")
        .into_kernel();
    assert_eq!(via_shim, via_submit);
}

#[test]
fn deprecated_gemm_and_transfer_match_submit() {
    let engine = Engine::new(GpuSpec::quadro_p6000());
    let mut ctx = RunContext::new();
    assert_eq!(
        engine.run_gemm(512, 64, 128),
        engine
            .submit(
                &mut ctx,
                Workload::Gemm {
                    m: 512,
                    n: 64,
                    k: 128
                }
            )
            .expect("runs")
            .into_kernel()
    );
    assert_eq!(
        engine.run_transfer(1 << 22),
        engine
            .submit(&mut ctx, Workload::Transfer { bytes: 1 << 22 })
            .expect("runs")
            .into_transfer()
    );
}
