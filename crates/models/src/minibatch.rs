//! Pipelined sampling-based mini-batch training.
//!
//! Mini-batch GNN training is host-bound at small hidden dimensions: the
//! CPU samples neighborhoods, slices block CSRs, and gathers feature rows
//! while the GPU's per-batch work is a handful of tiny GEMMs and SpMMs.
//! The fix every production sampler applies is the same one this module
//! simulates: *pipeline* the host against the device — while the device
//! trains on batch `k`, the host prepares batch `k+1`, so the device's
//! H2D copy for batch `k` is released the instant the host finishes
//! preparing it and the two timelines overlap.
//!
//! [`train_minibatch`] runs both arms over identical batches:
//!
//! - **pipelined** — one [`StreamSim`] per epoch; batch `k`'s H2D is
//!   enqueued with a release time at the host's cumulative preparation
//!   instant (the host works ahead serially), followed by the batch's
//!   training kernels in FIFO order;
//! - **serialized** — the classic loop: sample, *then* copy and train,
//!   nothing overlaps. Its epoch time is `Σ (host_k + device_solo_k)`.
//!
//! Real numerics ride along: every batch is trained for real through
//! [`GcnTrainer::step_block`] (per-block normalization, transpose
//! backward), so the report carries true losses next to the simulated
//! timelines. Host time is priced by [`HostCostModel`] from the sampler's
//! own counters (scanned edges, block edges, gathered bytes).
//!
//! Everything is deterministic: sampling is seeded, pricing is
//! worker-count-invariant, and the stream scheduler is serial, so
//! [`MiniBatchReport::render`] is byte-identical at any
//! `GNNADVISOR_SIM_THREADS`.

use gnnadvisor_core::kernels::spmm_dgl::{SpmmKernel, StackingKernel};
use gnnadvisor_core::minibatch::HostCostModel;
use gnnadvisor_core::{CoreError, Result};
use gnnadvisor_gpu::stream::{StreamId, StreamSim};
use gnnadvisor_gpu::{Engine, Workload};
use gnnadvisor_graph::sample::{sample_epoch, SampleConfig, SampledBlock};
use gnnadvisor_tensor::Matrix;

use crate::train::GcnTrainer;

/// Bytes of one `f32` / one edge index.
const WORD: usize = 4;

/// Configuration of one mini-batch training run.
#[derive(Debug, Clone)]
pub struct MiniBatchConfig {
    /// Layer dimension chain, e.g. `[feat_dim, 16, num_classes]`.
    pub dims: Vec<usize>,
    /// SGD learning rate.
    pub lr: f32,
    /// Epochs to run (each epoch covers every node as a seed once).
    pub epochs: usize,
    /// Sampler configuration (batch size, fan-outs, strategy, seed).
    pub sample: SampleConfig,
    /// Host-side cost model for sampling / slicing / gathering.
    pub host: HostCostModel,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MiniBatchConfig {
    fn default() -> Self {
        Self {
            dims: vec![16, 16, 4],
            lr: 0.1,
            epochs: 3,
            sample: SampleConfig::default(),
            host: HostCostModel::default(),
            seed: 7,
        }
    }
}

impl MiniBatchConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.dims.len() < 2 {
            return Err(CoreError::InvalidParams {
                reason: "need at least input and output dims".into(),
            });
        }
        if self.dims.contains(&0) {
            return Err(CoreError::InvalidParams {
                reason: "layer dimensions must be positive".into(),
            });
        }
        if self.epochs == 0 {
            return Err(CoreError::InvalidParams {
                reason: "epochs must be positive".into(),
            });
        }
        if !(self.lr.is_finite() && self.lr >= 0.0) {
            return Err(CoreError::InvalidParams {
                reason: format!("learning rate {} must be finite and >= 0", self.lr),
            });
        }
        self.sample.validate().map_err(CoreError::from)
    }
}

/// One epoch's training and timeline outcome.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean per-batch training loss.
    pub loss: f64,
    /// Mean per-batch seed accuracy.
    pub accuracy: f64,
    /// Batches the epoch ran.
    pub num_batches: usize,
    /// Total host metadata time: sampling + CSR slicing + gathering.
    pub host_ms: f64,
    /// Total device time with each batch run alone (copies + kernels).
    pub device_ms: f64,
    /// Makespan of the pipelined schedule (host works one batch ahead).
    pub pipelined_ms: f64,
    /// Makespan of the serialized loop: `host_ms + device_ms`.
    pub serialized_ms: f64,
    /// Device-busy time overlapped with the host's working interval.
    pub overlap_ms: f64,
}

impl EpochStats {
    /// Fraction of the host's working interval hidden under device work.
    pub fn overlap_ratio(&self) -> f64 {
        if self.host_ms > 0.0 {
            self.overlap_ms / self.host_ms
        } else {
            0.0
        }
    }
}

/// The outcome of a [`train_minibatch`] run.
#[derive(Debug, Clone)]
pub struct MiniBatchReport {
    /// Per-epoch stats, in order.
    pub epochs: Vec<EpochStats>,
}

impl MiniBatchReport {
    /// Final (last-epoch) mean loss.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.loss)
    }

    /// Final (last-epoch) mean seed accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.accuracy)
    }

    /// Sum of pipelined epoch makespans.
    pub fn pipelined_ms(&self) -> f64 {
        self.epochs.iter().map(|e| e.pipelined_ms).sum()
    }

    /// Sum of serialized epoch makespans.
    pub fn serialized_ms(&self) -> f64 {
        self.epochs.iter().map(|e| e.serialized_ms).sum()
    }

    /// Fixed-precision textual report, one row per epoch — CI compares
    /// runs byte-for-byte, so every float is formatted explicitly.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "epoch batches loss accuracy host_ms device_ms pipelined_ms serialized_ms overlap\n",
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "{} {} {:.6} {:.4} {:.4} {:.4} {:.4} {:.4} {:.2}%\n",
                e.epoch,
                e.num_batches,
                e.loss,
                e.accuracy,
                e.host_ms,
                e.device_ms,
                e.pipelined_ms,
                e.serialized_ms,
                e.overlap_ratio() * 100.0,
            ));
        }
        out
    }
}

/// Enqueues one batch's device work on `stream`: the H2D copy (features +
/// block topology) released at `not_before_cycles`, then per-layer
/// forward GEMM + DGL-style aggregation (stacking + fused SpMM) and the
/// backward mirror (transpose aggregation + two GEMMs), matching what
/// [`GcnTrainer::step_block`] charges. Pricing happens at enqueue time,
/// so the kernels may be temporaries.
fn enqueue_batch(
    sim: &mut StreamSim<'_>,
    stream: StreamId,
    block: &SampledBlock,
    dims: &[usize],
    not_before_cycles: u64,
) -> Result<()> {
    let g = &block.block;
    let n = g.num_nodes();
    let feat_dim = dims[0];
    let h2d = (n * feat_dim * WORD + (n + 1 + g.num_edges()) * WORD) as u64;
    sim.enqueue_at(stream, Workload::Transfer { bytes: h2d }, not_before_cycles)
        .map_err(CoreError::from)?;
    let transposed = g.transpose();
    // Forward: update-then-aggregate per layer.
    for w in dims.windows(2) {
        let (in_dim, out_dim) = (w[0], w[1]);
        sim.enqueue(
            stream,
            Workload::Gemm {
                m: n,
                n: out_dim,
                k: in_dim,
            },
        )
        .map_err(CoreError::from)?;
        let stacking = StackingKernel::new(n, out_dim);
        sim.enqueue(stream, Workload::Kernel(&stacking))
            .map_err(CoreError::from)?;
        let spmm = SpmmKernel::new(g, out_dim);
        sim.enqueue(stream, Workload::Kernel(&spmm))
            .map_err(CoreError::from)?;
    }
    // Backward: transpose aggregation plus dW / dH GEMMs per layer.
    for (l, w) in dims.windows(2).enumerate().rev() {
        let (in_dim, out_dim) = (w[0], w[1]);
        let stacking = StackingKernel::new(n, out_dim);
        sim.enqueue(stream, Workload::Kernel(&stacking))
            .map_err(CoreError::from)?;
        let spmm = SpmmKernel::new(&transposed, out_dim);
        sim.enqueue(stream, Workload::Kernel(&spmm))
            .map_err(CoreError::from)?;
        sim.enqueue(
            stream,
            Workload::Gemm {
                m: in_dim,
                n: out_dim,
                k: n,
            },
        )
        .map_err(CoreError::from)?;
        if l > 0 {
            sim.enqueue(
                stream,
                Workload::Gemm {
                    m: n,
                    n: in_dim,
                    k: out_dim,
                },
            )
            .map_err(CoreError::from)?;
        }
    }
    Ok(())
}

/// Length of the union of `spans` clipped to `[0, horizon_ms]` — how much
/// device-busy time fell inside the host's working interval.
fn overlap_with_host(spans: &[(f64, f64)], horizon_ms: f64) -> f64 {
    let mut clipped: Vec<(f64, f64)> = spans
        .iter()
        .filter_map(|&(s, e)| {
            let (s, e) = (s.max(0.0), e.min(horizon_ms));
            (e > s).then_some((s, e))
        })
        .collect();
    clipped.sort_by(|a, b| a.partial_cmp(b).expect("finite span bounds"));
    let mut total = 0.0;
    let mut cursor = 0.0f64;
    for (s, e) in clipped {
        let s = s.max(cursor);
        if e > s {
            total += e - s;
            cursor = e;
        }
    }
    total
}

/// Trains a GCN with sampled mini-batches, reporting real losses and the
/// pipelined-vs-serialized simulated timelines per epoch.
///
/// `features` has one row per graph node; `labels` one class per node
/// (blocks gather their own slices). `cfg.dims[0]` must equal the
/// feature dimension.
pub fn train_minibatch(
    engine: &Engine,
    graph: &gnnadvisor_graph::Csr,
    features: &Matrix,
    labels: &[usize],
    cfg: &MiniBatchConfig,
) -> Result<MiniBatchReport> {
    cfg.validate()?;
    if features.rows() != graph.num_nodes() {
        return Err(CoreError::InvalidParams {
            reason: format!(
                "features have {} rows but the graph has {} nodes",
                features.rows(),
                graph.num_nodes()
            ),
        });
    }
    if features.cols() != cfg.dims[0] {
        return Err(CoreError::InvalidParams {
            reason: format!(
                "features have dim {} but dims[0] is {}",
                features.cols(),
                cfg.dims[0]
            ),
        });
    }
    if labels.len() != graph.num_nodes() {
        return Err(CoreError::InvalidParams {
            reason: format!(
                "expected {} labels, got {}",
                graph.num_nodes(),
                labels.len()
            ),
        });
    }

    let feat_dim = cfg.dims[0];
    let mut trainer = GcnTrainer::new(&cfg.dims, cfg.lr, cfg.seed);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let blocks = sample_epoch(graph, &cfg.sample, epoch as u64)?;
        let mut pipelined = StreamSim::new(engine);
        let stream = pipelined.stream();
        let mut host_end_ms = 0.0f64;
        let mut device_ms = 0.0f64;
        let mut loss = 0.0f64;
        let mut accuracy = 0.0f64;
        for block in &blocks {
            // Host prepares the batch: sample, slice, gather.
            let phases = cfg.host.charge(
                block.scanned_edges,
                block.block.num_edges(),
                block.gather_bytes(feat_dim),
            )?;
            host_end_ms += phases.total_ms();

            // Real training numerics (and the serial device charge).
            let bf = Matrix::from_fn(block.nodes.len(), feat_dim, |r, c| {
                features.get(block.nodes[r] as usize, c)
            });
            let bl: Vec<usize> = block.nodes[..block.num_seeds]
                .iter()
                .map(|&v| labels[v as usize])
                .collect();
            let step = trainer.step_block(engine, block, &bf, &bl)?;
            loss += step.loss;
            accuracy += step.accuracy;

            // Pipelined arm: the batch's H2D is released the instant the
            // host finishes preparing it; the device drains in FIFO order.
            let release = engine.spec().ms_to_cycles(host_end_ms);
            enqueue_batch(&mut pipelined, stream, block, &cfg.dims, release)?;

            // Serialized arm: the same batch alone on an idle device.
            let mut solo = StreamSim::new(engine);
            let solo_stream = solo.stream();
            enqueue_batch(&mut solo, solo_stream, block, &cfg.dims, 0)?;
            device_ms += solo.run().map_err(CoreError::from)?.makespan_ms;
        }
        let report = pipelined.run().map_err(CoreError::from)?;
        let spec = engine.spec();
        let spans: Vec<(f64, f64)> = report
            .spans
            .iter()
            .map(|s| {
                (
                    spec.cycles_to_ms(s.start_cycles),
                    spec.cycles_to_ms(s.end_cycles),
                )
            })
            .collect();
        let n_batches = blocks.len().max(1) as f64;
        epochs.push(EpochStats {
            epoch,
            loss: loss / n_batches,
            accuracy: accuracy / n_batches,
            num_batches: blocks.len(),
            host_ms: host_end_ms,
            device_ms,
            pipelined_ms: report.makespan_ms,
            serialized_ms: host_end_ms + device_ms,
            overlap_ms: overlap_with_host(&spans, host_end_ms),
        });
    }
    Ok(MiniBatchReport { epochs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_gpu::GpuSpec;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};
    use gnnadvisor_graph::Csr;

    fn task() -> (Csr, Matrix, Vec<usize>) {
        let params = CommunityParams {
            num_nodes: 400,
            num_edges: 5_000,
            mean_community: 60,
            community_size_cv: 0.2,
            inter_fraction: 0.05,
            shuffle_ids: true,
        };
        let (g, comm) = community_graph(&params, 41).expect("valid");
        let labels: Vec<usize> = comm.iter().map(|&c| c as usize % 4).collect();
        let features = Matrix::from_fn(g.num_nodes(), 16, |v, d| {
            let hot = labels[v] % 16;
            let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
            if d == hot {
                1.0 + noise
            } else {
                noise
            }
        });
        (g, features, labels)
    }

    fn config() -> MiniBatchConfig {
        MiniBatchConfig {
            dims: vec![16, 16, 4],
            lr: 0.4,
            epochs: 3,
            sample: SampleConfig {
                batch_size: 96,
                fanouts: vec![8, 4],
                ..SampleConfig::default()
            },
            ..MiniBatchConfig::default()
        }
    }

    #[test]
    fn pipelining_beats_the_serialized_loop() {
        let (g, features, labels) = task();
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = train_minibatch(&engine, &g, &features, &labels, &config()).expect("trains");
        assert_eq!(report.epochs.len(), 3);
        for e in &report.epochs {
            assert!(e.num_batches > 1, "epoch must be mini-batched");
            assert!(
                e.pipelined_ms < e.serialized_ms,
                "epoch {}: pipelined {} must beat serialized {}",
                e.epoch,
                e.pipelined_ms,
                e.serialized_ms
            );
            assert!(e.overlap_ms > 0.0, "host and device must overlap");
            let r = e.overlap_ratio();
            assert!((0.0..=1.0).contains(&r), "overlap ratio {r} out of range");
            // The pipelined makespan is at least each arm alone.
            assert!(e.pipelined_ms >= e.host_ms.max(e.device_ms) - 1e-9);
        }
    }

    #[test]
    fn host_metadata_dominates_at_small_hidden_dims() {
        // The paper-motivating regime: at hidden dim 16 the device's
        // per-batch work is tiny and the sampling pipeline is host-bound.
        let (g, features, labels) = task();
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let report = train_minibatch(&engine, &g, &features, &labels, &config()).expect("trains");
        for e in &report.epochs {
            assert!(
                e.host_ms > e.device_ms,
                "epoch {}: host {} must dominate device {} at hidden 16",
                e.epoch,
                e.host_ms,
                e.device_ms
            );
        }
    }

    #[test]
    fn training_learns_while_the_pipeline_runs() {
        let (g, features, labels) = task();
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let mut cfg = config();
        cfg.epochs = 8;
        let report = train_minibatch(&engine, &g, &features, &labels, &cfg).expect("trains");
        let first = report.epochs[0].loss;
        let last = report.final_loss();
        assert!(last < first * 0.8, "loss must drop: {first} -> {last}");
        assert!(report.final_accuracy() > 0.5);
    }

    #[test]
    fn report_is_byte_identical_across_sim_thread_counts() {
        let (g, features, labels) = task();
        let cfg = config();
        let render_at = |threads: usize| {
            let engine = Engine::builder(GpuSpec::quadro_p6000())
                .sim_threads(threads)
                .build()
                .expect("builds");
            train_minibatch(&engine, &g, &features, &labels, &cfg)
                .expect("trains")
                .render()
        };
        let serial = render_at(1);
        assert_eq!(render_at(4), serial, "sim-thread count must not leak");
        assert!(serial.contains("overlap"), "{serial}");
    }

    #[test]
    fn rejects_invalid_configs_and_shapes() {
        let (g, features, labels) = task();
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let mut cfg = config();
        cfg.epochs = 0;
        assert!(train_minibatch(&engine, &g, &features, &labels, &cfg).is_err());
        let mut cfg = config();
        cfg.dims = vec![16];
        assert!(train_minibatch(&engine, &g, &features, &labels, &cfg).is_err());
        // Feature dim must match dims[0].
        let cfg = config();
        let wrong = Matrix::zeros(g.num_nodes(), 8);
        assert!(train_minibatch(&engine, &g, &wrong, &labels, &cfg).is_err());
        // One label per node.
        assert!(train_minibatch(
            &engine,
            &g,
            &features,
            labels[1..].to_vec().as_slice(),
            &cfg
        )
        .is_err());
    }
}
