//! Mini-batch execution over batched Type II datasets.
//!
//! Type II inputs (Section 8.1.2) are unions of many small independent
//! graphs "generally used for batched training or inference". Section 8.3
//! compares against PyG on these because PyG's Mini-batch Handling is its
//! strong suit. This module provides the same capability for the
//! reproduction: split a block-diagonal dataset into batches of component
//! graphs, run a model per batch, and aggregate outputs and metrics.
//!
//! Because components occupy contiguous id ranges with no cross edges,
//! batch extraction is a cheap CSR slice + index shift.

use gnnadvisor_core::Result;
use gnnadvisor_gpu::RunMetrics;
use gnnadvisor_graph::{Csr, NodeId};
use gnnadvisor_tensor::Matrix;

/// One extracted batch: a self-contained graph over `node_range` of the
/// parent dataset.
#[derive(Debug, Clone)]
pub struct Batch {
    /// The batch's standalone graph (ids rebased to `0..len`).
    pub graph: Csr,
    /// The parent-node range `[start, end)` this batch covers.
    pub node_range: (usize, usize),
}

/// Splits a block-diagonal graph into batches of at most `max_nodes`
/// nodes, never splitting a component. `component_of` must be
/// non-decreasing over node ids (the batched generator guarantees it).
///
/// # Panics
///
/// Panics if `component_of.len() != graph.num_nodes()` or a component
/// exceeds `max_nodes`.
pub fn split_batches(graph: &Csr, component_of: &[u32], max_nodes: usize) -> Vec<Batch> {
    assert_eq!(
        component_of.len(),
        graph.num_nodes(),
        "one component id per node"
    );
    let n = graph.num_nodes();
    let mut batches = Vec::new();
    let mut start = 0usize;
    while start < n {
        // Extend to as many whole components as fit.
        let mut end = start;
        while end < n {
            // End of the component containing `end`.
            let c = component_of[end];
            let mut comp_end = end;
            while comp_end < n && component_of[comp_end] == c {
                comp_end += 1;
            }
            assert!(
                comp_end - end <= max_nodes,
                "component of {} nodes exceeds the {max_nodes}-node batch budget",
                comp_end - end
            );
            if comp_end - start > max_nodes && end > start {
                break;
            }
            end = comp_end;
        }
        batches.push(slice_range(graph, start, end));
        start = end;
    }
    batches
}

/// Rebases the contiguous node slice `[start, end)` into a standalone
/// CSR batch (valid only when no edge crosses the slice boundary).
fn slice_range(graph: &Csr, start: usize, end: usize) -> Batch {
    let row_ptr_parent = graph.row_ptr();
    let base_edge = row_ptr_parent[start];
    let row_ptr: Vec<usize> = row_ptr_parent[start..=end]
        .iter()
        .map(|&e| e - base_edge)
        .collect();
    let col_idx: Vec<NodeId> = graph.col_idx()[base_edge..row_ptr_parent[end]]
        .iter()
        .map(|&u| {
            debug_assert!((start..end).contains(&(u as usize)), "cross-batch edge");
            u - start as NodeId
        })
        .collect();
    let g = Csr::from_raw(end - start, row_ptr, col_idx).expect("slice preserves invariants");
    Batch {
        graph: g,
        node_range: (start, end),
    }
}

/// Splits a block-diagonal graph into one batch **per component** — the
/// finest split [`split_batches`] can produce. The serving layer uses
/// this to look up each request's input graph by component id.
///
/// # Panics
///
/// Panics if `component_of.len() != graph.num_nodes()`.
pub fn component_batches(graph: &Csr, component_of: &[u32]) -> Vec<Batch> {
    assert_eq!(
        component_of.len(),
        graph.num_nodes(),
        "one component id per node"
    );
    let n = graph.num_nodes();
    let mut batches = Vec::new();
    let mut start = 0usize;
    while start < n {
        let c = component_of[start];
        let mut end = start;
        while end < n && component_of[end] == c {
            end += 1;
        }
        batches.push(slice_range(graph, start, end));
        start = end;
    }
    batches
}

/// Stitches independent graphs into one block-diagonal CSR (the inverse
/// of splitting): node ids of graph *i* shift by the total size of
/// graphs `0..i`. The dynamic batcher coalesces the graphs of one
/// serving batch this way before pricing a single forward pass.
pub fn concat_block_diagonal<'a>(graphs: impl IntoIterator<Item = &'a Csr>) -> Csr {
    let mut row_ptr = vec![0usize];
    let mut col_idx: Vec<NodeId> = Vec::new();
    let mut node_base = 0usize;
    let mut edge_base = 0usize;
    for g in graphs {
        row_ptr.extend(g.row_ptr()[1..].iter().map(|&e| e + edge_base));
        col_idx.extend(g.col_idx().iter().map(|&u| u + node_base as NodeId));
        node_base += g.num_nodes();
        edge_base += g.num_edges();
    }
    Csr::from_raw(node_base, row_ptr, col_idx).expect("offset blocks preserve invariants")
}

/// Runs `forward` per batch and stitches outputs back into parent-node
/// order, merging the simulated metrics.
pub fn run_batched(
    batches: &[Batch],
    features: &Matrix,
    out_dim: usize,
    mut forward: impl FnMut(&Csr, &Matrix) -> Result<(Matrix, RunMetrics)>,
) -> Result<(Matrix, RunMetrics)> {
    let total_nodes = batches.last().map_or(0, |b| b.node_range.1);
    let mut output = Matrix::zeros(total_nodes, out_dim);
    let mut metrics = RunMetrics::default();
    for batch in batches {
        let (s, e) = batch.node_range;
        let local = Matrix::from_fn(e - s, features.cols(), |r, c| features.get(s + r, c));
        let (out, m) = forward(&batch.graph, &local)?;
        assert_eq!(out.shape(), (e - s, out_dim), "per-batch output shape");
        for v in s..e {
            output.row_mut(v).copy_from_slice(out.row(v - s));
        }
        metrics.merge(m);
    }
    Ok((output, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ModelExec;
    use crate::gcn::Gcn;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{batched_graph, BatchedParams};
    use gnnadvisor_tensor::init::random_features;

    fn dataset() -> (Csr, Vec<u32>) {
        let params = BatchedParams {
            num_nodes: 2_000,
            num_edges: 8_000,
            mean_graph_size: 40,
            graph_size_cv: 0.4,
        };
        batched_graph(&params, 31).expect("valid")
    }

    #[test]
    fn batches_cover_components_exactly() {
        let (g, comp) = dataset();
        let batches = split_batches(&g, &comp, 300);
        assert!(batches.len() > 1);
        let mut covered = 0usize;
        let mut edges = 0usize;
        for b in &batches {
            assert_eq!(b.node_range.0, covered);
            assert!(b.graph.num_nodes() <= 300);
            assert!(b.graph.is_symmetric());
            covered = b.node_range.1;
            edges += b.graph.num_edges();
        }
        assert_eq!(covered, g.num_nodes());
        assert_eq!(edges, g.num_edges(), "no cross-batch edges exist to lose");
    }

    #[test]
    fn batched_forward_matches_whole_graph() {
        let (g, comp) = dataset();
        let feat_dim = 12;
        let classes = 3;
        let features = random_features(g.num_nodes(), feat_dim, 9);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let model = Gcn::paper_default(feat_dim, classes, 4);

        // Whole-graph reference.
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let whole = model.forward(&exec, &features).expect("runs");

        // Batched execution: block-diagonal structure means per-batch
        // results must agree exactly with the whole-graph run.
        let batches = split_batches(&g, &comp, 250);
        let (out, metrics) = run_batched(&batches, &features, classes, |bg, bf| {
            let exec = ModelExec::new(&engine, bg, Framework::Dgl, None);
            let r = model.forward(&exec, bf)?;
            Ok((r.output, r.metrics))
        })
        .expect("runs");
        assert!(out.max_abs_diff(&whole.output) < 1e-4);
        assert!(metrics.total_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch budget")]
    fn oversized_component_rejected() {
        let (g, comp) = dataset();
        split_batches(&g, &comp, 3);
    }

    #[test]
    #[should_panic(expected = "batch budget")]
    fn max_nodes_below_any_single_component_rejected() {
        // A budget of one node is smaller than every component in the
        // dataset, so even the very first component cannot fit.
        let (g, comp) = dataset();
        split_batches(&g, &comp, 1);
    }

    #[test]
    fn empty_graph_yields_no_batches() {
        let g = Csr::from_raw(0, vec![0], vec![]).expect("valid");
        assert!(split_batches(&g, &[], 10).is_empty());
        assert!(component_batches(&g, &[]).is_empty());
        let none: [&Csr; 0] = [];
        let rejoined = concat_block_diagonal(none);
        assert_eq!(rejoined.num_nodes(), 0);
        assert_eq!(rejoined.num_edges(), 0);
    }

    #[test]
    fn all_one_component_is_a_single_batch() {
        // A path graph: one component spanning every node.
        let n = 64usize;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        for v in 0..n {
            if v > 0 {
                col_idx.push((v - 1) as u32);
            }
            if v + 1 < n {
                col_idx.push((v + 1) as u32);
            }
            row_ptr.push(col_idx.len());
        }
        let g = Csr::from_raw(n, row_ptr, col_idx).expect("valid");
        let comp = vec![0u32; n];
        let batches = split_batches(&g, &comp, n);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].node_range, (0, n));
        assert_eq!(batches[0].graph.num_edges(), g.num_edges());
        assert_eq!(component_batches(&g, &comp).len(), 1);
    }

    #[test]
    fn component_split_round_trips_through_concat() {
        let (g, comp) = dataset();
        let parts = component_batches(&g, &comp);
        assert!(parts.len() > 1);
        for b in &parts {
            let (s, e) = b.node_range;
            assert_eq!(b.graph.num_nodes(), e - s);
        }
        let rejoined = concat_block_diagonal(parts.iter().map(|b| &b.graph));
        assert_eq!(rejoined.num_nodes(), g.num_nodes());
        assert_eq!(rejoined.row_ptr(), g.row_ptr());
        assert_eq!(rejoined.col_idx(), g.col_idx());
    }
}
