//! Graph Isomorphism Network (Xu et al.), the paper's second benchmark
//! model: 5 layers, hidden dimension 64.
//!
//! Layer `k`: `H' = MLP( (1 + eps) * H + sum_{u in N(v)} H_u )`. The sum
//! *must* run at the current (full) dimensionality before the MLP reduces
//! it — the aggregate-then-update order of Section 4.2 that makes GIN far
//! more memory-hungry than GCN in its first layer and drives the paper's
//! GCN/GIN speedup asymmetry on Type I graphs.

use gnnadvisor_core::compute::Aggregation;
use gnnadvisor_core::Result;
use gnnadvisor_gpu::RunMetrics;
use gnnadvisor_tensor::ops::{axpy_inplace, relu_inplace};
use gnnadvisor_tensor::{Matrix, Mlp};

use crate::exec::{ForwardResult, ModelExec};

/// The paper's default GIN hidden dimension.
pub const GIN_HIDDEN: usize = 64;
/// The paper's default GIN depth ("GCN:2 vs. GIN:5", Section 8.7).
pub const GIN_LAYERS: usize = 5;

/// A GIN with configurable depth, hidden width, and epsilon.
pub struct Gin {
    mlps: Vec<Mlp>,
    eps: f32,
}

impl Gin {
    /// Builds the paper's 5-layer, hidden-64 GIN with `eps = 0`.
    pub fn paper_default(feat_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self::new(feat_dim, GIN_HIDDEN, num_classes, GIN_LAYERS, 0.0, seed)
    }

    /// Builds a GIN: each layer aggregates then applies a 2-layer MLP.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        feat_dim: usize,
        hidden: usize,
        num_classes: usize,
        num_layers: usize,
        eps: f32,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "a GIN needs at least one layer");
        let mut mlps = Vec::with_capacity(num_layers);
        let mut in_dim = feat_dim;
        for l in 0..num_layers {
            let out_dim = if l + 1 == num_layers {
                num_classes
            } else {
                hidden
            };
            mlps.push(Mlp::new(
                &[in_dim, hidden, out_dim],
                seed.wrapping_add(l as u64 * 7),
            ));
            in_dim = out_dim;
        }
        Self { mlps, eps }
    }

    /// Number of GIN layers.
    pub fn num_layers(&self) -> usize {
        self.mlps.len()
    }

    /// Full forward pass: real embeddings + simulated metrics.
    pub fn forward(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<ForwardResult> {
        let mut metrics = RunMetrics::default();
        let mut h = features.clone();
        let n = h.rows();
        for (l, mlp) in self.mlps.iter().enumerate() {
            // Aggregate first, at the current (possibly full) dimension.
            let mut agg = exec.aggregate(&h, Aggregation::Sum, &mut metrics)?;
            // (1 + eps) self term.
            axpy_inplace(&mut agg, 1.0 + self.eps, &h);
            // MLP update: two GEMMs.
            exec.update_cost(
                n,
                mlp.in_dim(),
                GIN_HIDDEN.min(mlp.in_dim().max(1)),
                &mut metrics,
            );
            exec.update_cost(
                n,
                GIN_HIDDEN.min(mlp.in_dim().max(1)),
                mlp.out_dim(),
                &mut metrics,
            );
            let mut out = mlp.forward(&agg)?;
            if l + 1 < self.mlps.len() {
                relu_inplace(&mut out);
            }
            h = out;
        }
        Ok(ForwardResult { output: h, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn forward_shapes() {
        let g = barabasi_albert(120, 3, 2).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let model = Gin::paper_default(50, 121, 0);
        let f = random_features(120, 50, 4);
        let r = model.forward(&exec, &f).expect("runs");
        assert_eq!(r.output.shape(), (120, 121));
        assert_eq!(model.num_layers(), 5);
    }

    #[test]
    fn first_layer_aggregates_at_full_dim() {
        let g = barabasi_albert(150, 4, 3).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Pyg, None);
        let feat_dim = 700;
        let model = Gin::paper_default(feat_dim, 2, 0);
        let f = random_features(150, feat_dim, 5);
        let r = model.forward(&exec, &f).expect("runs");
        let first_gather = r
            .metrics
            .kernels
            .iter()
            .find(|k| k.name == "pyg_gather")
            .expect("present");
        // The first gather must move E x 700 floats — GIN cannot reduce
        // before aggregation.
        let expected = g.num_edges() as u64 * feat_dim as u64 * 4;
        assert!(
            first_gather.dram_write_bytes >= expected / 2,
            "{} vs expected ~{expected}",
            first_gather.dram_write_bytes
        );
    }

    #[test]
    fn eps_changes_output() {
        let g = barabasi_albert(80, 3, 1).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let f = random_features(80, 16, 6);
        let a = Gin::new(16, 32, 4, 2, 0.0, 3)
            .forward(&exec, &f)
            .expect("runs");
        let b = Gin::new(16, 32, 4, 2, 0.5, 3)
            .forward(&exec, &f)
            .expect("runs");
        assert!(a.output.max_abs_diff(&b.output) > 1e-6, "eps must matter");
    }

    #[test]
    fn gin_costs_more_than_gcn_on_high_dim_input() {
        use crate::gcn::Gcn;
        let g = barabasi_albert(200, 4, 8).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let feat_dim = 512;
        let f = random_features(200, feat_dim, 7);
        let gcn = Gcn::paper_default(feat_dim, 8, 0)
            .forward(&exec, &f)
            .expect("runs");
        let gin = Gin::paper_default(feat_dim, 8, 0)
            .forward(&exec, &f)
            .expect("runs");
        assert!(
            gin.metrics.compute_ms > gcn.metrics.compute_ms,
            "full-dim aggregation plus 5 layers must cost more: {} vs {}",
            gin.metrics.compute_ms,
            gcn.metrics.compute_ms
        );
    }
}
