//! GraphSage (Hamilton et al.), the model of the GunRock comparison.
//!
//! Section 8.5: "GraphSage is the only GNN implementation officially
//! released by GunRock, and it is essentially a 2-layer GCN except for an
//! additional neighbor sampling, which has been disabled for a fair
//! comparison." We implement the mean-aggregator variant:
//! `H' = ReLU( W · [H_v || mean(H_u)] )`, without sampling.

use gnnadvisor_core::compute::Aggregation;
use gnnadvisor_core::Result;
use gnnadvisor_gpu::RunMetrics;
use gnnadvisor_tensor::ops::{hconcat, relu_inplace};
use gnnadvisor_tensor::{Linear, Matrix};

use crate::exec::{ForwardResult, ModelExec};

/// The default GraphSage hidden dimension (matching GCN's 16 for the
/// 2-layer-GCN equivalence of Section 8.5).
pub const SAGE_HIDDEN: usize = 16;
/// GraphSage depth in the GunRock release.
pub const SAGE_LAYERS: usize = 2;

/// A 2-layer mean-aggregator GraphSage without sampling.
pub struct GraphSage {
    layers: Vec<Linear>,
}

impl GraphSage {
    /// Builds the Section 8.5 configuration.
    pub fn paper_default(feat_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self::new(feat_dim, SAGE_HIDDEN, num_classes, SAGE_LAYERS, seed)
    }

    /// Builds a GraphSage with the given shape. Each layer's weight takes
    /// the concatenated `[self || neighbor-mean]` input (2x width).
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        feat_dim: usize,
        hidden: usize,
        num_classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "GraphSage needs at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut in_dim = feat_dim;
        for l in 0..num_layers {
            let out_dim = if l + 1 == num_layers {
                num_classes
            } else {
                hidden
            };
            layers.push(Linear::new(
                2 * in_dim,
                out_dim,
                seed.wrapping_add(l as u64 * 13),
            ));
            in_dim = out_dim;
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Full forward pass: real embeddings + simulated metrics.
    pub fn forward(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<ForwardResult> {
        let mut metrics = RunMetrics::default();
        let mut h = features.clone();
        let n = h.rows();
        for (l, layer) in self.layers.iter().enumerate() {
            // Mean-aggregate neighbors at the current dimension.
            let neigh = exec.aggregate(&h, Aggregation::Mean, &mut metrics)?;
            // `?` propagates a shape mismatch as CoreError::Tensor instead
            // of aborting the serving process.
            let cat = hconcat(&h, &neigh).map_err(gnnadvisor_core::CoreError::from)?;
            exec.update_cost(n, layer.in_dim(), layer.out_dim(), &mut metrics);
            let mut out = layer.forward(&cat)?;
            if l + 1 < self.layers.len() {
                relu_inplace(&mut out);
            }
            h = out;
        }
        Ok(ForwardResult { output: h, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn forward_shapes() {
        let g = barabasi_albert(100, 3, 11).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Gunrock, None);
        let model = GraphSage::paper_default(100, 12, 0);
        let f = random_features(100, 100, 8);
        let r = model.forward(&exec, &f).expect("runs");
        assert_eq!(r.output.shape(), (100, 12));
        assert_eq!(model.num_layers(), 2);
        assert!(r.metrics.total_ms() > 0.0);
    }

    #[test]
    fn shape_mismatch_surfaces_as_a_typed_error() {
        // The serving path hands models externally shaped features; a
        // mismatch must come back as CoreError::Tensor, not a panic.
        let g = barabasi_albert(50, 3, 1).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let model = GraphSage::paper_default(8, 4, 0);
        let wrong_rows = random_features(49, 8, 2);
        let err = model.forward(&exec, &wrong_rows).expect_err("mismatch");
        assert!(
            matches!(err, gnnadvisor_core::CoreError::Tensor(_)),
            "{err:?}"
        );
    }

    #[test]
    fn sampling_disabled_means_full_neighborhoods() {
        // Every edge's feature row must be touched: the aggregation kernel
        // reads at least E/8 cache lines (row >= 1 line at dim 32).
        let g = barabasi_albert(200, 5, 12).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let f = random_features(200, 32, 9);
        let r = GraphSage::paper_default(32, 4, 0)
            .forward(&exec, &f)
            .expect("runs");
        let touches: u64 = r
            .metrics
            .kernels
            .iter()
            .map(|k| k.l2_hits + k.l2_misses)
            .sum();
        assert!(touches > g.num_edges() as u64);
    }
}
