//! Graph Convolutional Network (Kipf & Welling), the paper's first
//! benchmark model: 2 layers, hidden dimension 16.
//!
//! Layer `k`: `H' = ReLU( Â (H W) )` with the renormalized adjacency
//! `Â = D^-1/2 (A + I) D^-1/2`. The dense update runs *before* aggregation
//! ("node dimension reduction before the neighbor aggregation", Section
//! 4.2), so aggregation operates at the small hidden dimension — the
//! property that lets GNNAdvisor's locality optimizations shine on GCN.

use gnnadvisor_core::compute::Aggregation;
use gnnadvisor_core::Result;
use gnnadvisor_gpu::RunMetrics;
use gnnadvisor_tensor::ops::relu_inplace;
use gnnadvisor_tensor::{Linear, Matrix};

use crate::exec::{ForwardResult, ModelExec};

/// The paper's default GCN hidden dimension.
pub const GCN_HIDDEN: usize = 16;
/// The paper's default GCN depth.
pub const GCN_LAYERS: usize = 2;

/// A GCN with configurable depth and hidden width.
pub struct Gcn {
    layers: Vec<Linear>,
}

impl Gcn {
    /// Builds the paper's 2-layer, hidden-16 GCN.
    pub fn paper_default(feat_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self::new(feat_dim, GCN_HIDDEN, num_classes, GCN_LAYERS, seed)
    }

    /// Builds a GCN: `feat_dim -> hidden -> ... -> num_classes` over
    /// `num_layers` graph convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        feat_dim: usize,
        hidden: usize,
        num_classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "a GCN needs at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut in_dim = feat_dim;
        for l in 0..num_layers {
            let out_dim = if l + 1 == num_layers {
                num_classes
            } else {
                hidden
            };
            layers.push(Linear::new(in_dim, out_dim, seed.wrapping_add(l as u64)));
            in_dim = out_dim;
        }
        Self { layers }
    }

    /// Number of graph-convolution layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Full forward pass: real embeddings + simulated metrics.
    ///
    /// `A_hat (H W) == (A_hat H) W`, so the reduce-before-aggregate
    /// ordering is purely a performance optimization — frameworks that lack
    /// it (Section 8.3) compute identical numbers but pay for aggregation
    /// at the full input dimensionality.
    pub fn forward(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<ForwardResult> {
        let mut metrics = RunMetrics::default();
        let mut h = features.clone();
        let n = h.rows();
        let reduce_first = exec.framework().reduces_before_aggregation();
        for (l, layer) in self.layers.iter().enumerate() {
            let mut agg = if reduce_first {
                // Update first: dimension reduction before aggregation.
                exec.update_cost(n, layer.in_dim(), layer.out_dim(), &mut metrics);
                let reduced = layer.forward(&h)?;
                exec.aggregate(&reduced, Aggregation::GcnNorm, &mut metrics)?
            } else {
                // Aggregate at the full input dimensionality, then update.
                let gathered = exec.aggregate(&h, Aggregation::GcnNorm, &mut metrics)?;
                exec.update_cost(n, layer.in_dim(), layer.out_dim(), &mut metrics);
                layer.forward(&gathered)?
            };
            if l + 1 < self.layers.len() {
                relu_inplace(&mut agg);
            }
            h = agg;
        }
        Ok(ForwardResult { output: h, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn forward_shapes_and_metric_counts() {
        let g = barabasi_albert(150, 3, 4).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let model = Gcn::paper_default(32, 7, 0);
        let f = random_features(150, 32, 3);
        let r = model.forward(&exec, &f).expect("runs");
        assert_eq!(r.output.shape(), (150, 7));
        // 2 layers x (1 gemm + 2 DGL kernels) = 6 kernels.
        assert_eq!(r.metrics.kernels.len(), 6);
        assert!(r.metrics.total_ms() > 0.0);
    }

    #[test]
    fn reduce_first_shrinks_aggregation_traffic() {
        // With feat 512 and hidden 16, a reduce-first framework (DGL-like)
        // aggregates at dim 16 while PyG aggregates at the full 512 — the
        // Section 8.3 mechanism. Numerics are identical (linearity).
        let g = barabasi_albert(200, 4, 5).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let model = Gcn::paper_default(512, 7, 0);
        let f = random_features(200, 512, 1);

        let dgl = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let pyg = ModelExec::new(&engine, &g, Framework::Pyg, None);
        let r_dgl = model.forward(&dgl, &f).expect("runs");
        let r_pyg = model.forward(&pyg, &f).expect("runs");
        assert!(r_dgl.output.max_abs_diff(&r_pyg.output) < 1e-3);

        let agg_bytes = |r: &crate::exec::ForwardResult| -> u64 {
            r.metrics
                .kernels
                .iter()
                .filter(|k| !k.name.starts_with("gemm"))
                .map(|k| k.dram_bytes())
                .sum()
        };
        assert!(
            agg_bytes(&r_dgl) * 4 < agg_bytes(&r_pyg),
            "full-dim aggregation must move far more data: {} vs {}",
            agg_bytes(&r_dgl),
            agg_bytes(&r_pyg)
        );
    }

    #[test]
    fn deterministic_outputs() {
        let g = barabasi_albert(100, 3, 6).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let f = random_features(100, 16, 2);
        let a = Gcn::paper_default(16, 4, 9)
            .forward(&exec, &f)
            .expect("runs");
        let b = Gcn::paper_default(16, 4, 9)
            .forward(&exec, &f)
            .expect("runs");
        assert_eq!(a.output, b.output);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        Gcn::new(8, 8, 2, 0, 0);
    }
}
