//! Graph Attention Network (Veličković et al.) — the paper's exemplar of
//! the second GNN class (Section 4.2: aggregation "with special edge
//! features applied to each neighbor node, such as GIN, GAT").
//!
//! Single-head GAT layer:
//!
//! 1. `Z = H W` (dense update),
//! 2. per-edge raw score `e_ij = LeakyReLU(a_src . z_i + a_dst . z_j)`,
//! 3. per-destination softmax `alpha_ij = softmax_j(e_ij)`,
//! 4. weighted aggregation `h'_i = sum_j alpha_ij z_j`.
//!
//! Steps 2–3 run on the simulated GPU through the attention kernels; step
//! 4 reuses the framework's aggregation strategy (the weights ride along
//! with the neighbor reads). Because the edge scores depend on the layer's
//! *output-width* embeddings, GAT cannot fold the attention work away —
//! the extra per-edge passes are the architectural cost the paper's
//! second class carries.

use gnnadvisor_core::compute::aggregate_weighted;
use gnnadvisor_core::kernels::attention::{EdgeAttentionKernel, SegmentSoftmaxKernel};
use gnnadvisor_core::Result;
use gnnadvisor_gpu::{Engine, GpuSpec, RunMetrics, Workload};
use gnnadvisor_graph::Csr;
use gnnadvisor_tensor::init::xavier_uniform;
use gnnadvisor_tensor::ops::relu_inplace;
use gnnadvisor_tensor::{gemm, Matrix};

use crate::exec::{ForwardResult, ModelExec};

/// Default GAT hidden width (8 per head x 8 heads in the original paper;
/// we model one fused head of width 64).
pub const GAT_HIDDEN: usize = 64;
/// Default GAT depth.
pub const GAT_LAYERS: usize = 2;
/// LeakyReLU slope used by GAT.
pub const LEAKY_SLOPE: f32 = 0.2;

struct GatLayer {
    weight: Matrix,
    a_src: Vec<f32>,
    a_dst: Vec<f32>,
}

/// A single-head GAT.
pub struct Gat {
    layers: Vec<GatLayer>,
}

impl Gat {
    /// Builds the default 2-layer GAT.
    pub fn paper_default(feat_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self::new(feat_dim, GAT_HIDDEN, num_classes, GAT_LAYERS, seed)
    }

    /// Builds a GAT with the given shape, deterministic per seed.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0`.
    pub fn new(
        feat_dim: usize,
        hidden: usize,
        num_classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers > 0, "a GAT needs at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut in_dim = feat_dim;
        for l in 0..num_layers {
            let out_dim = if l + 1 == num_layers {
                num_classes
            } else {
                hidden
            };
            let s = seed.wrapping_add(l as u64 * 31);
            layers.push(GatLayer {
                weight: xavier_uniform(in_dim, out_dim, s),
                a_src: xavier_uniform(1, out_dim, s ^ 1).into_vec(),
                a_dst: xavier_uniform(1, out_dim, s ^ 2).into_vec(),
            });
            in_dim = out_dim;
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Computes the attention weights of one layer (numerics): raw scores
    /// per CSR edge, softmax-normalized per destination node.
    fn attention_weights(graph: &Csr, z: &Matrix, layer: &GatLayer) -> Vec<f32> {
        let n = graph.num_nodes();
        // Per-node endpoint dots.
        let dot = |row: &[f32], a: &[f32]| -> f32 { row.iter().zip(a).map(|(x, y)| x * y).sum() };
        let src_dots: Vec<f32> = (0..n).map(|v| dot(z.row(v), &layer.a_src)).collect();
        let dst_dots: Vec<f32> = (0..n).map(|v| dot(z.row(v), &layer.a_dst)).collect();
        // Raw scores + per-destination softmax.
        let row_ptr = graph.row_ptr();
        let col = graph.col_idx();
        let mut weights = vec![0.0f32; graph.num_edges()];
        for v in 0..n {
            let (s, e) = (row_ptr[v], row_ptr[v + 1]);
            if s == e {
                continue;
            }
            let mut max = f32::NEG_INFINITY;
            for i in s..e {
                let raw = dst_dots[v] + src_dots[col[i] as usize];
                let score = if raw > 0.0 { raw } else { LEAKY_SLOPE * raw };
                weights[i] = score;
                max = max.max(score);
            }
            let mut sum = 0.0;
            for w in &mut weights[s..e] {
                *w = (*w - max).exp();
                sum += *w;
            }
            if sum > 0.0 {
                for w in &mut weights[s..e] {
                    *w /= sum;
                }
            }
        }
        weights
    }

    /// Simulated cost of the attention passes (scores + softmax) on the
    /// *execution* graph.
    fn attention_cost(engine: &Engine, graph: &Csr, metrics: &mut RunMetrics) -> Result<()> {
        let mut ctx = engine.lock_context();
        metrics.push_kernel(
            engine
                .submit(&mut ctx, Workload::Kernel(&EdgeAttentionKernel::new(graph)))?
                .into_kernel(),
        );
        metrics.push_kernel(
            engine
                .submit(
                    &mut ctx,
                    Workload::Kernel(&SegmentSoftmaxKernel::new(graph)),
                )?
                .into_kernel(),
        );
        Ok(())
    }

    /// Full forward pass: real embeddings + simulated metrics.
    pub fn forward(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<ForwardResult> {
        let mut metrics = RunMetrics::default();
        let graph = exec.graph();
        let n = graph.num_nodes();
        // The attention kernels run on whichever engine the strategy uses;
        // a dedicated engine with the default spec prices them when the
        // strategy carries none (they are strategy-independent passes).
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let mut h = features.clone();
        for (l, layer) in self.layers.iter().enumerate() {
            // Dense update.
            exec.update_cost(n, layer.weight.rows(), layer.weight.cols(), &mut metrics);
            let z = gemm(&h, &layer.weight)?;
            // Attention coefficients: numerics + simulated passes.
            let weights = Self::attention_weights(graph, &z, layer);
            Self::attention_cost(&engine, graph, &mut metrics)?;
            // Weighted aggregation: same data movement as an unweighted
            // pass at this dimensionality (weights ride in registers),
            // priced by the strategy; numerics use the real alphas.
            let _cost_proxy =
                exec.aggregate(&z, gnnadvisor_core::compute::Aggregation::Sum, &mut metrics)?;
            let mut out = aggregate_weighted(graph, &z, &weights);
            if l + 1 < self.layers.len() {
                relu_inplace(&mut out);
            }
            h = out;
        }
        Ok(ForwardResult { output: h, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn forward_shapes_and_extra_kernels() {
        let g = barabasi_albert(150, 4, 14).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let model = Gat::paper_default(32, 7, 0);
        let f = random_features(150, 32, 4);
        let r = model.forward(&exec, &f).expect("runs");
        assert_eq!(r.output.shape(), (150, 7));
        // Per layer: 1 gemm + 2 attention kernels + 2 DGL aggregation
        // kernels = 5; 2 layers = 10.
        assert_eq!(r.metrics.kernels.len(), 10);
        assert!(r
            .metrics
            .kernels
            .iter()
            .any(|k| k.name == "gat_edge_attention"));
    }

    #[test]
    fn attention_weights_are_a_distribution() {
        let g = barabasi_albert(100, 3, 15).expect("valid");
        let z = random_features(100, 16, 5);
        let layer = GatLayer {
            weight: xavier_uniform(16, 16, 0),
            a_src: xavier_uniform(1, 16, 1).into_vec(),
            a_dst: xavier_uniform(1, 16, 2).into_vec(),
        };
        let w = Gat::attention_weights(&g, &z, &layer);
        assert_eq!(w.len(), g.num_edges());
        assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-5).contains(&x)));
        for v in 0..g.num_nodes() {
            let (s, e) = (g.row_ptr()[v], g.row_ptr()[v + 1]);
            if s < e {
                let sum: f32 = w[s..e].iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "node {v} alphas sum to {sum}");
            }
        }
    }

    #[test]
    fn uniform_attention_reduces_to_mean() {
        // With a_src = a_dst = 0 every score ties, so softmax is uniform
        // and GAT's weighted sum equals the neighbor mean.
        let g = barabasi_albert(60, 3, 16).expect("valid");
        let z = random_features(60, 8, 6);
        let layer = GatLayer {
            weight: xavier_uniform(8, 8, 0),
            a_src: vec![0.0; 8],
            a_dst: vec![0.0; 8],
        };
        let w = Gat::attention_weights(&g, &z, &layer);
        let weighted = aggregate_weighted(&g, &z, &w);
        let mean = gnnadvisor_core::compute::aggregate_reference(
            &g,
            &z,
            gnnadvisor_core::compute::Aggregation::Mean,
        );
        assert!(weighted.max_abs_diff(&mean) < 1e-4);
    }

    #[test]
    fn gat_costs_more_than_gcn_at_same_shape() {
        use crate::gcn::Gcn;
        let g = barabasi_albert(200, 4, 17).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let f = random_features(200, 64, 7);
        let gat = Gat::new(64, 64, 8, 2, 0).forward(&exec, &f).expect("runs");
        let gcn = Gcn::new(64, 64, 8, 2, 0).forward(&exec, &f).expect("runs");
        assert!(
            gat.metrics.compute_ms > gcn.metrics.compute_ms,
            "edge-feature passes must cost extra: {} vs {}",
            gat.metrics.compute_ms,
            gcn.metrics.compute_ms
        );
    }
}
