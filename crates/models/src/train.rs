//! GNN training on the simulated runtime.
//!
//! Section 8.1.4: "GNNAdvisor's optimizations can also be applied towards
//! GNN training, which uses the same aggregation-update pattern in both of
//! its value propagation in the forward phase and gradient propagation in
//! backward phase." This module makes that concrete: [`GcnTrainer`] runs
//! real softmax-cross-entropy training of a GCN — true gradients, SGD
//! updates — while charging the simulated GPU for every forward *and*
//! backward aggregation and GEMM.
//!
//! Backward structure per layer `H_l = ReLU(A_hat (H_{l-1} W_l))`:
//!
//! - `dA = dH ⊙ ReLU'`,
//! - `dZ = A_hat^T dA` — the gradient propagates through the *transpose*
//!   of the renormalized adjacency,
//! - `dW = H_{l-1}^T dZ`, `dH_{l-1} = dZ W^T`.
//!
//! On a full undirected graph `A_hat` is symmetric, so [`GcnTrainer::step`]
//! reuses the forward aggregation kernel for `dZ`. That shortcut is
//! **invalid** on sampled mini-batch blocks: fan-out sampling keeps edge
//! `v -> u` without necessarily keeping `u -> v`, the block adjacency is
//! asymmetric, and its GCN normalization must be recomputed from the
//! block's own degrees. [`GcnTrainer::step_block`] therefore aggregates
//! the backward pass over the block's transpose with the forward block's
//! degrees ([`aggregate_gcn_block`]), which the finite-difference tests
//! below verify is the true adjoint.

use gnnadvisor_core::compute::{aggregate_gcn_block, Aggregation};
use gnnadvisor_core::frameworks::{aggregate_with, Framework};
use gnnadvisor_core::{CoreError, Result};
use gnnadvisor_gpu::{Engine, RunMetrics, Workload};
use gnnadvisor_graph::sample::SampledBlock;
use gnnadvisor_tensor::init::xavier_uniform;
use gnnadvisor_tensor::ops::softmax_rows_inplace;
use gnnadvisor_tensor::{gemm, Matrix};

use crate::exec::ModelExec;

/// Checks one label per expected row, each below `classes`, returning a
/// typed error instead of letting `Matrix::get` abort on a bad index.
fn validate_labels(labels: &[usize], expected: usize, classes: usize) -> Result<()> {
    if labels.len() != expected {
        return Err(CoreError::InvalidParams {
            reason: format!("expected {expected} labels, got {}", labels.len()),
        });
    }
    if let Some((v, &y)) = labels.iter().enumerate().find(|&(_, &y)| y >= classes) {
        return Err(CoreError::InvalidParams {
            reason: format!("label {y} for node {v} out of range: the model has {classes} classes"),
        });
    }
    Ok(())
}

/// Charges the simulated cost of an `m x k -> m x n` GEMM.
fn charge_gemm(engine: &Engine, m: usize, n: usize, k: usize, metrics: &mut RunMetrics) {
    let kernel = engine
        .submit(&mut engine.lock_context(), Workload::Gemm { m, n, k })
        .expect("gemm workloads are infallible")
        .into_kernel();
    metrics.push_kernel(kernel);
}

/// One training step's outcome.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Mean cross-entropy loss over all nodes.
    pub loss: f64,
    /// Training accuracy of this step's predictions.
    pub accuracy: f64,
    /// Simulated metrics of the whole step (forward + backward + update).
    pub metrics: RunMetrics,
}

impl StepResult {
    /// One-line epoch report: loss, accuracy, and where the step's
    /// simulated cycles went (compute / DRAM / atomics / launch).
    pub fn phase_summary(&self) -> String {
        format!(
            "loss {:.4}, acc {:.1}%, {:.4} ms — {}",
            self.loss,
            self.accuracy * 100.0,
            self.metrics.total_ms(),
            self.metrics.phases.report(),
        )
    }
}

/// A GCN under softmax-cross-entropy training with SGD.
pub struct GcnTrainer {
    weights: Vec<Matrix>,
    lr: f32,
}

impl GcnTrainer {
    /// Builds a trainer over the dimension chain, e.g. `[feat, 16, cls]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let weights = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64 * 11)))
            .collect();
        Self { weights, lr }
    }

    /// Number of graph-convolution layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Inference pass with the current weights (no metrics).
    pub fn predict(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<Matrix> {
        let mut metrics = RunMetrics::default();
        Ok(self
            .forward(exec, features, &mut metrics)?
            .pop()
            .expect("at least one layer")
            .1)
    }

    /// Forward pass caching `(pre_activation, post_activation)` per layer.
    fn forward(
        &self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        metrics: &mut RunMetrics,
    ) -> Result<Vec<(Matrix, Matrix)>> {
        let n = features.rows();
        let mut cache = Vec::with_capacity(self.weights.len());
        let mut h = features.clone();
        for (l, w) in self.weights.iter().enumerate() {
            exec.update_cost(n, w.rows(), w.cols(), metrics);
            let z = gemm(&h, w)?;
            let a = exec.aggregate(&z, Aggregation::GcnNorm, metrics)?;
            let post = if l + 1 < self.weights.len() {
                let mut p = a.clone();
                gnnadvisor_tensor::ops::relu_inplace(&mut p);
                p
            } else {
                a.clone()
            };
            h = post.clone();
            cache.push((a, post));
        }
        Ok(cache)
    }

    /// Runs `epochs` full-batch SGD steps, returning every epoch's
    /// [`StepResult`] in order — each carries the phase-attributed cycle
    /// breakdown of its forward + backward pass, so training loops can
    /// report per-epoch summaries via [`StepResult::phase_summary`].
    pub fn train_epochs(
        &mut self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<StepResult>> {
        (0..epochs)
            .map(|_| self.step(exec, features, labels))
            .collect()
    }

    /// One SGD step on `(features, labels)`; labels index classes per
    /// node. Returns [`CoreError::InvalidParams`] when the label count
    /// mismatches the rows or any label is `>= num_classes` — labels come
    /// from dataset files, so a bad one must not abort the process.
    pub fn step(
        &mut self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        labels: &[usize],
    ) -> Result<StepResult> {
        let n = features.rows();
        let classes = self.weights.last().expect("non-empty").cols();
        validate_labels(labels, n, classes)?;
        let mut metrics = RunMetrics::default();
        let cache = self.forward(exec, features, &mut metrics)?;

        // Loss and output gradient: softmax cross-entropy.
        let logits = &cache.last().expect("non-empty").0;
        let mut probs = logits.clone();
        softmax_rows_inplace(&mut probs);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        let mut grad = probs.clone();
        for (v, &y) in labels.iter().enumerate() {
            let p = probs.get(v, y).max(1e-12);
            loss -= (p as f64).ln();
            let row = probs.row(v);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == y {
                correct += 1;
            }
            grad.set(v, y, grad.get(v, y) - 1.0);
        }
        loss /= n as f64;
        let inv_n = 1.0 / n as f32;
        for g in grad.as_mut_slice() {
            *g *= inv_n;
        }

        // Backward through layers.
        let mut d_h = grad; // dL/dA for the last layer (no ReLU on output)
        let mut weight_grads: Vec<Matrix> = Vec::with_capacity(self.weights.len());
        for l in (0..self.weights.len()).rev() {
            // Through ReLU for hidden layers.
            if l + 1 < self.weights.len() {
                let pre = &cache[l].0;
                for (g, &a) in d_h.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            // Backward aggregation is A_hat^T; on this full-batch path the
            // graph is undirected so A_hat is symmetric and the forward
            // kernel (and its simulated cost) is exactly the adjoint.
            // Sampled blocks are asymmetric — step_block handles those.
            let d_z = exec.aggregate(&d_h, Aggregation::GcnNorm, &mut metrics)?;
            // dW = H_in^T dZ and dH_in = dZ W^T (two GEMMs).
            let h_in: Matrix = if l == 0 {
                features.clone()
            } else {
                cache[l - 1].1.clone()
            };
            exec.update_cost(
                self.weights[l].rows(),
                n,
                self.weights[l].cols(),
                &mut metrics,
            );
            let d_w = gemm(&h_in.transpose(), &d_z)?;
            if l > 0 {
                exec.update_cost(
                    n,
                    self.weights[l].cols(),
                    self.weights[l].rows(),
                    &mut metrics,
                );
                d_h = gemm(&d_z, &self.weights[l].transpose())?;
            }
            weight_grads.push(d_w);
        }
        weight_grads.reverse();

        // SGD update.
        for (w, g) in self.weights.iter_mut().zip(&weight_grads) {
            for (wv, gv) in w.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *wv -= self.lr * gv;
            }
        }

        Ok(StepResult {
            loss,
            accuracy: correct as f64 / n as f64,
            metrics,
        })
    }

    /// One SGD step on a sampled mini-batch block.
    ///
    /// `features` holds one row per block node (block-local order, i.e.
    /// gathered via [`SampledBlock::nodes`]); `labels` holds one label
    /// per *seed* — only seed rows enter the loss, deeper hops exist
    /// solely to feed their receptive fields. The forward pass uses the
    /// block's own recomputed GCN degrees, and the backward pass
    /// aggregates over the block's **transpose** with those same degrees
    /// (the true adjoint of the asymmetric sampled operator — reusing
    /// the forward aggregation here, as the full-batch symmetric
    /// shortcut would, computes wrong gradients).
    ///
    /// Simulated cost is charged per phase: one GEMM per update, one
    /// DGL-style aggregation per forward layer on the block and per
    /// backward layer on its transpose.
    pub fn step_block(
        &mut self,
        engine: &Engine,
        block: &SampledBlock,
        features: &Matrix,
        labels: &[usize],
    ) -> Result<StepResult> {
        let g = &block.block;
        let n = g.num_nodes();
        let classes = self.weights.last().expect("non-empty").cols();
        if features.rows() != n {
            return Err(CoreError::InvalidParams {
                reason: format!(
                    "block features have {} rows but the block has {n} nodes",
                    features.rows()
                ),
            });
        }
        let seeds = block.num_seeds.min(n);
        validate_labels(labels, seeds, classes)?;
        let degrees = block.degrees();
        let transposed = g.transpose();
        let mut metrics = RunMetrics::default();

        // Forward with per-block normalization.
        let mut cache: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.weights.len());
        let mut h = features.clone();
        for (l, w) in self.weights.iter().enumerate() {
            charge_gemm(engine, n, w.cols(), w.rows(), &mut metrics);
            let z = gemm(&h, w)?;
            metrics.merge(aggregate_with(Framework::Dgl, engine, g, w.cols(), None)?);
            let a = aggregate_gcn_block(g, &degrees, &z);
            let post = if l + 1 < self.weights.len() {
                let mut p = a.clone();
                gnnadvisor_tensor::ops::relu_inplace(&mut p);
                p
            } else {
                a.clone()
            };
            h = post.clone();
            cache.push((a, post));
        }

        // Seed-masked softmax cross-entropy: gradient rows of non-seed
        // nodes stay zero.
        let logits = &cache.last().expect("non-empty").0;
        let mut probs = logits.clone();
        softmax_rows_inplace(&mut probs);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        let mut grad = Matrix::zeros(n, classes);
        for (v, &y) in labels.iter().enumerate() {
            let p = probs.get(v, y).max(1e-12);
            loss -= (p as f64).ln();
            let row = probs.row(v);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == y {
                correct += 1;
            }
            let inv = 1.0 / seeds as f32;
            for (c, &p) in row.iter().enumerate() {
                let indicator = if c == y { 1.0 } else { 0.0 };
                grad.set(v, c, (p - indicator) * inv);
            }
        }
        loss /= seeds as f64;

        // Backward through layers: aggregation over the transpose.
        let mut d_h = grad;
        let mut weight_grads: Vec<Matrix> = Vec::with_capacity(self.weights.len());
        for l in (0..self.weights.len()).rev() {
            if l + 1 < self.weights.len() {
                let pre = &cache[l].0;
                for (gv, &a) in d_h.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    if a <= 0.0 {
                        *gv = 0.0;
                    }
                }
            }
            metrics.merge(aggregate_with(
                Framework::Dgl,
                engine,
                &transposed,
                self.weights[l].cols(),
                None,
            )?);
            let d_z = aggregate_gcn_block(&transposed, &degrees, &d_h);
            let h_in: Matrix = if l == 0 {
                features.clone()
            } else {
                cache[l - 1].1.clone()
            };
            charge_gemm(
                engine,
                self.weights[l].rows(),
                self.weights[l].cols(),
                n,
                &mut metrics,
            );
            let d_w = gemm(&h_in.transpose(), &d_z)?;
            if l > 0 {
                charge_gemm(
                    engine,
                    n,
                    self.weights[l].rows(),
                    self.weights[l].cols(),
                    &mut metrics,
                );
                d_h = gemm(&d_z, &self.weights[l].transpose())?;
            }
            weight_grads.push(d_w);
        }
        weight_grads.reverse();

        for (w, gv) in self.weights.iter_mut().zip(&weight_grads) {
            for (wv, g) in w.as_mut_slice().iter_mut().zip(gv.as_slice()) {
                *wv -= self.lr * g;
            }
        }

        Ok(StepResult {
            loss,
            accuracy: correct as f64 / seeds as f64,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};
    use gnnadvisor_graph::Csr;

    /// A cleanly separable task: features carry a noisy one-hot of the
    /// planted community, labels are the community id modulo classes.
    fn task(classes: usize) -> (Csr, Matrix, Vec<usize>) {
        let params = CommunityParams {
            num_nodes: 300,
            num_edges: 4_000,
            mean_community: 50,
            community_size_cv: 0.2,
            inter_fraction: 0.05,
            shuffle_ids: true,
        };
        let (g, comm) = community_graph(&params, 77).expect("valid");
        let labels: Vec<usize> = comm.iter().map(|&c| c as usize % classes).collect();
        let dim = 16;
        let features = Matrix::from_fn(g.num_nodes(), dim, |v, d| {
            let hot = labels[v] % dim;
            let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
            if d == hot {
                1.0 + noise
            } else {
                noise
            }
        });
        (g, features, labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 16, 4], 0.5, 3);
        let first = trainer.step(&exec, &features, &labels).expect("step");
        let mut last = first.clone();
        for _ in 0..30 {
            last = trainer.step(&exec, &features, &labels).expect("step");
        }
        assert!(
            last.loss < first.loss * 0.7,
            "loss must drop: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy > 0.7, "accuracy {} too low", last.accuracy);
    }

    #[test]
    fn step_charges_forward_and_backward_aggregation() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 8, 4], 0.1, 1);
        let r = trainer.step(&exec, &features, &labels).expect("step");
        // DGL strategy: 2 kernels per aggregation; 2 layers forward + 2
        // backward = 8 aggregation kernels, plus gemms.
        let agg_kernels = r
            .metrics
            .kernels
            .iter()
            .filter(|k| !k.name.starts_with("gemm"))
            .count();
        assert_eq!(agg_kernels, 8);
        assert!(r.metrics.total_ms() > 0.0);
    }

    #[test]
    fn train_epochs_reports_phases_per_epoch() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 16, 4], 0.5, 3);
        let epochs = trainer
            .train_epochs(&exec, &features, &labels, 5)
            .expect("trains");
        assert_eq!(epochs.len(), 5);
        for e in &epochs {
            // The breakdown is an exact partition of the epoch's kernel
            // cycles, and the summary is human-readable.
            assert_eq!(e.metrics.phases.total_cycles(), e.metrics.total_cycles());
            let s = e.phase_summary();
            assert!(s.contains("loss") && s.contains("compute"), "{s}");
        }
        assert!(
            epochs.last().expect("non-empty").loss < epochs[0].loss,
            "loss must drop across epochs"
        );
    }

    #[test]
    fn step_rejects_out_of_range_labels() {
        // Regression: a label >= num_classes used to index past the
        // probability row and abort the process.
        let (g, features, mut labels) = task(4);
        labels[17] = 4; // model has classes 0..=3
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 8, 4], 0.1, 1);
        let err = trainer
            .step(&exec, &features, &labels)
            .expect_err("bad label");
        assert!(
            matches!(&err, CoreError::InvalidParams { reason } if reason.contains("out of range")),
            "{err:?}"
        );
    }

    #[test]
    fn step_rejects_label_count_mismatch() {
        let (g, features, mut labels) = task(4);
        labels.pop();
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 8, 4], 0.1, 1);
        let err = trainer
            .step(&exec, &features, &labels)
            .expect_err("short labels");
        assert!(matches!(err, CoreError::InvalidParams { .. }), "{err:?}");
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Tiny graph, tiny model: perturb one weight and compare the loss
        // delta against the analytic gradient.
        let (g, features, labels) = {
            let g = gnnadvisor_graph::GraphBuilder::new(4)
                .undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .build()
                .expect("valid");
            let f = Matrix::from_fn(4, 3, |v, d| ((v * 3 + d) % 5) as f32 / 5.0);
            (g, f, vec![0usize, 1, 0, 1])
        };
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);

        let loss_at = |weights: &[Matrix]| -> f64 {
            let mut t = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
            t.weights = weights.to_vec();
            // lr = 0 so step() computes loss without changing weights.
            t.step(&exec, &features, &labels).expect("step").loss
        };

        // Analytic gradient via a tiny lr step on a fresh trainer.
        let base = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
        let eps = 1e-3f32;
        // Probe two scalar coordinates across the two layers.
        for (layer, r, c) in [(0usize, 0usize, 1usize), (1, 2, 0)] {
            let w0 = base.weights[layer].get(r, c);
            let mut plus = base.weights.clone();
            plus[layer].set(r, c, w0 + eps);
            let mut minus = base.weights.clone();
            minus[layer].set(r, c, w0 - eps);
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps as f64);

            // Analytic: run one step with lr 1 and read the weight delta.
            let mut t = GcnTrainer::new(&[3, 3, 2], 1.0, 7);
            let before = t.weights[layer].get(r, c);
            t.step(&exec, &features, &labels).expect("step");
            let analytic = (before - t.weights[layer].get(r, c)) as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "layer {layer} ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// A hand-built asymmetric sampled block: node 0 keeps edges to 1 and
    /// 2, node 1 keeps 2, node 3 keeps 0 — no reverse edges, so the
    /// forward operator is *not* its own adjoint.
    fn asymmetric_block() -> SampledBlock {
        let block = Csr::from_raw(4, vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0]).expect("valid");
        SampledBlock {
            block,
            nodes: vec![0, 1, 2, 3],
            num_seeds: 2,
            hop_offsets: vec![0, 2, 4],
            scanned_edges: 4,
        }
    }

    #[test]
    fn block_gradients_match_finite_differences() {
        // Satellite check for the symmetric-backward bug: on an
        // asymmetric block, only transpose aggregation in the backward
        // pass matches numeric loss derivatives. The old full-batch
        // shortcut (reusing forward aggregation) fails this test.
        let blk = asymmetric_block();
        let features = Matrix::from_fn(4, 3, |v, d| ((v * 3 + d) % 5) as f32 / 5.0);
        let labels = vec![0usize, 1];
        let engine = Engine::new(GpuSpec::quadro_p6000());

        let loss_at = |weights: &[Matrix]| -> f64 {
            let mut t = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
            t.weights = weights.to_vec();
            t.step_block(&engine, &blk, &features, &labels)
                .expect("step")
                .loss
        };

        let base = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
        let eps = 1e-3f32;
        for (layer, r, c) in [(0usize, 0usize, 1usize), (0, 2, 2), (1, 2, 0), (1, 0, 1)] {
            let w0 = base.weights[layer].get(r, c);
            let mut plus = base.weights.clone();
            plus[layer].set(r, c, w0 + eps);
            let mut minus = base.weights.clone();
            minus[layer].set(r, c, w0 - eps);
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps as f64);

            let mut t = GcnTrainer::new(&[3, 3, 2], 1.0, 7);
            let before = t.weights[layer].get(r, c);
            t.step_block(&engine, &blk, &features, &labels)
                .expect("step");
            let analytic = (before - t.weights[layer].get(r, c)) as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "layer {layer} ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn step_block_rejects_bad_labels_and_shapes() {
        let blk = asymmetric_block();
        let features = Matrix::from_fn(4, 3, |v, d| (v + d) as f32);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let mut t = GcnTrainer::new(&[3, 3, 2], 0.1, 7);
        // One label per seed (2 seeds), each < 2 classes.
        let err = t
            .step_block(&engine, &blk, &features, &[0, 2])
            .expect_err("label out of range");
        assert!(matches!(err, CoreError::InvalidParams { .. }), "{err:?}");
        let err = t
            .step_block(&engine, &blk, &features, &[0, 1, 0])
            .expect_err("one label per seed, not per node");
        assert!(matches!(err, CoreError::InvalidParams { .. }), "{err:?}");
        let short = Matrix::from_fn(3, 3, |v, d| (v + d) as f32);
        let err = t
            .step_block(&engine, &blk, &short, &[0, 1])
            .expect_err("feature rows must match block nodes");
        assert!(matches!(err, CoreError::InvalidParams { .. }), "{err:?}");
    }

    #[test]
    fn step_block_trains_on_real_sampled_blocks() {
        use gnnadvisor_graph::sample::{sample_epoch, SampleConfig};
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let cfg = SampleConfig {
            batch_size: 64,
            fanouts: vec![6, 4],
            ..SampleConfig::default()
        };
        let mut trainer = GcnTrainer::new(&[16, 16, 4], 0.4, 3);
        let mut first = f64::NAN;
        let mut last = f64::NAN;
        for epoch in 0..8u64 {
            let mut epoch_loss = 0.0;
            let blocks = sample_epoch(&g, &cfg, epoch).expect("samples");
            let count = blocks.len();
            for blk in blocks {
                // Gather block-local features and seed labels.
                let bf = Matrix::from_fn(blk.nodes.len(), features.cols(), |r, c| {
                    features.get(blk.nodes[r] as usize, c)
                });
                let bl: Vec<usize> = blk.nodes[..blk.num_seeds]
                    .iter()
                    .map(|&v| labels[v as usize])
                    .collect();
                let r = trainer.step_block(&engine, &blk, &bf, &bl).expect("step");
                assert!(r.metrics.total_ms() > 0.0, "block steps charge the GPU");
                epoch_loss += r.loss;
            }
            epoch_loss /= count as f64;
            if epoch == 0 {
                first = epoch_loss;
            }
            last = epoch_loss;
        }
        assert!(
            last < first * 0.8,
            "mini-batch loss must drop: {first} -> {last}"
        );
    }
}
