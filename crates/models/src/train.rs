//! GNN training on the simulated runtime.
//!
//! Section 8.1.4: "GNNAdvisor's optimizations can also be applied towards
//! GNN training, which uses the same aggregation-update pattern in both of
//! its value propagation in the forward phase and gradient propagation in
//! backward phase." This module makes that concrete: [`GcnTrainer`] runs
//! real softmax-cross-entropy training of a GCN — true gradients, SGD
//! updates — while charging the simulated GPU for every forward *and*
//! backward aggregation and GEMM.
//!
//! Backward structure per layer `H_l = ReLU(A_hat (H_{l-1} W_l))`:
//!
//! - `dA = dH ⊙ ReLU'`,
//! - `dZ = A_hat dA` (the renormalized adjacency is symmetric, so the
//!   backward aggregation is the same kernel as the forward one),
//! - `dW = H_{l-1}^T dZ`, `dH_{l-1} = dZ W^T`.

use gnnadvisor_core::compute::Aggregation;
use gnnadvisor_core::Result;
use gnnadvisor_gpu::RunMetrics;
use gnnadvisor_tensor::init::xavier_uniform;
use gnnadvisor_tensor::ops::softmax_rows_inplace;
use gnnadvisor_tensor::{gemm, Matrix};

use crate::exec::ModelExec;

/// One training step's outcome.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Mean cross-entropy loss over all nodes.
    pub loss: f64,
    /// Training accuracy of this step's predictions.
    pub accuracy: f64,
    /// Simulated metrics of the whole step (forward + backward + update).
    pub metrics: RunMetrics,
}

impl StepResult {
    /// One-line epoch report: loss, accuracy, and where the step's
    /// simulated cycles went (compute / DRAM / atomics / launch).
    pub fn phase_summary(&self) -> String {
        format!(
            "loss {:.4}, acc {:.1}%, {:.4} ms — {}",
            self.loss,
            self.accuracy * 100.0,
            self.metrics.total_ms(),
            self.metrics.phases.report(),
        )
    }
}

/// A GCN under softmax-cross-entropy training with SGD.
pub struct GcnTrainer {
    weights: Vec<Matrix>,
    lr: f32,
}

impl GcnTrainer {
    /// Builds a trainer over the dimension chain, e.g. `[feat, 16, cls]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], lr: f32, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let weights = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64 * 11)))
            .collect();
        Self { weights, lr }
    }

    /// Number of graph-convolution layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Inference pass with the current weights (no metrics).
    pub fn predict(&self, exec: &ModelExec<'_>, features: &Matrix) -> Result<Matrix> {
        let mut metrics = RunMetrics::default();
        Ok(self
            .forward(exec, features, &mut metrics)?
            .pop()
            .expect("at least one layer")
            .1)
    }

    /// Forward pass caching `(pre_activation, post_activation)` per layer.
    fn forward(
        &self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        metrics: &mut RunMetrics,
    ) -> Result<Vec<(Matrix, Matrix)>> {
        let n = features.rows();
        let mut cache = Vec::with_capacity(self.weights.len());
        let mut h = features.clone();
        for (l, w) in self.weights.iter().enumerate() {
            exec.update_cost(n, w.rows(), w.cols(), metrics);
            let z = gemm(&h, w)?;
            let a = exec.aggregate(&z, Aggregation::GcnNorm, metrics)?;
            let post = if l + 1 < self.weights.len() {
                let mut p = a.clone();
                gnnadvisor_tensor::ops::relu_inplace(&mut p);
                p
            } else {
                a.clone()
            };
            h = post.clone();
            cache.push((a, post));
        }
        Ok(cache)
    }

    /// Runs `epochs` full-batch SGD steps, returning every epoch's
    /// [`StepResult`] in order — each carries the phase-attributed cycle
    /// breakdown of its forward + backward pass, so training loops can
    /// report per-epoch summaries via [`StepResult::phase_summary`].
    pub fn train_epochs(
        &mut self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        labels: &[usize],
        epochs: usize,
    ) -> Result<Vec<StepResult>> {
        (0..epochs)
            .map(|_| self.step(exec, features, labels))
            .collect()
    }

    /// One SGD step on `(features, labels)`; labels index classes per node.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != features.rows()`.
    pub fn step(
        &mut self,
        exec: &ModelExec<'_>,
        features: &Matrix,
        labels: &[usize],
    ) -> Result<StepResult> {
        let n = features.rows();
        assert_eq!(labels.len(), n, "one label per node");
        let mut metrics = RunMetrics::default();
        let cache = self.forward(exec, features, &mut metrics)?;

        // Loss and output gradient: softmax cross-entropy.
        let logits = &cache.last().expect("non-empty").0;
        let mut probs = logits.clone();
        softmax_rows_inplace(&mut probs);
        let mut loss = 0.0f64;
        let mut correct = 0usize;
        let mut grad = probs.clone();
        for (v, &y) in labels.iter().enumerate() {
            let p = probs.get(v, y).max(1e-12);
            loss -= (p as f64).ln();
            let row = probs.row(v);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if pred == y {
                correct += 1;
            }
            grad.set(v, y, grad.get(v, y) - 1.0);
        }
        loss /= n as f64;
        let inv_n = 1.0 / n as f32;
        for g in grad.as_mut_slice() {
            *g *= inv_n;
        }

        // Backward through layers.
        let mut d_h = grad; // dL/dA for the last layer (no ReLU on output)
        let mut weight_grads: Vec<Matrix> = Vec::with_capacity(self.weights.len());
        for l in (0..self.weights.len()).rev() {
            // Through ReLU for hidden layers.
            if l + 1 < self.weights.len() {
                let pre = &cache[l].0;
                for (g, &a) in d_h.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            // Backward aggregation: A_hat is symmetric, so the same kernel
            // (and the same simulated cost) as the forward pass.
            let d_z = exec.aggregate(&d_h, Aggregation::GcnNorm, &mut metrics)?;
            // dW = H_in^T dZ and dH_in = dZ W^T (two GEMMs).
            let h_in: Matrix = if l == 0 {
                features.clone()
            } else {
                cache[l - 1].1.clone()
            };
            exec.update_cost(
                self.weights[l].rows(),
                n,
                self.weights[l].cols(),
                &mut metrics,
            );
            let d_w = gemm(&h_in.transpose(), &d_z)?;
            if l > 0 {
                exec.update_cost(
                    n,
                    self.weights[l].cols(),
                    self.weights[l].rows(),
                    &mut metrics,
                );
                d_h = gemm(&d_z, &self.weights[l].transpose())?;
            }
            weight_grads.push(d_w);
        }
        weight_grads.reverse();

        // SGD update.
        for (w, g) in self.weights.iter_mut().zip(&weight_grads) {
            for (wv, gv) in w.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *wv -= self.lr * gv;
            }
        }

        Ok(StepResult {
            loss,
            accuracy: correct as f64 / n as f64,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::Framework;
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};
    use gnnadvisor_graph::Csr;

    /// A cleanly separable task: features carry a noisy one-hot of the
    /// planted community, labels are the community id modulo classes.
    fn task(classes: usize) -> (Csr, Matrix, Vec<usize>) {
        let params = CommunityParams {
            num_nodes: 300,
            num_edges: 4_000,
            mean_community: 50,
            community_size_cv: 0.2,
            inter_fraction: 0.05,
            shuffle_ids: true,
        };
        let (g, comm) = community_graph(&params, 77).expect("valid");
        let labels: Vec<usize> = comm.iter().map(|&c| c as usize % classes).collect();
        let dim = 16;
        let features = Matrix::from_fn(g.num_nodes(), dim, |v, d| {
            let hot = labels[v] % dim;
            let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
            if d == hot {
                1.0 + noise
            } else {
                noise
            }
        });
        (g, features, labels)
    }

    #[test]
    fn training_reduces_loss_and_learns() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 16, 4], 0.5, 3);
        let first = trainer.step(&exec, &features, &labels).expect("step");
        let mut last = first.clone();
        for _ in 0..30 {
            last = trainer.step(&exec, &features, &labels).expect("step");
        }
        assert!(
            last.loss < first.loss * 0.7,
            "loss must drop: {} -> {}",
            first.loss,
            last.loss
        );
        assert!(last.accuracy > 0.7, "accuracy {} too low", last.accuracy);
    }

    #[test]
    fn step_charges_forward_and_backward_aggregation() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 8, 4], 0.1, 1);
        let r = trainer.step(&exec, &features, &labels).expect("step");
        // DGL strategy: 2 kernels per aggregation; 2 layers forward + 2
        // backward = 8 aggregation kernels, plus gemms.
        let agg_kernels = r
            .metrics
            .kernels
            .iter()
            .filter(|k| !k.name.starts_with("gemm"))
            .count();
        assert_eq!(agg_kernels, 8);
        assert!(r.metrics.total_ms() > 0.0);
    }

    #[test]
    fn train_epochs_reports_phases_per_epoch() {
        let (g, features, labels) = task(4);
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut trainer = GcnTrainer::new(&[16, 16, 4], 0.5, 3);
        let epochs = trainer
            .train_epochs(&exec, &features, &labels, 5)
            .expect("trains");
        assert_eq!(epochs.len(), 5);
        for e in &epochs {
            // The breakdown is an exact partition of the epoch's kernel
            // cycles, and the summary is human-readable.
            assert_eq!(e.metrics.phases.total_cycles(), e.metrics.total_cycles());
            let s = e.phase_summary();
            assert!(s.contains("loss") && s.contains("compute"), "{s}");
        }
        assert!(
            epochs.last().expect("non-empty").loss < epochs[0].loss,
            "loss must drop across epochs"
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Tiny graph, tiny model: perturb one weight and compare the loss
        // delta against the analytic gradient.
        let (g, features, labels) = {
            let g = gnnadvisor_graph::GraphBuilder::new(4)
                .undirected_edge(0, 1)
                .undirected_edge(1, 2)
                .undirected_edge(2, 3)
                .build()
                .expect("valid");
            let f = Matrix::from_fn(4, 3, |v, d| ((v * 3 + d) % 5) as f32 / 5.0);
            (g, f, vec![0usize, 1, 0, 1])
        };
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);

        let loss_at = |weights: &[Matrix]| -> f64 {
            let mut t = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
            t.weights = weights.to_vec();
            // lr = 0 so step() computes loss without changing weights.
            t.step(&exec, &features, &labels).expect("step").loss
        };

        // Analytic gradient via a tiny lr step on a fresh trainer.
        let base = GcnTrainer::new(&[3, 3, 2], 0.0, 7);
        let eps = 1e-3f32;
        // Probe two scalar coordinates across the two layers.
        for (layer, r, c) in [(0usize, 0usize, 1usize), (1, 2, 0)] {
            let w0 = base.weights[layer].get(r, c);
            let mut plus = base.weights.clone();
            plus[layer].set(r, c, w0 + eps);
            let mut minus = base.weights.clone();
            minus[layer].set(r, c, w0 - eps);
            let numeric = (loss_at(&plus) - loss_at(&minus)) / (2.0 * eps as f64);

            // Analytic: run one step with lr 1 and read the weight delta.
            let mut t = GcnTrainer::new(&[3, 3, 2], 1.0, 7);
            let before = t.weights[layer].get(r, c);
            t.step(&exec, &features, &labels).expect("step");
            let analytic = (before - t.weights[layer].get(r, c)) as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "layer {layer} ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
