//! The model half of the serving runtime: a GCN batch executor.
//!
//! [`gnnadvisor_core::serving`] owns the policy side of inference serving
//! (arrivals, admission, dynamic batching, multi-stream scheduling) but
//! is model-agnostic: it delegates "what does one dispatched batch cost
//! on the device?" to a [`BatchExecutor`]. This module implements that
//! trait for a 2-layer GCN over a Type II (block-diagonal) dataset:
//!
//! 1. each request names one component graph of the dataset;
//! 2. the executor stitches the batch's components into one
//!    block-diagonal CSR ([`concat_block_diagonal`]) — exactly how
//!    mini-batch frameworks coalesce small graphs;
//! 3. the batch prices as h2d copy → per-layer dense update (GEMM) and
//!    DGL-style aggregation (stacking + fused SpMM) → d2h copy, all
//!    enqueued on one simulated stream so independent batches overlap.

use gnnadvisor_core::kernels::spmm_dgl::{SpmmKernel, StackingKernel};
use gnnadvisor_core::serving::{BatchExecutor, BatchWork, DeviceWork, DispatchedBatch};
use gnnadvisor_core::{CoreError, Result};
use gnnadvisor_gpu::{BlockSink, GridConfig, Kernel};
use gnnadvisor_graph::Csr;

use crate::batch::{component_batches, concat_block_diagonal, Batch};

/// Bytes of one `f32` / one edge index.
const WORD: usize = 4;

/// A fused-SpMM aggregation kernel that owns its (batch-assembled) graph,
/// so it can outlive the executor call that built it. Emits exactly what
/// [`SpmmKernel`] emits.
struct OwnedSpmm {
    graph: Csr,
    dim: usize,
}

impl Kernel for OwnedSpmm {
    fn name(&self) -> &str {
        "serve_gcn_spmm"
    }
    fn grid(&self) -> GridConfig {
        SpmmKernel::new(&self.graph, self.dim).grid()
    }
    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        SpmmKernel::new(&self.graph, self.dim).emit_block(block_id, sink)
    }
}

/// Plans the device work of GCN inference batches over a block-diagonal
/// dataset (one component graph per request).
pub struct GcnBatchExecutor {
    components: Vec<Batch>,
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
}

impl GcnBatchExecutor {
    /// An executor over `graph`'s components (see
    /// [`component_batches`]) pricing a `in_dim -> hidden_dim ->
    /// num_classes` GCN forward per batch.
    pub fn new(
        graph: &Csr,
        component_of: &[u32],
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
    ) -> Self {
        Self {
            components: component_batches(graph, component_of),
            in_dim,
            hidden_dim,
            num_classes,
        }
    }

    /// How many component graphs requests may reference.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// The layer dimensionalities, outermost first.
    fn layer_dims(&self) -> [(usize, usize); 2] {
        [
            (self.in_dim, self.hidden_dim),
            (self.hidden_dim, self.num_classes),
        ]
    }
}

impl BatchExecutor for GcnBatchExecutor {
    fn plan(&mut self, batch: &DispatchedBatch) -> Result<BatchWork> {
        if batch.requests.is_empty() {
            return Ok(BatchWork::default());
        }
        let mut graphs = Vec::with_capacity(batch.requests.len());
        for request in &batch.requests {
            let component =
                self.components
                    .get(request.component)
                    .ok_or_else(|| CoreError::Serving {
                        reason: format!(
                            "request {} asks for component {} but the dataset has {}",
                            request.id,
                            request.component,
                            self.components.len()
                        ),
                    })?;
            graphs.push(&component.graph);
        }
        let merged = concat_block_diagonal(graphs);
        let nodes = merged.num_nodes();
        let edges = merged.num_edges();

        // Host -> device: input features plus the batch topology.
        let h2d = (nodes * self.in_dim * WORD + (nodes + 1 + edges) * WORD) as u64;
        let mut ops = vec![DeviceWork::Transfer { bytes: h2d }];
        // Update-then-aggregate per layer (the paper's GCN ordering:
        // dimension reduction first makes aggregation cheaper).
        for (in_dim, out_dim) in self.layer_dims() {
            ops.push(DeviceWork::Gemm {
                m: nodes,
                n: out_dim,
                k: in_dim,
            });
            ops.push(DeviceWork::Kernel(Box::new(StackingKernel::new(
                nodes, out_dim,
            ))));
            ops.push(DeviceWork::Kernel(Box::new(OwnedSpmm {
                graph: merged.clone(),
                dim: out_dim,
            })));
        }
        // Device -> host: the logits.
        ops.push(DeviceWork::Transfer {
            bytes: (nodes * self.num_classes * WORD) as u64,
        });
        Ok(BatchWork { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::serving::{
        generate_arrivals, simulate, ArrivalConfig, BatchPolicy, QueuePolicy, Request, RetryPolicy,
        ServingConfig,
    };
    use gnnadvisor_gpu::{Engine, GpuSpec};
    use gnnadvisor_graph::generators::{batched_graph, BatchedParams};

    fn dataset() -> (Csr, Vec<u32>) {
        let params = BatchedParams {
            num_nodes: 1_200,
            num_edges: 4_800,
            mean_graph_size: 30,
            graph_size_cv: 0.4,
        };
        batched_graph(&params, 17).expect("valid")
    }

    fn executor() -> GcnBatchExecutor {
        let (g, comp) = dataset();
        GcnBatchExecutor::new(&g, &comp, 32, 16, 4)
    }

    fn batch_of(components: &[usize]) -> DispatchedBatch {
        DispatchedBatch {
            dispatch_ms: 0.0,
            requests: components
                .iter()
                .enumerate()
                .map(|(id, &component)| Request {
                    id,
                    arrival_ms: 0.0,
                    component,
                })
                .collect(),
        }
    }

    #[test]
    fn plans_the_full_gcn_pipeline() {
        let mut exec = executor();
        assert!(exec.num_components() > 4);
        let work = exec.plan(&batch_of(&[0, 1, 2])).expect("valid components");
        // h2d + 2 layers x (gemm + stacking + spmm) + d2h.
        assert_eq!(work.ops.len(), 8);
        assert!(matches!(work.ops[0], DeviceWork::Transfer { bytes } if bytes > 0));
        assert!(matches!(work.ops[1], DeviceWork::Gemm { n: 16, k: 32, .. }));
        assert!(matches!(work.ops[7], DeviceWork::Transfer { bytes } if bytes > 0));
    }

    #[test]
    fn bigger_batches_price_more_work() {
        let mut exec = executor();
        let gemm_rows = |work: &BatchWork| match work.ops[1] {
            DeviceWork::Gemm { m, .. } => m,
            _ => unreachable!(),
        };
        let one = exec.plan(&batch_of(&[0])).expect("valid");
        let four = exec.plan(&batch_of(&[0, 1, 2, 3])).expect("valid");
        assert!(gemm_rows(&four) > gemm_rows(&one));
    }

    #[test]
    fn unknown_component_is_a_serving_error() {
        let mut exec = executor();
        let bogus = exec.num_components() + 5;
        let err = exec.plan(&batch_of(&[bogus]));
        assert!(matches!(err, Err(CoreError::Serving { .. })));
    }

    #[test]
    fn end_to_end_serving_is_deterministic() {
        let (g, comp) = dataset();
        let mut exec = GcnBatchExecutor::new(&g, &comp, 32, 16, 4);
        let arrivals = generate_arrivals(&ArrivalConfig {
            num_requests: 48,
            mean_interarrival_ms: 0.3,
            num_components: exec.num_components(),
            seed: 5,
        })
        .expect("valid");
        let cfg = ServingConfig {
            streams: 3,
            queue: QueuePolicy { capacity: 24 },
            batch: BatchPolicy {
                max_batch: 6,
                max_delay_ms: 1.5,
            },
            retry: RetryPolicy::default(),
            deadline_ms: None,
        };
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let a = simulate(&engine, &arrivals, &cfg, &mut exec).expect("runs");
        let b = simulate(&engine, &arrivals, &cfg, &mut exec).expect("runs");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.completed as u64 + a.shed, 48);
        assert!(a.p50_ms > 0.0);
        assert!(a.throughput_rps > 0.0);
    }

    #[test]
    fn faulted_serving_retries_gcn_batches() {
        use gnnadvisor_gpu::{FaultConfig, FaultPlan};
        let (g, comp) = dataset();
        let mut exec = GcnBatchExecutor::new(&g, &comp, 32, 16, 4);
        let arrivals = generate_arrivals(&ArrivalConfig {
            num_requests: 32,
            mean_interarrival_ms: 0.3,
            num_components: exec.num_components(),
            seed: 9,
        })
        .expect("valid");
        let cfg = ServingConfig {
            streams: 2,
            queue: QueuePolicy { capacity: 24 },
            batch: BatchPolicy {
                max_batch: 6,
                max_delay_ms: 1.5,
            },
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 0.25,
                seed: 9,
                ..RetryPolicy::default()
            },
            deadline_ms: None,
        };
        let engine = Engine::builder(GpuSpec::quadro_p6000())
            .fault_plan(std::sync::Arc::new(
                FaultPlan::new(FaultConfig::uniform(0.2, 9)).expect("valid"),
            ))
            .build()
            .expect("valid");
        let report = simulate(&engine, &arrivals, &cfg, &mut exec).expect("runs");
        assert_eq!(
            report.completed as u64 + report.shed + report.failed as u64,
            32
        );
        assert!(report.retries > 0, "a 20 % fault rate must trigger retries");
    }
}
