//! Model execution: real numbers plus simulated metrics.
//!
//! [`ModelExec`] wraps an execution strategy (a [`Framework`] and, for
//! GNNAdvisor, a prepared [`Advisor`]) and exposes the two primitives every
//! model is built from:
//!
//! - [`ModelExec::aggregate`] — numerically aggregates neighbor features
//!   *and* records the simulated aggregation-kernel metrics,
//! - [`ModelExec::update_cost`] — records the simulated GEMM cost of a
//!   dense update (the numerical GEMM itself is run by the model).
//!
//! When the advisor renumbers the graph, features flow in original node
//! order; this module permutes them into execution order on entry and back
//! on exit so callers never see renumbered ids.

use gnnadvisor_core::compute::{aggregate_reference, Aggregation};
use gnnadvisor_core::frameworks::{aggregate_with, Framework};
use gnnadvisor_core::runtime::Advisor;
use gnnadvisor_core::Result;
use gnnadvisor_gpu::{Engine, RunMetrics, Workload};
use gnnadvisor_graph::Csr;
use gnnadvisor_tensor::Matrix;

/// Output of a full model forward pass.
#[derive(Debug, Clone)]
pub struct ForwardResult {
    /// Final node embeddings / logits (original node order).
    pub output: Matrix,
    /// Accumulated simulated metrics across every kernel and transfer.
    pub metrics: RunMetrics,
}

/// An execution context binding a graph to a framework strategy.
pub struct ModelExec<'a> {
    engine: &'a Engine,
    graph: &'a Csr,
    framework: Framework,
    advisor: Option<&'a Advisor>,
}

impl<'a> ModelExec<'a> {
    /// Creates a context. For [`Framework::GnnAdvisor`], `advisor` must be
    /// provided and must have been built over `graph`.
    pub fn new(
        engine: &'a Engine,
        graph: &'a Csr,
        framework: Framework,
        advisor: Option<&'a Advisor>,
    ) -> Self {
        Self {
            engine,
            graph,
            framework,
            advisor,
        }
    }

    /// The execution framework.
    pub fn framework(&self) -> Framework {
        self.framework
    }

    /// The graph models should compute against (original ids).
    pub fn graph(&self) -> &Csr {
        self.graph
    }

    /// Numerically aggregates `features` (original node order) and records
    /// the simulated kernel metrics into `metrics`.
    pub fn aggregate(
        &self,
        features: &Matrix,
        op: Aggregation,
        metrics: &mut RunMetrics,
    ) -> Result<Matrix> {
        if features.rows() != self.graph.num_nodes() {
            // Typed error instead of the reference kernel's assert: model
            // forwards sit on the serving path, where a shape mismatch
            // must not abort the process.
            return Err(gnnadvisor_core::CoreError::Tensor(
                gnnadvisor_tensor::TensorError::ShapeMismatch {
                    context: format!(
                        "aggregate features have {} rows but the graph has {} nodes",
                        features.rows(),
                        self.graph.num_nodes()
                    ),
                },
            ));
        }
        let dim = features.cols();
        // Simulated cost.
        let run = match (self.framework, self.advisor) {
            (Framework::GnnAdvisor, Some(adv)) => aggregate_with(
                Framework::GnnAdvisor,
                adv.engine(),
                adv.graph(),
                dim,
                Some(adv),
            )?,
            (fw, _) => aggregate_with(fw, self.engine, self.graph, dim, self.advisor)?,
        };
        metrics.merge(run);

        // Real numbers. The advisor's renumbered graph computes the same
        // multiset of sums; we use the original graph so outputs stay in
        // original node order (the permutation-invariance of aggregation is
        // covered by tests).
        Ok(aggregate_reference(self.graph, features, op))
    }

    /// Records the simulated cost of a dense `rows x in_dim -> out_dim`
    /// update into `metrics`.
    pub fn update_cost(
        &self,
        rows: usize,
        in_dim: usize,
        out_dim: usize,
        metrics: &mut RunMetrics,
    ) {
        let engine = match (self.framework, self.advisor) {
            (Framework::GnnAdvisor, Some(adv)) => adv.engine(),
            _ => self.engine,
        };
        let update = engine
            .submit(
                &mut engine.lock_context(),
                Workload::Gemm {
                    m: rows,
                    n: out_dim,
                    k: in_dim,
                },
            )
            .expect("gemm workloads are infallible")
            .into_kernel();
        metrics.push_kernel(update);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::input::AggOrder;
    use gnnadvisor_core::runtime::AdvisorConfig;
    use gnnadvisor_gpu::GpuSpec;
    use gnnadvisor_graph::generators::barabasi_albert;
    use gnnadvisor_tensor::init::random_features;

    #[test]
    fn aggregate_records_metrics_and_computes() {
        let g = barabasi_albert(200, 4, 9).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let f = random_features(200, 8, 1);
        let mut metrics = RunMetrics::default();
        let out = exec
            .aggregate(&f, Aggregation::Sum, &mut metrics)
            .expect("runs");
        assert_eq!(out.shape(), (200, 8));
        assert_eq!(metrics.kernels.len(), 2, "DGL = stacking + SpMM");
        let reference = aggregate_reference(&g, &f, Aggregation::Sum);
        assert_eq!(out, reference);
    }

    #[test]
    fn advisor_path_matches_baseline_numerics() {
        let g = barabasi_albert(300, 4, 10).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let advisor = Advisor::new(
            &g,
            16,
            16,
            4,
            AggOrder::UpdateThenAggregate,
            AdvisorConfig::default(),
        )
        .expect("builds");
        let ours = ModelExec::new(&engine, &g, Framework::GnnAdvisor, Some(&advisor));
        let theirs = ModelExec::new(&engine, &g, Framework::Pyg, None);
        let f = random_features(300, 16, 2);
        let mut m1 = RunMetrics::default();
        let mut m2 = RunMetrics::default();
        let a = ours
            .aggregate(&f, Aggregation::GcnNorm, &mut m1)
            .expect("runs");
        let b = theirs
            .aggregate(&f, Aggregation::GcnNorm, &mut m2)
            .expect("runs");
        assert!(
            a.max_abs_diff(&b) < 1e-5,
            "numerics are framework-independent"
        );
        assert!(m1.total_ms() > 0.0 && m2.total_ms() > 0.0);
    }

    #[test]
    fn update_cost_accumulates() {
        let g = barabasi_albert(100, 3, 2).expect("valid");
        let engine = Engine::new(GpuSpec::quadro_p6000());
        let exec = ModelExec::new(&engine, &g, Framework::Dgl, None);
        let mut metrics = RunMetrics::default();
        exec.update_cost(100, 64, 16, &mut metrics);
        assert_eq!(metrics.kernels.len(), 1);
        assert!(metrics.compute_ms > 0.0);
    }
}
