//! GNN model architectures executed on the simulated runtime.
//!
//! The paper benchmarks two representative models (Section 8.1.1) plus the
//! GunRock comparison model:
//!
//! - [`gcn::Gcn`] — 2-layer Graph Convolutional Network, hidden dim 16,
//!   update-then-aggregate order (dimension reduction before aggregation).
//! - [`gin::Gin`] — 5-layer Graph Isomorphism Network, hidden dim 64,
//!   aggregate-then-update order with `(1 + eps)` self-weighting and an MLP
//!   update.
//! - [`sage::GraphSage`] — 2-layer GraphSage ("essentially a 2-layer GCN
//!   except for an additional neighbor sampling, which has been disabled
//!   for a fair comparison", Section 8.5) with mean aggregation.
//!
//! Each model does two things at once: it computes *real embeddings* (via
//! `gnnadvisor-core::compute` and `gnnadvisor-tensor`) and it collects
//! *simulated GPU metrics* for every aggregation and update kernel through
//! the [`exec`] module, parameterized by execution [`Framework`].
//!
//! [`Framework`]: gnnadvisor_core::Framework

pub mod batch;
pub mod dynamic;
pub mod exec;
pub mod gat;
pub mod gcn;
pub mod gin;
pub mod minibatch;
pub mod sage;
pub mod serve;
pub mod train;

pub use dynamic::DynamicGcnExecutor;
pub use exec::{ForwardResult, ModelExec};
pub use gat::Gat;
pub use gcn::Gcn;
pub use gin::Gin;
pub use minibatch::{train_minibatch, EpochStats, MiniBatchConfig, MiniBatchReport};
pub use sage::GraphSage;
pub use serve::GcnBatchExecutor;
pub use train::GcnTrainer;
