//! The model half of *dynamic-graph* serving: a GCN snapshot executor.
//!
//! [`gnnadvisor_core::dynamic`] owns the policy side of serving over a
//! mutating graph (update interleaving, copy-on-write snapshots, the
//! locality-triggered re-renumbering policy) but is model-agnostic: it
//! delegates "what does one dispatched batch cost against *this graph
//! version*?" to a [`SnapshotExecutor`]. This module implements that
//! trait for a 2-layer GCN whose aggregation runs the GNNAdvisor kernel
//! (neighbor grouping + shared-memory staging), so the hit-rate the
//! re-renumbering policy watches is the hit-rate the paper's kernel
//! actually achieves on the snapshot's layout:
//!
//! 1. topology is *resident*: the full CSR uploads only when the batch's
//!    snapshot version differs from the device-resident version (a
//!    rebuild or compaction swaps the whole array; steady-state batches
//!    pay nothing for topology);
//! 2. per-request input features copy up, logits copy back;
//! 3. each layer prices a dense update (GEMM), a DGL-style stacking
//!    pass, and the advisor aggregation over the whole snapshot — the
//!    [`SnapshotAggregationKernel`] is prepared once per (version,
//!    layer) and shared across every batch pinned to that version.

use std::sync::Arc;

use gnnadvisor_core::dynamic::{SnapshotAggregationKernel, SnapshotExecutor, SnapshotKernelHandle};
use gnnadvisor_core::kernels::spmm_dgl::StackingKernel;
use gnnadvisor_core::serving::{BatchWork, DeviceWork, DispatchedBatch};
use gnnadvisor_core::{CoreError, Result, RuntimeParams};
use gnnadvisor_graph::Csr;

/// Bytes of one `f32` / one edge index.
const WORD: usize = 4;

/// Plans the device work of GCN inference batches against versioned
/// graph snapshots, modeling resident topology and per-version kernel
/// preparation.
pub struct DynamicGcnExecutor {
    in_dim: usize,
    hidden_dim: usize,
    num_classes: usize,
    params: RuntimeParams,
    /// The graph version whose topology is device-resident, with the
    /// prepared aggregation kernels for the two layer widths.
    resident: Option<Resident>,
}

struct Resident {
    version: u64,
    layers: [Arc<SnapshotAggregationKernel>; 2],
}

impl DynamicGcnExecutor {
    /// An executor pricing an `in_dim -> hidden_dim -> num_classes` GCN
    /// forward per batch, aggregating with the advisor kernel under
    /// `params`.
    pub fn new(
        in_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        params: RuntimeParams,
    ) -> Result<Self> {
        params.validate()?;
        if in_dim == 0 || hidden_dim == 0 || num_classes == 0 {
            return Err(CoreError::InvalidParams {
                reason: "GCN layer dimensionalities must be at least 1".into(),
            });
        }
        Ok(Self {
            in_dim,
            hidden_dim,
            num_classes,
            params,
            resident: None,
        })
    }

    /// The layer dimensionalities, outermost first.
    fn layer_dims(&self) -> [(usize, usize); 2] {
        [
            (self.in_dim, self.hidden_dim),
            (self.hidden_dim, self.num_classes),
        ]
    }
}

impl SnapshotExecutor for DynamicGcnExecutor {
    fn plan(&mut self, batch: &DispatchedBatch, graph: &Csr, version: u64) -> Result<BatchWork> {
        if batch.requests.is_empty() {
            return Ok(BatchWork::default());
        }
        let nodes = graph.num_nodes();
        let edges = graph.num_edges();
        let mut ops = Vec::with_capacity(9);

        // Re-upload topology and re-prepare the aggregation kernels only
        // when the snapshot moved from under us.
        let stale = self.resident.as_ref().is_none_or(|r| r.version != version);
        if stale {
            ops.push(DeviceWork::Transfer {
                bytes: ((nodes + 1 + edges) * WORD) as u64,
            });
            let prepare =
                |dim| SnapshotAggregationKernel::prepare(graph, dim, self.params).map(Arc::new);
            self.resident = Some(Resident {
                version,
                layers: [prepare(self.hidden_dim)?, prepare(self.num_classes)?],
            });
        }
        let resident = self.resident.as_ref().expect("installed above");

        // Host -> device: the batch's input features.
        ops.push(DeviceWork::Transfer {
            bytes: (batch.requests.len() * self.in_dim * WORD) as u64,
        });
        // Update-then-aggregate per layer (the paper's GCN ordering:
        // dimension reduction first makes aggregation cheaper).
        for (layer, (in_dim, out_dim)) in self.layer_dims().into_iter().enumerate() {
            ops.push(DeviceWork::Gemm {
                m: nodes,
                n: out_dim,
                k: in_dim,
            });
            ops.push(DeviceWork::Kernel(Box::new(StackingKernel::new(
                nodes, out_dim,
            ))));
            ops.push(DeviceWork::Kernel(Box::new(SnapshotKernelHandle(
                resident.layers[layer].clone(),
            ))));
        }
        // Device -> host: the batch's logits.
        ops.push(DeviceWork::Transfer {
            bytes: (batch.requests.len() * self.num_classes * WORD) as u64,
        });
        Ok(BatchWork { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_core::serving::Request;
    use gnnadvisor_graph::generators::{community_graph, CommunityParams};

    fn snapshot() -> Csr {
        let params = CommunityParams {
            num_nodes: 400,
            num_edges: 3_200,
            mean_community: 25,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: false,
        };
        community_graph(&params, 3).expect("valid").0
    }

    fn executor() -> DynamicGcnExecutor {
        DynamicGcnExecutor::new(32, 16, 4, RuntimeParams::default()).expect("valid")
    }

    fn batch_of(n: usize) -> DispatchedBatch {
        DispatchedBatch {
            dispatch_ms: 0.0,
            requests: (0..n)
                .map(|id| Request {
                    id,
                    arrival_ms: 0.0,
                    component: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn first_plan_uploads_topology_then_goes_resident() {
        let g = snapshot();
        let mut exec = executor();
        let cold = exec.plan(&batch_of(3), &g, 0).expect("plans");
        // topology + features + 2 layers x (gemm + stacking + advisor) + d2h.
        assert_eq!(cold.ops.len(), 9);
        let topo_bytes = ((g.num_nodes() + 1 + g.num_edges()) * WORD) as u64;
        assert!(matches!(cold.ops[0], DeviceWork::Transfer { bytes } if bytes == topo_bytes));

        let warm = exec.plan(&batch_of(3), &g, 0).expect("plans");
        assert_eq!(warm.ops.len(), 8, "resident topology must not re-upload");
        let feat_bytes = (3 * 32 * WORD) as u64;
        assert!(matches!(warm.ops[0], DeviceWork::Transfer { bytes } if bytes == feat_bytes));
    }

    #[test]
    fn version_change_forces_reupload() {
        let g = snapshot();
        let mut exec = executor();
        exec.plan(&batch_of(2), &g, 0).expect("plans");
        let bumped = exec.plan(&batch_of(2), &g, 1).expect("plans");
        assert_eq!(bumped.ops.len(), 9, "new version must re-upload topology");
        let warm = exec.plan(&batch_of(2), &g, 1).expect("plans");
        assert_eq!(warm.ops.len(), 8);
    }

    #[test]
    fn layer_shapes_follow_the_snapshot() {
        let g = snapshot();
        let mut exec = executor();
        let work = exec.plan(&batch_of(4), &g, 0).expect("plans");
        let n = g.num_nodes();
        assert!(matches!(work.ops[2], DeviceWork::Gemm { m, n: 16, k: 32 } if m == n));
        assert!(matches!(work.ops[5], DeviceWork::Gemm { m, n: 4, k: 16 } if m == n));
        assert!(
            matches!(&work.ops[8], DeviceWork::Transfer { bytes } if *bytes == (4 * 4 * WORD) as u64)
        );
    }

    #[test]
    fn empty_batches_price_nothing() {
        let g = snapshot();
        let mut exec = executor();
        let work = exec.plan(&batch_of(0), &g, 0).expect("plans");
        assert!(work.ops.is_empty());
    }

    #[test]
    fn invalid_dimensions_are_rejected() {
        assert!(DynamicGcnExecutor::new(0, 16, 4, RuntimeParams::default()).is_err());
        assert!(DynamicGcnExecutor::new(32, 0, 4, RuntimeParams::default()).is_err());
        assert!(DynamicGcnExecutor::new(32, 16, 0, RuntimeParams::default()).is_err());
        let bad = RuntimeParams {
            group_size: 0,
            ..RuntimeParams::default()
        };
        assert!(DynamicGcnExecutor::new(32, 16, 4, bad).is_err());
    }
}
