//! Shared experiment plumbing: configuration, model dispatch, and
//! framework execution.

use std::sync::Arc;

use gnnadvisor_core::input::AggOrder;
use gnnadvisor_core::runtime::{Advisor, AdvisorConfig, TuneStrategy};
use gnnadvisor_core::{Framework, Result, RuntimeParams};
use gnnadvisor_datasets::Dataset;
use gnnadvisor_gpu::{Engine, GpuSpec, RunMetrics, TraceRecorder};
use gnnadvisor_models::{Gcn, Gin, GraphSage, ModelExec};
use gnnadvisor_tensor::init::random_features;

/// The GNN architectures benchmarked in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// 2-layer GCN, hidden 16 (Section 8.1.1).
    Gcn,
    /// 5-layer GIN, hidden 64 (Section 8.1.1).
    Gin,
    /// 2-layer GraphSage without sampling (Section 8.5).
    Sage,
}

impl ModelKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::Gin => "GIN",
            ModelKind::Sage => "GraphSage",
        }
    }

    /// Aggregation order of the architecture (Section 4.2).
    pub fn agg_order(&self) -> AggOrder {
        match self {
            ModelKind::Gcn | ModelKind::Sage => AggOrder::UpdateThenAggregate,
            ModelKind::Gin => AggOrder::AggregateThenUpdate,
        }
    }

    /// Hidden dimensionality used by the paper for this model.
    pub fn hidden_dim(&self) -> usize {
        match self {
            ModelKind::Gcn => gnnadvisor_models::gcn::GCN_HIDDEN,
            ModelKind::Gin => gnnadvisor_models::gin::GIN_HIDDEN,
            ModelKind::Sage => gnnadvisor_models::sage::SAGE_HIDDEN,
        }
    }
}

/// Global experiment configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset scale in `(0, 1]` (env `GNNADVISOR_SCALE`, default 0.05).
    pub scale: f64,
    /// Device preset.
    pub spec: GpuSpec,
    /// Feature-matrix seed.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::at_scale(scale_from_env())
    }
}

impl ExperimentConfig {
    /// A configuration at an explicit dataset scale, with the device cache
    /// scaled to match (see [`scaled_spec`]). Prefer this over struct
    /// update on `Default`, which would keep a cache sized for the default
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is a finite number in `(0, 1]` — a zero,
    /// negative, NaN, or oversized scale would silently generate empty or
    /// out-of-profile datasets.
    pub fn at_scale(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "dataset scale must be in (0, 1], got {scale} \
             (check GNNADVISOR_SCALE)"
        );
        Self {
            scale,
            spec: scaled_spec(GpuSpec::quadro_p6000(), scale),
            seed: 7,
        }
    }
}

/// Shrinks a device's cache in proportion to the dataset scale, preserving
/// the full-scale cache-to-working-set ratio. Without this, a 20x-scaled
/// dataset fits entirely in the 3 MB L2 and every locality effect the
/// paper measures (renumbering, Figure 12) vanishes. Compute resources are
/// left untouched — kernels shrink with the dataset naturally.
///
/// # Panics
///
/// Panics unless `scale` is a finite number in `(0, 1]`; a zero or
/// negative scale would shrink the cache model to garbage silently.
pub fn scaled_spec(mut spec: GpuSpec, scale: f64) -> GpuSpec {
    assert!(
        scale.is_finite() && scale > 0.0 && scale <= 1.0,
        "dataset scale must be in (0, 1], got {scale} \
         (check GNNADVISOR_SCALE)"
    );
    spec.l2_bytes = ((spec.l2_bytes as f64 * scale) as usize).max(32 * 1024);
    spec
}

/// Reads `GNNADVISOR_SCALE`, defaulting to 0.05.
///
/// # Panics
///
/// Panics with a pointed message when the variable is set to something
/// that is not a number in `(0, 1]` (zero, negative, NaN, or > 1) —
/// silently clamping a typo like `-0.5` or `5` would run every experiment
/// at an unintended scale.
pub fn scale_from_env() -> f64 {
    let Ok(raw) = std::env::var("GNNADVISOR_SCALE") else {
        return 0.05;
    };
    let parsed = raw.trim().parse::<f64>().ok();
    match parsed {
        Some(s) if s.is_finite() && s > 0.0 && s <= 1.0 => s,
        _ => panic!(
            "GNNADVISOR_SCALE must be a number in (0, 1], got {raw:?}; \
             unset it to use the default 0.05"
        ),
    }
}

/// Builds a GNNAdvisor runtime for a dataset + model pair (auto-tuned with
/// the analytical model; the evolutionary tuner is exercised separately).
pub fn build_advisor(ds: &Dataset, model: ModelKind, spec: &GpuSpec) -> Result<Advisor> {
    Advisor::new(
        &ds.graph,
        ds.feat_dim,
        model.hidden_dim(),
        ds.num_classes,
        model.agg_order(),
        AdvisorConfig {
            spec: spec.clone(),
            ..Default::default()
        },
    )
}

/// Builds an advisor with explicitly overridden runtime parameters (for
/// sweeps and ablations).
pub fn build_advisor_manual(
    ds: &Dataset,
    model: ModelKind,
    spec: &GpuSpec,
    params: RuntimeParams,
) -> Result<Advisor> {
    Advisor::new(
        &ds.graph,
        ds.feat_dim,
        model.hidden_dim(),
        ds.num_classes,
        model.agg_order(),
        AdvisorConfig {
            spec: spec.clone(),
            tune: TuneStrategy::Manual(params),
            ..Default::default()
        },
    )
}

/// Runs a full forward pass of `model` on `ds` under `framework`,
/// returning the simulated metrics. Feature values are deterministic per
/// dataset + seed. For `Framework::GnnAdvisor`, pass a prepared advisor
/// (reuse it across calls — building one runs renumbering).
pub fn run_forward(
    framework: Framework,
    model: ModelKind,
    ds: &Dataset,
    config: &ExperimentConfig,
    advisor: Option<&Advisor>,
) -> Result<RunMetrics> {
    let engine = Engine::new(config.spec.clone());
    forward_on(&engine, framework, model, ds, config, advisor)
}

/// Like [`run_forward`], but with a trace recorder attached to the engine:
/// returns the metrics together with the recorder holding every span of
/// the pass (kernels, shard chunks, hotspots, GEMMs). The advisor is built
/// here, around the traced engine — GNNAdvisor-framework kernels launch on
/// `advisor.engine()`, so an advisor built elsewhere would bypass tracing.
/// Timestamps are simulated cycles: the recorder's chrome JSON is
/// byte-identical run-to-run at any `GNNADVISOR_SIM_THREADS`.
pub fn run_forward_traced(
    framework: Framework,
    model: ModelKind,
    ds: &Dataset,
    config: &ExperimentConfig,
) -> Result<(RunMetrics, Arc<TraceRecorder>)> {
    let tracer = Arc::new(TraceRecorder::new());
    let engine = Engine::builder(config.spec.clone())
        .tracer(Arc::clone(&tracer))
        .build()
        .expect("valid engine configuration");
    let advisor = if framework == Framework::GnnAdvisor {
        Some(Advisor::new(
            &ds.graph,
            ds.feat_dim,
            model.hidden_dim(),
            ds.num_classes,
            model.agg_order(),
            AdvisorConfig {
                spec: config.spec.clone(),
                engine: Some(engine.clone()),
                ..Default::default()
            },
        )?)
    } else {
        None
    };
    let metrics = forward_on(&engine, framework, model, ds, config, advisor.as_ref())?;
    Ok((metrics, tracer))
}

fn forward_on(
    engine: &Engine,
    framework: Framework,
    model: ModelKind,
    ds: &Dataset,
    config: &ExperimentConfig,
    advisor: Option<&Advisor>,
) -> Result<RunMetrics> {
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, config.seed);
    let exec = ModelExec::new(engine, &ds.graph, framework, advisor);
    let metrics = match model {
        ModelKind::Gcn => {
            Gcn::paper_default(ds.feat_dim, ds.num_classes, config.seed)
                .forward(&exec, &features)?
                .metrics
        }
        ModelKind::Gin => {
            Gin::paper_default(ds.feat_dim, ds.num_classes, config.seed)
                .forward(&exec, &features)?
                .metrics
        }
        ModelKind::Sage => {
            GraphSage::paper_default(ds.feat_dim, ds.num_classes, config.seed)
                .forward(&exec, &features)?
                .metrics
        }
    };
    Ok(metrics)
}

/// Reads `GNNADVISOR_TRACE_DIR`: when set, experiment drivers dump one
/// chrome trace per traced run into that directory (created on demand).
pub fn trace_dir_from_env() -> Option<std::path::PathBuf> {
    std::env::var_os("GNNADVISOR_TRACE_DIR").map(std::path::PathBuf::from)
}

/// Writes `tracer`'s chrome://tracing JSON to `<dir>/<name>.trace.json`.
/// Returns the written path, or an IO error message.
pub fn dump_trace(
    tracer: &TraceRecorder,
    dir: &std::path::Path,
    name: &str,
) -> std::result::Result<std::path::PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{name}.trace.json"));
    std::fs::write(&path, tracer.to_chrome_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    #[test]
    fn gcn_forward_on_scaled_cora() {
        let cfg = ExperimentConfig::at_scale(0.05);
        let ds = table1_by_name("Cora")
            .expect("present")
            .generate(cfg.scale)
            .expect("valid");
        let m = run_forward(Framework::Dgl, ModelKind::Gcn, &ds, &cfg, None).expect("runs");
        assert!(m.total_ms() > 0.0);
    }

    #[test]
    fn advisor_beats_dgl_on_scaled_type3() {
        let cfg = ExperimentConfig::at_scale(0.02);
        let ds = table1_by_name("soc-BlogCatalog")
            .expect("present")
            .generate(cfg.scale)
            .expect("valid");
        let adv = build_advisor(&ds, ModelKind::Gcn, &cfg.spec).expect("builds");
        let ours = run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, &cfg, Some(&adv))
            .expect("runs");
        let dgl = run_forward(Framework::Dgl, ModelKind::Gcn, &ds, &cfg, None).expect("runs");
        assert!(
            ours.total_ms() < dgl.total_ms(),
            "advisor {} ms vs DGL {} ms",
            ours.total_ms(),
            dgl.total_ms()
        );
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_scale_rejected() {
        ExperimentConfig::at_scale(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn negative_scale_rejected_by_scaled_spec() {
        scaled_spec(GpuSpec::quadro_p6000(), -0.5);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn oversized_scale_rejected() {
        ExperimentConfig::at_scale(1.5);
    }

    #[test]
    fn model_kinds_expose_paper_shapes() {
        assert_eq!(ModelKind::Gcn.hidden_dim(), 16);
        assert_eq!(ModelKind::Gin.hidden_dim(), 64);
        assert_eq!(ModelKind::Gin.agg_order(), AggOrder::AggregateThenUpdate);
    }
}
