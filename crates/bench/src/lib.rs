//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 8).
//!
//! Each experiment lives in [`experiments`] as a pure function returning a
//! serializable result plus a printer that emits the same rows/series the
//! paper reports. Thin binaries under `src/bin/` wrap them:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table 1 (datasets) | `table1_datasets` |
//! | Figure 8 (speedup vs DGL) | `fig08_dgl_speedup` |
//! | Figure 9 (kernel metrics vs DGL) | `fig09_kernel_metrics` |
//! | Figure 10a/10b (PyG, GunRock) | `fig10_pyg_gunrock` |
//! | Table 2 (NeuGraph) | `table2_neugraph` |
//! | Figure 11a–c (parameter sweeps) | `fig11_param_sweeps` |
//! | Figure 12a–c (renumbering + block opts) | `fig12_renumbering_block` |
//! | Figure 13a–c + Table 3 (case studies) | `fig13_case_studies` |
//! | everything, plus EXPERIMENTS.md data | `run_all` |
//!
//! Absolute times come from the deterministic GPU simulator, so the point
//! of comparison with the paper is *shape* (who wins, by what factor,
//! where the crossovers sit), not milliseconds. Set `GNNADVISOR_SCALE`
//! (default 0.05) to trade fidelity for runtime; every binary honors it.

pub mod experiments;
pub mod report;
pub mod runner;

pub use runner::{dump_trace, run_forward_traced, trace_dir_from_env, ExperimentConfig, ModelKind};
