//! Table printing and summary statistics for experiment output.

/// Geometric mean of positive values; 0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A simple aligned-column text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[String]) {
        let mut row = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table with padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a speedup as the paper prints them, e.g. `4.03x`.
pub fn speedup(baseline_ms: f64, ours_ms: f64) -> f64 {
    if ours_ms <= 0.0 {
        0.0
    } else {
        baseline_ms / ours_ms
    }
}

/// Writes a serializable experiment result as JSON under
/// `target/experiments/<name>.json`, creating the directory as needed.
pub fn write_json<T: serde::Serialize>(
    name: &str,
    value: &T,
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn speedup_guards_zero() {
        assert_eq!(speedup(10.0, 0.0), 0.0);
        assert!((speedup(10.0, 2.5) - 4.0).abs() < 1e-12);
    }
}
