//! Figure 12: node renumbering (a, b) and block-level optimization (c).
//!
//! Paper reference: renumbering brings up to 1.74x (GCN) / 1.49x (GIN)
//! speedup and cuts DRAM access ~40% on Type III, weakest on `artist`
//! (high community-size variance); block-level optimizations cut atomics
//! 47.85% and DRAM 57.93% on three large graphs.

use gnnadvisor_core::Framework;
use gnnadvisor_datasets::TYPE_III;
use serde::{Deserialize, Serialize};

use crate::report::{mean, Table};
use crate::runner::{build_advisor_manual, run_forward, ExperimentConfig, ModelKind};
use gnnadvisor_core::RuntimeParams;

/// Renumbering effect on one dataset × model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RenumberRow {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Runtime without renumbering, ms.
    pub off_ms: f64,
    /// Runtime with renumbering, ms.
    pub on_ms: f64,
    /// Speedup from renumbering.
    pub speedup: f64,
    /// DRAM bytes without renumbering.
    pub off_dram: u64,
    /// DRAM bytes with renumbering.
    pub on_dram: u64,
    /// DRAM reduction percent.
    pub dram_reduction_pct: f64,
}

/// Block-level-optimization effect on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockOptRow {
    /// Dataset name.
    pub dataset: String,
    /// Atomic ops without block-level optimization.
    pub off_atomics: u64,
    /// Atomic ops with it.
    pub on_atomics: u64,
    /// Atomic reduction percent.
    pub atomic_reduction_pct: f64,
    /// DRAM bytes without.
    pub off_dram: u64,
    /// DRAM bytes with.
    pub on_dram: u64,
    /// DRAM reduction percent.
    pub dram_reduction_pct: f64,
}

/// Full Figure 12 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Dataset scale used.
    pub scale: f64,
    /// 12a/12b rows (Type III × {GCN, GIN}).
    pub renumber: Vec<RenumberRow>,
    /// 12c rows (three large graphs).
    pub block_opt: Vec<BlockOptRow>,
    /// Mean DRAM reduction from renumbering, GCN (%).
    pub gcn_mean_dram_reduction: f64,
    /// Mean DRAM reduction from renumbering, GIN (%).
    pub gin_mean_dram_reduction: f64,
    /// Mean atomic reduction from block-level optimization (%).
    pub mean_atomic_reduction: f64,
    /// Mean DRAM reduction from block-level optimization (%).
    pub mean_block_dram_reduction: f64,
}

/// Manual params for the ablation: fixed sensible settings so the only
/// variable is the toggle under study.
fn base_params() -> RuntimeParams {
    RuntimeParams {
        group_size: 4,
        threads_per_block: 256,
        dim_workers: 16,
        use_shared: true,
        renumber: true,
    }
}

fn aggregation_dram(m: &gnnadvisor_gpu::RunMetrics) -> u64 {
    m.kernels
        .iter()
        .filter(|k| !k.name.starts_with("gemm"))
        .map(|k| k.dram_bytes())
        .sum()
}

fn aggregation_atomics(m: &gnnadvisor_gpu::RunMetrics) -> u64 {
    m.kernels.iter().map(|k| k.atomic_ops).sum()
}

/// Runs both halves of Figure 12.
pub fn run(cfg: &ExperimentConfig) -> Fig12Result {
    let mut renumber = Vec::new();
    for spec in TYPE_III {
        let ds = spec.generate(cfg.scale).expect("dataset generates");
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            let on_params = base_params();
            let off_params = RuntimeParams {
                renumber: false,
                ..on_params
            };
            let on = build_advisor_manual(&ds, model, &cfg.spec, on_params).expect("builds");
            let off = build_advisor_manual(&ds, model, &cfg.spec, off_params).expect("builds");
            let m_on =
                run_forward(Framework::GnnAdvisor, model, &ds, cfg, Some(&on)).expect("runs");
            let m_off =
                run_forward(Framework::GnnAdvisor, model, &ds, cfg, Some(&off)).expect("runs");
            let (on_dram, off_dram) = (aggregation_dram(&m_on), aggregation_dram(&m_off));
            renumber.push(RenumberRow {
                dataset: spec.name.to_string(),
                model: model.name().to_string(),
                off_ms: m_off.total_ms(),
                on_ms: m_on.total_ms(),
                speedup: m_off.total_ms() / m_on.total_ms().max(1e-12),
                off_dram,
                on_dram,
                dram_reduction_pct: (1.0 - on_dram as f64 / off_dram.max(1) as f64) * 100.0,
            });
        }
    }

    // 12c on the three largest Type III graphs, GCN.
    let mut block_opt = Vec::new();
    for spec in [&TYPE_III[0], &TYPE_III[3], &TYPE_III[4]] {
        let ds = spec.generate(cfg.scale).expect("dataset generates");
        let on_params = base_params();
        let off_params = RuntimeParams {
            use_shared: false,
            ..on_params
        };
        let on = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, on_params).expect("builds");
        let off = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, off_params).expect("builds");
        let m_on =
            run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, cfg, Some(&on)).expect("runs");
        let m_off =
            run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, cfg, Some(&off)).expect("runs");
        let (on_a, off_a) = (aggregation_atomics(&m_on), aggregation_atomics(&m_off));
        let (on_d, off_d) = (aggregation_dram(&m_on), aggregation_dram(&m_off));
        block_opt.push(BlockOptRow {
            dataset: spec.name.to_string(),
            off_atomics: off_a,
            on_atomics: on_a,
            atomic_reduction_pct: (1.0 - on_a as f64 / off_a.max(1) as f64) * 100.0,
            off_dram: off_d,
            on_dram: on_d,
            dram_reduction_pct: (1.0 - on_d as f64 / off_d.max(1) as f64) * 100.0,
        });
    }

    let pick = |model: &str| {
        renumber
            .iter()
            .filter(|r| r.model == model)
            .map(|r| r.dram_reduction_pct)
            .collect::<Vec<_>>()
    };
    Fig12Result {
        scale: cfg.scale,
        gcn_mean_dram_reduction: mean(&pick("GCN")),
        gin_mean_dram_reduction: mean(&pick("GIN")),
        mean_atomic_reduction: mean(
            &block_opt
                .iter()
                .map(|r| r.atomic_reduction_pct)
                .collect::<Vec<_>>(),
        ),
        mean_block_dram_reduction: mean(
            &block_opt
                .iter()
                .map(|r| r.dram_reduction_pct)
                .collect::<Vec<_>>(),
        ),
        renumber,
        block_opt,
    }
}

/// Prints all three panels.
pub fn print(result: &Fig12Result) {
    println!(
        "Figure 12a/b: node renumbering impact (scale {}).\n\
         Paper reference: up to 1.74x (GCN) / 1.49x (GIN) speedup,\n\
         ~40.62% / 42.33% DRAM reduction; weakest on artist.\n",
        result.scale
    );
    let mut t = Table::new(&[
        "Dataset",
        "Model",
        "w/o renum (ms)",
        "w/ renum (ms)",
        "Speedup",
        "DRAM reduction",
    ]);
    for r in &result.renumber {
        t.row(&[
            r.dataset.clone(),
            r.model.clone(),
            format!("{:.4}", r.off_ms),
            format!("{:.4}", r.on_ms),
            format!("{:.2}x", r.speedup),
            format!("{:.1}%", r.dram_reduction_pct),
        ]);
    }
    t.print();
    println!(
        "\nMean DRAM reduction: GCN {:.1}%, GIN {:.1}%\n",
        result.gcn_mean_dram_reduction, result.gin_mean_dram_reduction
    );

    println!(
        "Figure 12c: block-level optimization impact.\n\
         Paper reference: atomics -47.85%, DRAM -57.93% on average.\n"
    );
    let mut t = Table::new(&[
        "Dataset",
        "Atomics (off)",
        "Atomics (on)",
        "Atomic redn",
        "DRAM (off)",
        "DRAM (on)",
        "DRAM redn",
    ]);
    for r in &result.block_opt {
        t.row(&[
            r.dataset.clone(),
            r.off_atomics.to_string(),
            r.on_atomics.to_string(),
            format!("{:.1}%", r.atomic_reduction_pct),
            r.off_dram.to_string(),
            r.on_dram.to_string(),
            format!("{:.1}%", r.dram_reduction_pct),
        ]);
    }
    t.print();
    println!(
        "\nMean reductions: atomics {:.1}%, DRAM {:.1}%",
        result.mean_atomic_reduction, result.mean_block_dram_reduction
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    #[test]
    fn block_opt_reduces_atomics_on_blogcatalog() {
        let cfg = ExperimentConfig::at_scale(0.01);
        let spec = table1_by_name("soc-BlogCatalog").expect("present");
        let ds = spec.generate(cfg.scale).expect("valid");
        let on = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, base_params()).expect("b");
        let off_params = RuntimeParams {
            use_shared: false,
            ..base_params()
        };
        let off = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, off_params).expect("b");
        let m_on =
            run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, &cfg, Some(&on)).expect("r");
        let m_off =
            run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, &cfg, Some(&off)).expect("r");
        assert!(
            aggregation_atomics(&m_on) < aggregation_atomics(&m_off),
            "{} vs {}",
            aggregation_atomics(&m_on),
            aggregation_atomics(&m_off)
        );
    }
}
