//! Chaos scenario: serving under injected device faults.
//!
//! The reliability layer's claim is that bounded retries with backoff
//! restore *goodput* (in-deadline completions per second) when the device
//! injects transfer failures, kernel slowdowns, and timeouts. This
//! experiment prices the exact same arrival trace, batching plan, and GCN
//! batch executor against the same seeded [`FaultPlan`] twice — once with
//! retries disabled (every faulted batch fails outright) and once with a
//! retry budget — and reports completions, failures, and goodput side by
//! side. Everything is seeded, so the chaos run replays bit-for-bit.

use gnnadvisor_core::serving::{
    generate_arrivals, simulate, ArrivalConfig, BatchPolicy, QueuePolicy, RetryPolicy,
    ServingConfig, ServingReport,
};
use gnnadvisor_gpu::{Engine, FaultConfig, FaultPlan};
use gnnadvisor_graph::generators::{batched_graph, BatchedParams};
use gnnadvisor_models::GcnBatchExecutor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::report::Table;
use crate::runner::ExperimentConfig;

/// Injected fault rate of the scenario — high enough that several batches
/// fault, low enough that a small retry budget absorbs nearly all of them.
pub const FAULT_RATE: f64 = 0.2;

/// One retry policy's outcome under the shared fault plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Retries per faulted batch (attempts − 1).
    pub retries: usize,
    /// Requests whose batch completed.
    pub completed: usize,
    /// Requests whose batch exhausted every attempt.
    pub failed: usize,
    /// Batch re-submissions the retry layer issued.
    pub batch_retries: u64,
    /// Completions per simulated second.
    pub goodput_rps: f64,
}

/// Full scenario result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Requests in the trace.
    pub requests: usize,
    /// Injected fault rate shared by every row.
    pub fault_rate: f64,
    /// No-retry and with-retry rows, ascending retry budget.
    pub rows: Vec<Row>,
    /// With-retry goodput over no-retry goodput.
    pub goodput_recovery: f64,
}

fn report_for(retries: usize, cfg: &ExperimentConfig) -> ServingReport {
    let nodes = ((8_000.0 * (cfg.scale / 0.05)) as usize).clamp(800, 80_000);
    let (graph, components) = batched_graph(
        &BatchedParams {
            num_nodes: nodes,
            num_edges: nodes * 4,
            mean_graph_size: 100,
            graph_size_cv: 0.4,
        },
        cfg.seed.wrapping_add(31),
    )
    .expect("valid batched dataset");
    let mut exec = GcnBatchExecutor::new(&graph, &components, 256, 64, 10);
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: 96,
        mean_interarrival_ms: 0.05,
        num_components: exec.num_components(),
        seed: cfg.seed.wrapping_add(7),
    })
    .expect("valid arrival config");
    let serving = ServingConfig {
        streams: 2,
        queue: QueuePolicy { capacity: 96 },
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ms: 1.0,
        },
        retry: RetryPolicy {
            max_attempts: retries + 1,
            backoff_base_ms: 0.25,
            seed: cfg.seed,
            ..RetryPolicy::default()
        },
        deadline_ms: None,
    };
    // A fresh engine per run: both rows see the identical fault sequence
    // (the plan's op counter restarts), so retries are the only variable.
    let engine = Engine::builder(cfg.spec.clone())
        .fault_plan(Arc::new(
            FaultPlan::new(FaultConfig::uniform(FAULT_RATE, cfg.seed)).expect("valid fault rate"),
        ))
        .build()
        .expect("valid engine configuration");
    simulate(&engine, &arrivals, &serving, &mut exec).expect("serving simulation runs")
}

/// Runs the no-retry vs retry comparison under the shared fault plan.
pub fn run(cfg: &ExperimentConfig) -> ChaosResult {
    let budgets = [0usize, 3];
    let reports: Vec<(usize, ServingReport)> =
        budgets.iter().map(|&r| (r, report_for(r, cfg))).collect();
    let no_retry = reports[0].1.goodput_rps;
    let with_retry = reports[1].1.goodput_rps;
    ChaosResult {
        requests: 96,
        fault_rate: FAULT_RATE,
        rows: reports
            .into_iter()
            .map(|(retries, r)| Row {
                retries,
                completed: r.completed,
                failed: r.failed,
                batch_retries: r.retries,
                goodput_rps: r.goodput_rps,
            })
            .collect(),
        goodput_recovery: with_retry / no_retry.max(1e-12),
    }
}

/// Prints the scenario in paper-table style.
pub fn print(result: &ChaosResult) {
    println!(
        "chaos: {} requests at fault rate {}, retry vs no-retry",
        result.requests, result.fault_rate
    );
    let mut t = Table::new(&["retries", "completed", "failed", "resubmits", "goodput"]);
    for row in &result.rows {
        t.row(&[
            row.retries.to_string(),
            row.completed.to_string(),
            row.failed.to_string(),
            row.batch_retries.to_string(),
            format!("{:.1}", row.goodput_rps),
        ]);
    }
    println!("{}", t.render());
    println!(
        "retries with backoff recover {:.2}x the no-retry goodput",
        result.goodput_recovery
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_recover_goodput_and_are_deterministic() {
        let cfg = ExperimentConfig::at_scale(0.05);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "scenario must be deterministic"
        );
        let no_retry = &a.rows[0];
        let with_retry = &a.rows[1];
        assert!(
            no_retry.failed > 0,
            "a {FAULT_RATE} fault rate must fail batches without retries"
        );
        assert!(with_retry.batch_retries > 0);
        assert!(with_retry.completed > no_retry.completed);
        assert!(
            with_retry.goodput_rps > no_retry.goodput_rps,
            "retry goodput {} must beat no-retry goodput {}",
            with_retry.goodput_rps,
            no_retry.goodput_rps
        );
        assert!(a.goodput_recovery > 1.0);
    }
}
