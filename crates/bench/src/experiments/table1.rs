//! Table 1: the dataset inventory, printed with both the published
//! statistics and the properties of the synthesized stand-ins.

use gnnadvisor_datasets::{all_table1, DatasetSpec};
use gnnadvisor_graph::stats::DegreeStats;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::runner::ExperimentConfig;

/// One dataset row: the spec plus generated-graph statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Dataset name.
    pub name: String,
    /// Structural type label.
    pub ty: String,
    /// Published node count.
    pub spec_nodes: usize,
    /// Published edge count.
    pub spec_edges: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Class count.
    pub classes: usize,
    /// Generated node count at the configured scale.
    pub gen_nodes: usize,
    /// Generated edge count.
    pub gen_edges: usize,
    /// Generated mean degree.
    pub gen_avg_degree: f64,
    /// Generated degree stddev.
    pub gen_degree_stddev: f64,
}

/// Full Table 1 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Scale the graphs were generated at.
    pub scale: f64,
    /// All 15 rows in paper order.
    pub rows: Vec<Row>,
}

/// Generates every Table 1 dataset at the configured scale and records the
/// published-vs-generated statistics.
pub fn run(cfg: &ExperimentConfig) -> Table1Result {
    let rows = all_table1()
        .into_iter()
        .map(|spec: DatasetSpec| {
            let ds = spec
                .generate(cfg.scale)
                .expect("table1 datasets must generate");
            let stats = DegreeStats::of(&ds.graph);
            Row {
                name: spec.name.to_string(),
                ty: spec.ty.label().to_string(),
                spec_nodes: spec.num_nodes,
                spec_edges: spec.num_edges,
                dim: spec.feat_dim,
                classes: spec.num_classes,
                gen_nodes: ds.graph.num_nodes(),
                gen_edges: ds.graph.num_edges(),
                gen_avg_degree: stats.mean,
                gen_degree_stddev: stats.stddev,
            }
        })
        .collect();
    Table1Result {
        scale: cfg.scale,
        rows,
    }
}

/// Prints the paper-style table.
pub fn print(result: &Table1Result) {
    println!(
        "Table 1: Datasets for Evaluation (generated at scale {}).\n",
        result.scale
    );
    let mut t = Table::new(&[
        "Dataset",
        "Type",
        "#Vertex",
        "#Edge",
        "#Dim",
        "#Cls",
        "gen #V",
        "gen #E",
        "avg deg",
        "deg stddev",
    ]);
    for r in &result.rows {
        t.row(&[
            r.name.clone(),
            r.ty.clone(),
            r.spec_nodes.to_string(),
            r.spec_edges.to_string(),
            r.dim.to_string(),
            r.classes.to_string(),
            r.gen_nodes.to_string(),
            r.gen_edges.to_string(),
            format!("{:.1}", r.gen_avg_degree),
            format!("{:.1}", r.gen_degree_stddev),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let cfg = ExperimentConfig::at_scale(0.005);
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 15);
        assert!(r.rows.iter().all(|row| row.gen_edges > 0));
    }
}
