//! Figure 10: comparisons with PyG (Type II) and GunRock (Type III).
//!
//! Paper reference: vs PyG, 46.24x (GCN) and 13.39x (GIN) average on the
//! Type II sets, peaking on the high-dimensional TWITTER-Partial; vs
//! GunRock's GraphSage, 27.18x–100.01x on the Type III graphs, largest on
//! big high-dimensional inputs like soc-BlogCatalog.

use gnnadvisor_core::Framework;
use gnnadvisor_datasets::{TYPE_II, TYPE_III};
use serde::{Deserialize, Serialize};

use crate::report::{geomean, Table};
use crate::runner::{build_advisor, run_forward, ExperimentConfig, ModelKind};

/// One comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Baseline framework name.
    pub baseline: String,
    /// GNNAdvisor time, ms.
    pub advisor_ms: f64,
    /// Baseline time, ms.
    pub baseline_ms: f64,
    /// Speedup.
    pub speedup: f64,
}

/// Full Figure 10 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Dataset scale used.
    pub scale: f64,
    /// 10a rows: PyG on Type II, GCN + GIN.
    pub pyg_rows: Vec<Row>,
    /// 10b rows: GunRock GraphSage on Type III.
    pub gunrock_rows: Vec<Row>,
    /// Geomean PyG speedup, GCN.
    pub pyg_gcn_mean: f64,
    /// Geomean PyG speedup, GIN.
    pub pyg_gin_mean: f64,
    /// Min and max GunRock speedups.
    pub gunrock_range: (f64, f64),
}

fn compare(
    cfg: &ExperimentConfig,
    spec: &gnnadvisor_datasets::DatasetSpec,
    model: ModelKind,
    baseline: Framework,
) -> Row {
    let ds = spec.generate(cfg.scale).expect("dataset generates");
    let advisor = build_advisor(&ds, model, &cfg.spec).expect("advisor builds");
    let ours =
        run_forward(Framework::GnnAdvisor, model, &ds, cfg, Some(&advisor)).expect("advisor runs");
    let other = run_forward(baseline, model, &ds, cfg, None).expect("baseline runs");
    Row {
        dataset: spec.name.to_string(),
        model: model.name().to_string(),
        baseline: baseline.name().to_string(),
        advisor_ms: ours.total_ms(),
        baseline_ms: other.total_ms(),
        speedup: other.total_ms() / ours.total_ms().max(1e-12),
    }
}

/// Runs both halves of Figure 10.
pub fn run(cfg: &ExperimentConfig) -> Fig10Result {
    let mut pyg_rows = Vec::new();
    for spec in TYPE_II {
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            pyg_rows.push(compare(cfg, spec, model, Framework::Pyg));
        }
    }
    let mut gunrock_rows = Vec::new();
    for spec in TYPE_III {
        gunrock_rows.push(compare(cfg, spec, ModelKind::Sage, Framework::Gunrock));
    }
    let gcn: Vec<f64> = pyg_rows
        .iter()
        .filter(|r| r.model == "GCN")
        .map(|r| r.speedup)
        .collect();
    let gin: Vec<f64> = pyg_rows
        .iter()
        .filter(|r| r.model == "GIN")
        .map(|r| r.speedup)
        .collect();
    let gr_min = gunrock_rows
        .iter()
        .map(|r| r.speedup)
        .fold(f64::INFINITY, f64::min);
    let gr_max = gunrock_rows.iter().map(|r| r.speedup).fold(0.0, f64::max);
    Fig10Result {
        scale: cfg.scale,
        pyg_rows,
        gunrock_rows,
        pyg_gcn_mean: geomean(&gcn),
        pyg_gin_mean: geomean(&gin),
        gunrock_range: (gr_min, gr_max),
    }
}

/// Prints both sub-figures.
pub fn print(result: &Fig10Result) {
    println!(
        "Figure 10a: speedup over PyG on Type II (scale {}).\n\
         Paper reference: 46.24x (GCN), 13.39x (GIN) average.\n",
        result.scale
    );
    let mut t = Table::new(&["Dataset", "Model", "GNNAdvisor (ms)", "PyG (ms)", "Speedup"]);
    for r in &result.pyg_rows {
        t.row(&[
            r.dataset.clone(),
            r.model.clone(),
            format!("{:.4}", r.advisor_ms),
            format!("{:.4}", r.baseline_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    println!(
        "\nGeomean: GCN {:.2}x, GIN {:.2}x\n",
        result.pyg_gcn_mean, result.pyg_gin_mean
    );

    println!(
        "Figure 10b: speedup over GunRock (GraphSage, sampling disabled) on Type III.\n\
         Paper reference: 27.18x to 100.01x.\n"
    );
    let mut t = Table::new(&["Dataset", "GNNAdvisor (ms)", "GunRock (ms)", "Speedup"]);
    for r in &result.gunrock_rows {
        t.row(&[
            r.dataset.clone(),
            format!("{:.4}", r.advisor_ms),
            format!("{:.4}", r.baseline_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    println!(
        "\nRange: {:.2}x to {:.2}x",
        result.gunrock_range.0, result.gunrock_range.1
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    #[test]
    fn pyg_gap_largest_on_high_dim_gcn() {
        // Section 8.3: "For GCN, GNNAdvisor achieves significant speedup on
        // datasets with high-dimensional node embedding, such as
        // TWITTER-Partial, through node dimension reduction before
        // aggregation" — PyG aggregates at the full 1323 dims while the
        // advisor reduces to 16 first.
        let cfg = ExperimentConfig::at_scale(0.04);
        let twitter = table1_by_name("TWITTER-Partial").expect("present");
        let proteins = table1_by_name("PROTEINS_full").expect("present");
        let hi = compare(&cfg, &twitter, ModelKind::Gcn, Framework::Pyg);
        let lo = compare(&cfg, &proteins, ModelKind::Gcn, Framework::Pyg);
        assert!(hi.speedup > 1.0 && lo.speedup > 1.0);
        assert!(
            hi.speedup > lo.speedup * 1.5,
            "1323-dim TWITTER must widen the PyG gap decisively: {} vs {}",
            hi.speedup,
            lo.speedup
        );
    }

    #[test]
    fn gunrock_gap_is_order_of_magnitude() {
        let cfg = ExperimentConfig::at_scale(0.01);
        let blog = table1_by_name("soc-BlogCatalog").expect("present");
        let row = compare(&cfg, &blog, ModelKind::Sage, Framework::Gunrock);
        assert!(row.speedup > 10.0, "got only {:.2}x", row.speedup);
    }
}
