//! Figure 9: GPU kernel metrics vs DGL — SM efficiency and cache hit rate.
//!
//! Paper reference: GNNAdvisor achieves on average +24.47% (GCN) and
//! +12.02% (GIN) SM efficiency, and +75.55% / +126.20% relatively better
//! cache hit rate. Shape to reproduce: both metrics higher for GNNAdvisor
//! on (almost) every dataset, with the cache advantage the larger of the
//! two.

use gnnadvisor_core::Framework;
use gnnadvisor_datasets::all_table1;
use serde::{Deserialize, Serialize};

use crate::report::{mean, Table};
use crate::runner::{build_advisor, run_forward, ExperimentConfig, ModelKind};

/// One dataset × model metric comparison (aggregation kernels only — the
/// paper profiles the aggregation phase, not the shared cuBLAS updates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// GNNAdvisor SM efficiency (0–1).
    pub advisor_sm_eff: f64,
    /// DGL SM efficiency.
    pub dgl_sm_eff: f64,
    /// GNNAdvisor cache hit rate (0–1).
    pub advisor_cache: f64,
    /// DGL cache hit rate.
    pub dgl_cache: f64,
}

/// Full Figure 9 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Dataset scale used.
    pub scale: f64,
    /// All rows.
    pub rows: Vec<Row>,
    /// Mean absolute SM-efficiency advantage (percentage points), GCN.
    pub gcn_sm_eff_gain_pp: f64,
    /// Mean absolute SM-efficiency advantage, GIN.
    pub gin_sm_eff_gain_pp: f64,
    /// Mean relative cache-hit-rate improvement (%), GCN.
    pub gcn_cache_gain_pct: f64,
    /// Mean relative cache-hit-rate improvement (%), GIN.
    pub gin_cache_gain_pct: f64,
}

fn aggregation_only(metrics: &gnnadvisor_gpu::RunMetrics) -> (f64, f64) {
    let agg: Vec<_> = metrics
        .kernels
        .iter()
        .filter(|k| !k.name.starts_with("gemm"))
        .cloned()
        .collect();
    let mut filtered = gnnadvisor_gpu::RunMetrics::default();
    for k in agg {
        filtered.push_kernel(k);
    }
    (filtered.mean_sm_efficiency(), filtered.cache_hit_rate())
}

/// Runs the metric sweep.
pub fn run(cfg: &ExperimentConfig) -> Fig9Result {
    let mut rows = Vec::new();
    for spec in all_table1() {
        let ds = spec.generate(cfg.scale).expect("dataset generates");
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            let advisor = build_advisor(&ds, model, &cfg.spec).expect("advisor builds");
            let ours = run_forward(Framework::GnnAdvisor, model, &ds, cfg, Some(&advisor))
                .expect("advisor runs");
            let dgl = run_forward(Framework::Dgl, model, &ds, cfg, None).expect("dgl runs");
            let (our_eff, our_cache) = aggregation_only(&ours);
            let (dgl_eff, dgl_cache) = aggregation_only(&dgl);
            rows.push(Row {
                dataset: spec.name.to_string(),
                model: model.name().to_string(),
                advisor_sm_eff: our_eff,
                dgl_sm_eff: dgl_eff,
                advisor_cache: our_cache,
                dgl_cache,
            });
        }
    }
    let gain_pp = |m: &str| {
        mean(
            &rows
                .iter()
                .filter(|r| r.model == m)
                .map(|r| (r.advisor_sm_eff - r.dgl_sm_eff) * 100.0)
                .collect::<Vec<_>>(),
        )
    };
    let cache_pct = |m: &str| {
        mean(
            &rows
                .iter()
                .filter(|r| r.model == m)
                .map(|r| (r.advisor_cache / r.dgl_cache.max(1e-9) - 1.0) * 100.0)
                .collect::<Vec<_>>(),
        )
    };
    Fig9Result {
        scale: cfg.scale,
        gcn_sm_eff_gain_pp: gain_pp("GCN"),
        gin_sm_eff_gain_pp: gain_pp("GIN"),
        gcn_cache_gain_pct: cache_pct("GCN"),
        gin_cache_gain_pct: cache_pct("GIN"),
        rows,
    }
}

/// Prints the paper-style figure data.
pub fn print(result: &Fig9Result) {
    println!(
        "Figure 9: kernel metrics vs DGL (scale {}).\n\
         Paper reference: SM efficiency +24.47pp (GCN) / +12.02pp (GIN);\n\
         cache hit rate +75.55% (GCN) / +126.20% (GIN) relative.\n",
        result.scale
    );
    let mut t = Table::new(&[
        "Dataset",
        "Model",
        "SM eff (ours)",
        "SM eff (DGL)",
        "Cache (ours)",
        "Cache (DGL)",
    ]);
    for r in &result.rows {
        t.row(&[
            r.dataset.clone(),
            r.model.clone(),
            format!("{:.1}%", r.advisor_sm_eff * 100.0),
            format!("{:.1}%", r.dgl_sm_eff * 100.0),
            format!("{:.1}%", r.advisor_cache * 100.0),
            format!("{:.1}%", r.dgl_cache * 100.0),
        ]);
    }
    t.print();
    println!(
        "\nMean gains: SM eff +{:.1}pp (GCN) / +{:.1}pp (GIN); cache +{:.1}% (GCN) / +{:.1}% (GIN)",
        result.gcn_sm_eff_gain_pp,
        result.gin_sm_eff_gain_pp,
        result.gcn_cache_gain_pct,
        result.gin_cache_gain_pct
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    #[test]
    fn advisor_metrics_beat_dgl_on_type3() {
        let cfg = ExperimentConfig::at_scale(0.02);
        let ds = table1_by_name("amazon0505")
            .expect("present")
            .generate(cfg.scale)
            .expect("valid");
        let advisor = build_advisor(&ds, ModelKind::Gcn, &cfg.spec).expect("builds");
        let ours = run_forward(
            Framework::GnnAdvisor,
            ModelKind::Gcn,
            &ds,
            &cfg,
            Some(&advisor),
        )
        .expect("runs");
        let dgl = run_forward(Framework::Dgl, ModelKind::Gcn, &ds, &cfg, None).expect("runs");
        let (our_eff, our_cache) = aggregation_only(&ours);
        let (dgl_eff, dgl_cache) = aggregation_only(&dgl);
        assert!(our_eff > dgl_eff, "SM eff {our_eff} vs {dgl_eff}");
        assert!(our_cache > dgl_cache, "cache {our_cache} vs {dgl_cache}");
    }
}
