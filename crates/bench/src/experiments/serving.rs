//! Serving scenario: serialized vs. overlapped streams.
//!
//! The multi-stream runtime's claim is that copy/compute overlap and SM
//! co-residency shrink the *makespan* of a served request trace without
//! changing any per-batch cost. This experiment prices the exact same
//! arrival trace, batching plan, and GCN batch executor twice — once on a
//! single stream (fully serialized, the CUDA default-stream behaviour)
//! and once across several streams — and reports latency percentiles,
//! throughput, and the makespan ratio.

use gnnadvisor_core::serving::{
    generate_arrivals, simulate, ArrivalConfig, BatchPolicy, QueuePolicy, RetryPolicy,
    ServingConfig, ServingReport,
};
use gnnadvisor_gpu::Engine;
use gnnadvisor_graph::generators::{batched_graph, BatchedParams};
use gnnadvisor_models::GcnBatchExecutor;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::runner::ExperimentConfig;

/// One serving configuration's outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Stream count of this run.
    pub streams: usize,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// Tail latency, ms.
    pub p99_ms: f64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Schedule makespan, ms.
    pub makespan_ms: f64,
}

/// Full scenario result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingResult {
    /// Requests in the trace.
    pub requests: usize,
    /// Requests shed by the admission queue (identical on every row —
    /// shedding is a policy decision, not a scheduling one).
    pub shed: u64,
    /// Serialized (1 stream) and overlapped rows, ascending stream count.
    pub rows: Vec<Row>,
    /// Serialized makespan over the best overlapped makespan.
    pub overlap_speedup: f64,
}

fn report_for(streams: usize, cfg: &ExperimentConfig) -> ServingReport {
    // A Type II batched dataset: many small independent graphs, the
    // workload class the paper serves with mini-batching (Section 8.3).
    let nodes = ((8_000.0 * (cfg.scale / 0.05)) as usize).clamp(800, 80_000);
    let (graph, components) = batched_graph(
        &BatchedParams {
            num_nodes: nodes,
            num_edges: nodes * 4,
            mean_graph_size: 100,
            graph_size_cv: 0.4,
        },
        cfg.seed.wrapping_add(31),
    )
    .expect("valid batched dataset");
    // Wide features: the h2d copies are heavy enough that hiding them
    // under compute (what extra streams buy) is visible in the makespan.
    let mut exec = GcnBatchExecutor::new(&graph, &components, 256, 64, 10);
    // An offered rate far above device capacity: batches pile up at the
    // batcher, so the schedule is device-limited, not arrival-limited.
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: 96,
        mean_interarrival_ms: 0.005,
        num_components: exec.num_components(),
        seed: cfg.seed.wrapping_add(7),
    })
    .expect("valid arrival config");
    let serving = ServingConfig {
        streams,
        queue: QueuePolicy { capacity: 96 },
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ms: 1.0,
        },
        retry: RetryPolicy::default(),
        deadline_ms: None,
    };
    let engine = Engine::builder(cfg.spec.clone())
        .build()
        .expect("valid engine configuration");
    simulate(&engine, &arrivals, &serving, &mut exec).expect("serving simulation runs")
}

/// Runs the serialized-vs-overlapped comparison.
pub fn run(cfg: &ExperimentConfig) -> ServingResult {
    let stream_counts = [1usize, 2, 4];
    let reports: Vec<(usize, ServingReport)> = stream_counts
        .iter()
        .map(|&s| (s, report_for(s, cfg)))
        .collect();
    let serialized = reports[0].1.makespan_ms;
    let best_overlapped = reports[1..]
        .iter()
        .map(|(_, r)| r.makespan_ms)
        .fold(f64::INFINITY, f64::min);
    ServingResult {
        requests: reports[0].1.completed + reports[0].1.shed as usize,
        shed: reports[0].1.shed,
        rows: reports
            .into_iter()
            .map(|(streams, r)| Row {
                streams,
                p50_ms: r.p50_ms,
                p99_ms: r.p99_ms,
                throughput_rps: r.throughput_rps,
                makespan_ms: r.makespan_ms,
            })
            .collect(),
        overlap_speedup: serialized / best_overlapped.max(1e-12),
    }
}

/// Prints the scenario in paper-table style.
pub fn print(result: &ServingResult) {
    println!(
        "serving: {} requests ({} shed), dynamic batching on simulated streams",
        result.requests, result.shed
    );
    let mut t = Table::new(&["streams", "p50 ms", "p99 ms", "req/s", "makespan ms"]);
    for row in &result.rows {
        t.row(&[
            row.streams.to_string(),
            format!("{:.3}", row.p50_ms),
            format!("{:.3}", row.p99_ms),
            format!("{:.1}", row.throughput_rps),
            format!("{:.3}", row.makespan_ms),
        ]);
    }
    println!("{}", t.render());
    println!(
        "overlapped streams finish the trace {:.2}x faster than the serialized stream",
        result.overlap_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_beats_serialized_and_is_deterministic() {
        let cfg = ExperimentConfig::at_scale(0.05);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "scenario must be deterministic"
        );
        assert!(a.rows.len() == 3);
        assert!(
            a.overlap_speedup > 1.0,
            "overlapped streams must beat serialized: {:?}",
            a.rows
        );
        // Overlap may only help: every multi-stream makespan is bounded
        // by the serialized one.
        for row in &a.rows[1..] {
            assert!(row.makespan_ms <= a.rows[0].makespan_ms);
        }
    }
}
