//! Figure 13 + Table 3: case studies — hidden-dimension scaling (a, b) and
//! Tesla V100 vs Quadro P6000 (c).
//!
//! Paper reference: GCN latency grows with hidden dimension, GIN grows
//! *sharper* (5 layers vs 2); the V100 runs 1.97x (GCN) / 1.86x (GIN)
//! faster than the P6000 thanks to 2.6x SMs and 2.08x memory bandwidth.

use gnnadvisor_core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_core::Framework;
use gnnadvisor_datasets::table1_by_name;
use gnnadvisor_gpu::{Engine, GpuSpec};
use gnnadvisor_models::{Gcn, Gin, ModelExec};
use gnnadvisor_tensor::init::random_features;
use serde::{Deserialize, Serialize};

use crate::report::{mean, Table};
use crate::runner::{build_advisor, run_forward, ExperimentConfig, ModelKind};

/// One hidden-dimension sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DimPoint {
    /// Hidden dimension.
    pub hidden: usize,
    /// GCN latency, ms.
    pub gcn_ms: f64,
    /// GIN latency, ms.
    pub gin_ms: f64,
}

/// One V100-vs-P6000 comparison row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceRow {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// P6000 latency, ms.
    pub p6000_ms: f64,
    /// V100 latency, ms.
    pub v100_ms: f64,
    /// V100 speedup over P6000.
    pub speedup: f64,
}

/// Full Figure 13 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Dataset scale used.
    pub scale: f64,
    /// Dataset the dimension sweep runs on.
    pub sweep_dataset: String,
    /// 13a/13b points.
    pub dim_sweep: Vec<DimPoint>,
    /// 13c rows.
    pub devices: Vec<DeviceRow>,
    /// Mean V100 speedup, GCN.
    pub v100_gcn_speedup: f64,
    /// Mean V100 speedup, GIN.
    pub v100_gin_speedup: f64,
}

/// Hidden dimensions swept in 13a/13b.
pub const HIDDEN_SWEEP: &[usize] = &[16, 32, 64, 128, 256, 512];

fn forward_with_hidden(
    spec: &GpuSpec,
    ds: &gnnadvisor_datasets::Dataset,
    hidden: usize,
    gin: bool,
    seed: u64,
) -> f64 {
    let order = if gin {
        gnnadvisor_core::input::AggOrder::AggregateThenUpdate
    } else {
        gnnadvisor_core::input::AggOrder::UpdateThenAggregate
    };
    let advisor = Advisor::new(
        &ds.graph,
        ds.feat_dim,
        hidden,
        ds.num_classes,
        order,
        AdvisorConfig {
            spec: spec.clone(),
            ..Default::default()
        },
    )
    .expect("advisor builds");
    let engine = Engine::new(spec.clone());
    let features = random_features(ds.graph.num_nodes(), ds.feat_dim, seed);
    let exec = ModelExec::new(&engine, &ds.graph, Framework::GnnAdvisor, Some(&advisor));
    if gin {
        Gin::new(ds.feat_dim, hidden, ds.num_classes, 5, 0.0, seed)
            .forward(&exec, &features)
            .expect("runs")
            .metrics
            .total_ms()
    } else {
        Gcn::new(ds.feat_dim, hidden, ds.num_classes, 2, seed)
            .forward(&exec, &features)
            .expect("runs")
            .metrics
            .total_ms()
    }
}

/// Runs both case studies.
pub fn run(cfg: &ExperimentConfig) -> Fig13Result {
    // Dimension sweep on a mid-size Type III graph.
    let sweep_spec = table1_by_name("com-amazon").expect("present");
    let ds = sweep_spec.generate(cfg.scale).expect("dataset generates");
    let dim_sweep = HIDDEN_SWEEP
        .iter()
        .map(|&hidden| DimPoint {
            hidden,
            gcn_ms: forward_with_hidden(&cfg.spec, &ds, hidden, false, cfg.seed),
            gin_ms: forward_with_hidden(&cfg.spec, &ds, hidden, true, cfg.seed),
        })
        .collect();

    // Device comparison over the Type III datasets.
    let mut devices = Vec::new();
    for name in [
        "amazon0505",
        "artist",
        "com-amazon",
        "soc-BlogCatalog",
        "amazon0601",
    ] {
        let spec = table1_by_name(name).expect("present");
        let ds = spec.generate(cfg.scale).expect("dataset generates");
        for model in [ModelKind::Gcn, ModelKind::Gin] {
            let p_cfg = ExperimentConfig {
                spec: crate::runner::scaled_spec(GpuSpec::quadro_p6000(), cfg.scale),
                ..cfg.clone()
            };
            let v_cfg = ExperimentConfig {
                spec: crate::runner::scaled_spec(GpuSpec::tesla_v100(), cfg.scale),
                ..cfg.clone()
            };
            let adv_p = build_advisor(&ds, model, &p_cfg.spec).expect("builds");
            let adv_v = build_advisor(&ds, model, &v_cfg.spec).expect("builds");
            let p = run_forward(Framework::GnnAdvisor, model, &ds, &p_cfg, Some(&adv_p))
                .expect("runs")
                .total_ms();
            let v = run_forward(Framework::GnnAdvisor, model, &ds, &v_cfg, Some(&adv_v))
                .expect("runs")
                .total_ms();
            devices.push(DeviceRow {
                dataset: name.to_string(),
                model: model.name().to_string(),
                p6000_ms: p,
                v100_ms: v,
                speedup: p / v.max(1e-12),
            });
        }
    }
    let pick = |m: &str| {
        devices
            .iter()
            .filter(|r| r.model == m)
            .map(|r| r.speedup)
            .collect::<Vec<_>>()
    };
    Fig13Result {
        scale: cfg.scale,
        sweep_dataset: sweep_spec.name.to_string(),
        dim_sweep,
        v100_gcn_speedup: mean(&pick("GCN")),
        v100_gin_speedup: mean(&pick("GIN")),
        devices,
    }
}

/// Prints Table 3 (device specs) and both case studies.
pub fn print(result: &Fig13Result) {
    println!("Table 3: GPU specs.\n");
    let mut t = Table::new(&[
        "Processor",
        "Architect",
        "SMs",
        "CUDA Cores",
        "Frequency",
        "Throughput",
        "Cache",
        "Mem. B/W",
    ]);
    for spec in [GpuSpec::quadro_p6000(), GpuSpec::tesla_v100()] {
        t.row(&[
            spec.name.clone(),
            spec.architecture.clone(),
            spec.num_sms.to_string(),
            spec.cuda_cores.to_string(),
            format!("{:.3} GHz", spec.clock_ghz),
            format!("{:.0} TFLOPs", spec.peak_tflops()),
            format!("{} MB L2", spec.l2_bytes / (1024 * 1024)),
            format!("{:.0} GB/s", spec.dram_bandwidth_gbps),
        ]);
    }
    t.print();

    println!(
        "\nFigure 13a/b: latency vs hidden dimension on {} (scale {}).\n",
        result.sweep_dataset, result.scale
    );
    let mut t = Table::new(&["Hidden dim", "GCN (ms)", "GIN (ms)", "GIN/GCN"]);
    for p in &result.dim_sweep {
        t.row(&[
            p.hidden.to_string(),
            format!("{:.4}", p.gcn_ms),
            format!("{:.4}", p.gin_ms),
            format!("{:.2}x", p.gin_ms / p.gcn_ms.max(1e-12)),
        ]);
    }
    t.print();

    println!(
        "\nFigure 13c: Tesla V100 vs Quadro P6000.\n\
         Paper reference: 1.97x (GCN), 1.86x (GIN).\n"
    );
    let mut t = Table::new(&["Dataset", "Model", "P6000 (ms)", "V100 (ms)", "Speedup"]);
    for r in &result.devices {
        t.row(&[
            r.dataset.clone(),
            r.model.clone(),
            format!("{:.4}", r.p6000_ms),
            format!("{:.4}", r.v100_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    println!(
        "\nMean V100 speedup: GCN {:.2}x, GIN {:.2}x",
        result.v100_gcn_speedup, result.v100_gin_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_hidden_dim() {
        let cfg = ExperimentConfig::at_scale(0.01);
        let ds = table1_by_name("com-amazon")
            .expect("present")
            .generate(cfg.scale)
            .expect("valid");
        let lo = forward_with_hidden(&cfg.spec, &ds, 16, false, 1);
        let hi = forward_with_hidden(&cfg.spec, &ds, 256, false, 1);
        assert!(hi > lo, "256 hidden ({hi}) must cost more than 16 ({lo})");
    }

    #[test]
    fn v100_beats_p6000() {
        let cfg = ExperimentConfig::at_scale(0.01);
        let ds = table1_by_name("artist")
            .expect("present")
            .generate(cfg.scale)
            .expect("valid");
        let adv_p = build_advisor(&ds, ModelKind::Gcn, &GpuSpec::quadro_p6000()).expect("builds");
        let adv_v = build_advisor(&ds, ModelKind::Gcn, &GpuSpec::tesla_v100()).expect("builds");
        let p_cfg = ExperimentConfig {
            spec: GpuSpec::quadro_p6000(),
            ..cfg.clone()
        };
        let v_cfg = ExperimentConfig {
            spec: GpuSpec::tesla_v100(),
            ..cfg
        };
        let p = run_forward(
            Framework::GnnAdvisor,
            ModelKind::Gcn,
            &ds,
            &p_cfg,
            Some(&adv_p),
        )
        .expect("runs");
        let v = run_forward(
            Framework::GnnAdvisor,
            ModelKind::Gcn,
            &ds,
            &v_cfg,
            Some(&adv_v),
        )
        .expect("runs");
        assert!(
            v.total_ms() < p.total_ms(),
            "V100 {} vs P6000 {}",
            v.total_ms(),
            p.total_ms()
        );
    }
}
