//! One module per paper artifact; each exposes `run` (pure, returns a
//! serializable result) and `print` (emits the paper-style rows).

pub mod chaos;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod serving;
pub mod table1;
pub mod table2;
