//! Figure 8: speedup over DGL for GCN and GIN across all 15 datasets.
//!
//! The paper reports 4.03x (GCN) and 2.02x (GIN) on average, with the GCN
//! advantage largest on Type I (6.45x) and both evident on Type III
//! (2.10x / 1.70x). The shape to reproduce: GNNAdvisor wins everywhere,
//! GCN gains exceed GIN gains on Type I (dimension reduction before
//! aggregation), and Type II GIN beats Type I GIN (lower dims + intrinsic
//! block-diagonal locality).

use gnnadvisor_core::Framework;
use gnnadvisor_datasets::all_table1;
use serde::{Deserialize, Serialize};

use crate::report::{geomean, Table};
use crate::runner::{build_advisor, run_forward, ExperimentConfig, ModelKind};

/// One dataset × model measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// Dataset type label.
    pub ty: String,
    /// Model name.
    pub model: String,
    /// GNNAdvisor forward time, ms (simulated).
    pub advisor_ms: f64,
    /// DGL forward time, ms (simulated).
    pub dgl_ms: f64,
    /// Speedup (`dgl / advisor`).
    pub speedup: f64,
}

/// Full Figure 8 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Dataset scale used.
    pub scale: f64,
    /// All rows (15 datasets × 2 models).
    pub rows: Vec<Row>,
    /// Geometric-mean speedup for GCN.
    pub gcn_mean_speedup: f64,
    /// Geometric-mean speedup for GIN.
    pub gin_mean_speedup: f64,
}

/// Runs the full sweep. Datasets are independent, so they run on scoped
/// worker threads (`std::thread::scope`); rows are collected in dataset
/// order, so the output stays deterministic.
pub fn run(cfg: &ExperimentConfig) -> Fig8Result {
    let specs = all_table1();
    let per_dataset: Vec<Vec<Row>> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| {
                scope.spawn(move || {
                    let ds = spec.generate(cfg.scale).expect("dataset generates");
                    [ModelKind::Gcn, ModelKind::Gin]
                        .into_iter()
                        .map(|model| {
                            let advisor =
                                build_advisor(&ds, model, &cfg.spec).expect("advisor builds");
                            let ours =
                                run_forward(Framework::GnnAdvisor, model, &ds, cfg, Some(&advisor))
                                    .expect("advisor runs");
                            let dgl = run_forward(Framework::Dgl, model, &ds, cfg, None)
                                .expect("dgl runs");
                            Row {
                                dataset: spec.name.to_string(),
                                ty: spec.ty.label().to_string(),
                                model: model.name().to_string(),
                                advisor_ms: ours.total_ms(),
                                dgl_ms: dgl.total_ms(),
                                speedup: dgl.total_ms() / ours.total_ms().max(1e-12),
                            }
                        })
                        .collect::<Vec<Row>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let rows: Vec<Row> = per_dataset.into_iter().flatten().collect();
    let gcn: Vec<f64> = rows
        .iter()
        .filter(|r| r.model == "GCN")
        .map(|r| r.speedup)
        .collect();
    let gin: Vec<f64> = rows
        .iter()
        .filter(|r| r.model == "GIN")
        .map(|r| r.speedup)
        .collect();
    Fig8Result {
        scale: cfg.scale,
        rows,
        gcn_mean_speedup: geomean(&gcn),
        gin_mean_speedup: geomean(&gin),
    }
}

/// Prints the paper-style figure data.
pub fn print(result: &Fig8Result) {
    println!(
        "Figure 8: Speedup over DGL for GCN and GIN (scale {}).\n\
         Paper reference: GCN avg 4.03x, GIN avg 2.02x.\n",
        result.scale
    );
    let mut t = Table::new(&[
        "Dataset",
        "Type",
        "Model",
        "GNNAdvisor (ms)",
        "DGL (ms)",
        "Speedup",
    ]);
    for r in &result.rows {
        t.row(&[
            r.dataset.clone(),
            r.ty.clone(),
            r.model.clone(),
            format!("{:.4}", r.advisor_ms),
            format!("{:.4}", r.dgl_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
    println!(
        "\nGeomean speedup: GCN {:.2}x, GIN {:.2}x",
        result.gcn_mean_speedup, result.gin_mean_speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    /// A focused subset check (the full sweep runs in the binary/benches).
    #[test]
    fn advisor_wins_on_representative_datasets() {
        let cfg = ExperimentConfig::at_scale(0.02);
        for name in ["Pubmed", "PROTEINS_full", "artist"] {
            let ds = table1_by_name(name)
                .expect("present")
                .generate(cfg.scale)
                .expect("valid");
            let advisor = build_advisor(&ds, ModelKind::Gcn, &cfg.spec).expect("builds");
            let ours = run_forward(
                Framework::GnnAdvisor,
                ModelKind::Gcn,
                &ds,
                &cfg,
                Some(&advisor),
            )
            .expect("runs");
            let dgl = run_forward(Framework::Dgl, ModelKind::Gcn, &ds, &cfg, None).expect("runs");
            assert!(
                ours.total_ms() < dgl.total_ms(),
                "{name}: advisor {} vs DGL {}",
                ours.total_ms(),
                dgl.total_ms()
            );
        }
    }
}
