//! Table 2: comparison with NeuGraph on reddit-full / enwiki / amazon.
//!
//! The paper reports both sides' Mem.IO and Comp. columns; NeuGraph pays
//! thousands of milliseconds of chunk-streaming I/O while GNNAdvisor loads
//! once and computes in place (1.3x–7.2x overall). Shape to reproduce:
//! NeuGraph's Mem.IO dominates and exceeds GNNAdvisor's on every dataset,
//! and total time favors GNNAdvisor.

use gnnadvisor_core::Framework;
use gnnadvisor_datasets::neugraph::table2_datasets;
use gnnadvisor_gpu::{Engine, Workload};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::runner::{build_advisor, run_forward, ExperimentConfig, ModelKind};

/// One Table 2 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Dataset name.
    pub dataset: String,
    /// NeuGraph Mem.IO, ms.
    pub neugraph_io_ms: f64,
    /// NeuGraph compute, ms.
    pub neugraph_comp_ms: f64,
    /// GNNAdvisor Mem.IO, ms.
    pub advisor_io_ms: f64,
    /// GNNAdvisor compute, ms.
    pub advisor_comp_ms: f64,
    /// Overall speedup (total / total).
    pub speedup: f64,
}

/// Full Table 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Dataset scale used (these graphs are huge; default far below 1).
    pub scale: f64,
    /// The three rows in paper order.
    pub rows: Vec<Row>,
}

/// Runs the Table 2 comparison. The three graphs carry hundreds of
/// millions of edges at full scale, so the configured scale is divided by
/// an extra factor of 10 relative to other experiments. NeuGraph's chunk
/// budget scales with the dataset so the chunk *count* — and therefore the
/// streaming amplification — matches the full-scale regime.
pub fn run(cfg: &ExperimentConfig) -> Table2Result {
    let scale = (cfg.scale / 10.0).max(2e-4);
    let mut rows = Vec::new();
    for spec in table2_datasets() {
        let ds = spec.generate(scale).expect("dataset generates");
        // NeuGraph: SAGA streaming, one pass per GCN layer at that layer's
        // *input* dimensionality — vertex data lives on the host, so the
        // framework cannot reduce dimensions before shipping chunks.
        let engine_neu = Engine::new(cfg.spec.clone());
        let budget = ((gnnadvisor_core::frameworks::NEUGRAPH_CHUNK_BUDGET as f64 * scale) as u64)
            .max(ds.feat_dim as u64 * 4 * 16);
        let layer_dims = [ds.feat_dim, ModelKind::Gcn.hidden_dim()];
        let mut neu = gnnadvisor_gpu::RunMetrics::default();
        for d in layer_dims {
            neu.merge(
                gnnadvisor_core::kernels::saga_neugraph::run_saga_layer(
                    &engine_neu,
                    &ds.graph,
                    d,
                    budget,
                )
                .expect("neugraph runs"),
            );
        }
        // GNNAdvisor: one up-front H2D of features + topology, then
        // in-device compute and one D2H of results.
        let advisor = build_advisor(&ds, ModelKind::Gcn, &cfg.spec).expect("advisor builds");
        let ours = run_forward(
            Framework::GnnAdvisor,
            ModelKind::Gcn,
            &ds,
            cfg,
            Some(&advisor),
        )
        .expect("advisor runs");
        let engine = Engine::new(cfg.spec.clone());
        let feat_bytes = ds.graph.num_nodes() as u64 * ds.feat_dim as u64 * 4;
        let topo_bytes = ds.graph.adjacency_bytes() as u64;
        let out_bytes = ds.graph.num_nodes() as u64 * ds.num_classes as u64 * 4;
        let mut ctx = engine.lock_context();
        let mut price_copy = |bytes: u64| {
            engine
                .submit(&mut ctx, Workload::Transfer { bytes })
                .expect("transfer workloads are infallible")
                .into_transfer()
                .time_ms
        };
        let advisor_io = price_copy(feat_bytes + topo_bytes) + price_copy(out_bytes);
        drop(ctx);

        let neu_total = neu.transfer_ms + neu.compute_ms;
        let our_total = advisor_io + ours.compute_ms;
        rows.push(Row {
            dataset: spec.name.to_string(),
            neugraph_io_ms: neu.transfer_ms,
            neugraph_comp_ms: neu.compute_ms,
            advisor_io_ms: advisor_io,
            advisor_comp_ms: ours.compute_ms,
            speedup: neu_total / our_total.max(1e-12),
        });
    }
    Table2Result { scale, rows }
}

/// Prints the paper-style table.
pub fn print(result: &Table2Result) {
    println!(
        "Table 2: comparison with NeuGraph (2-layer GCN, scale {}).\n\
         Paper reference: reddit-full 3840/2460 -> 263.78/599.69 ms,\n\
         overall 1.3x-7.2x in GNNAdvisor's favor.\n",
        result.scale
    );
    let mut t = Table::new(&[
        "Dataset",
        "NeuGraph Mem.IO (ms)",
        "NeuGraph Comp. (ms)",
        "GNNAdvisor Mem.IO (ms)",
        "GNNAdvisor Comp. (ms)",
        "Speedup",
    ]);
    for r in &result.rows {
        t.row(&[
            r.dataset.clone(),
            format!("{:.2}", r.neugraph_io_ms),
            format!("{:.2}", r.neugraph_comp_ms),
            format!("{:.2}", r.advisor_io_ms),
            format!("{:.2}", r.advisor_comp_ms),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neugraph_streaming_loses() {
        let cfg = ExperimentConfig::at_scale(0.02);
        let r = run(&cfg);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.neugraph_io_ms > row.advisor_io_ms,
                "{}: chunk streaming must cost more I/O ({} vs {})",
                row.dataset,
                row.neugraph_io_ms,
                row.advisor_io_ms
            );
            assert!(
                row.speedup > 1.0,
                "{}: speedup {}",
                row.dataset,
                row.speedup
            );
        }
    }
}
