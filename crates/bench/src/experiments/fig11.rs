//! Figure 11: group-based workload impact — normalized runtime vs group
//! size (11a), thread-per-block (11b), and dimension worker (11c), on the
//! Type III graphs under GCN.
//!
//! Paper reference shapes: each sweep is U-shaped — runtime first falls,
//! then climbs past a dataset-dependent optimum (e.g. gs ~32 on `artist`,
//! tpb ~128 on `com-amazon`, dw ~16 across Type III). All values are
//! normalized to the first setting of the sweep (gs = 1 / tpb = 32 /
//! dw = 1), as in the paper.

use gnnadvisor_core::{Framework, RuntimeParams};
use gnnadvisor_datasets::TYPE_III;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::runner::{build_advisor_manual, run_forward, ExperimentConfig, ModelKind};

/// One sweep series for one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Dataset name.
    pub dataset: String,
    /// Swept parameter values.
    pub x: Vec<usize>,
    /// Runtime normalized to the first point (percent).
    pub normalized_pct: Vec<f64>,
    /// Raw runtimes, ms.
    pub raw_ms: Vec<f64>,
}

/// Full Figure 11 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Dataset scale used.
    pub scale: f64,
    /// 11a: group-size sweep.
    pub group_size: Vec<Series>,
    /// 11b: thread-per-block sweep.
    pub threads_per_block: Vec<Series>,
    /// 11c: dimension-worker sweep.
    pub dim_workers: Vec<Series>,
}

/// Swept values per knob.
pub const GS_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
/// Thread-per-block sweep.
pub const TPB_SWEEP: &[usize] = &[32, 64, 128, 256, 512, 1024];
/// Dimension-worker sweep.
pub const DW_SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32];

fn sweep(
    cfg: &ExperimentConfig,
    spec: &gnnadvisor_datasets::DatasetSpec,
    xs: &[usize],
    make: impl Fn(usize) -> RuntimeParams,
) -> Series {
    let ds = spec.generate(cfg.scale).expect("dataset generates");
    let mut raw = Vec::with_capacity(xs.len());
    for &x in xs {
        let advisor =
            build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, make(x)).expect("advisor builds");
        let m = run_forward(
            Framework::GnnAdvisor,
            ModelKind::Gcn,
            &ds,
            cfg,
            Some(&advisor),
        )
        .expect("runs");
        raw.push(m.total_ms());
    }
    let base = raw[0].max(1e-12);
    Series {
        dataset: spec.name.to_string(),
        x: xs.to_vec(),
        normalized_pct: raw.iter().map(|&v| v / base * 100.0).collect(),
        raw_ms: raw,
    }
}

/// Runs all three sweeps over the Type III datasets.
pub fn run(cfg: &ExperimentConfig) -> Fig11Result {
    let base = RuntimeParams {
        renumber: false,
        ..RuntimeParams::default()
    };
    let mut group_size = Vec::new();
    let mut threads_per_block = Vec::new();
    let mut dim_workers = Vec::new();
    for spec in TYPE_III {
        group_size.push(sweep(cfg, spec, GS_SWEEP, |gs| RuntimeParams {
            group_size: gs,
            ..base
        }));
        threads_per_block.push(sweep(cfg, spec, TPB_SWEEP, |tpb| RuntimeParams {
            threads_per_block: tpb as u32,
            // dw must divide tpb; 16 divides every swept tpb except 32.
            dim_workers: if tpb >= 64 { 16 } else { 8 },
            ..base
        }));
        dim_workers.push(sweep(cfg, spec, DW_SWEEP, |dw| RuntimeParams {
            dim_workers: dw as u32,
            ..base
        }));
    }
    Fig11Result {
        scale: cfg.scale,
        group_size,
        threads_per_block,
        dim_workers,
    }
}

fn print_panel(title: &str, xs_label: &str, series: &[Series]) {
    println!("{title}");
    let mut header: Vec<String> = vec![xs_label.to_string()];
    header.extend(series.iter().map(|s| s.dataset.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    if let Some(first) = series.first() {
        for (i, &x) in first.x.iter().enumerate() {
            let mut row = vec![x.to_string()];
            row.extend(
                series
                    .iter()
                    .map(|s| format!("{:.1}%", s.normalized_pct[i])),
            );
            t.row(&row);
        }
    }
    t.print();
    println!();
}

/// Prints all three panels.
pub fn print(result: &Fig11Result) {
    println!(
        "Figure 11: group-based workload impact on GCN, Type III (scale {}).\n\
         Runtime normalized to the first setting (100%).\n",
        result.scale
    );
    print_panel("(a) Group size:", "gs", &result.group_size);
    print_panel("(b) Thread-per-block:", "tpb", &result.threads_per_block);
    print_panel("(c) Dimension worker:", "dw", &result.dim_workers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnnadvisor_datasets::table1_by_name;

    #[test]
    fn dimension_worker_sweep_is_u_shaped() {
        let cfg = ExperimentConfig::at_scale(0.02);
        let artist = table1_by_name("artist").expect("present");
        let base = RuntimeParams {
            renumber: false,
            ..RuntimeParams::default()
        };
        let s = sweep(&cfg, &artist, DW_SWEEP, |dw| RuntimeParams {
            dim_workers: dw as u32,
            ..base
        });
        let first = s.normalized_pct[0];
        let min = s
            .normalized_pct
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min < first,
            "some dw > 1 must beat dw = 1: {:?}",
            s.normalized_pct
        );
    }

    #[test]
    fn group_size_has_interior_optimum() {
        let cfg = ExperimentConfig::at_scale(0.02);
        let artist = table1_by_name("artist").expect("present");
        let base = RuntimeParams {
            renumber: false,
            ..RuntimeParams::default()
        };
        let s = sweep(&cfg, &artist, &[1, 4, 16, 256], |gs| RuntimeParams {
            group_size: gs,
            ..base
        });
        let best_idx = s
            .normalized_pct
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!(
            best_idx > 0 && best_idx < s.x.len() - 1,
            "optimum should be interior: {:?} over {:?}",
            s.normalized_pct,
            s.x
        );
    }
}
