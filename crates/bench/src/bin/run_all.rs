//! Runs every experiment in sequence and writes all JSON results — the
//! one-shot regeneration of the paper's evaluation section.

use gnnadvisor_bench::experiments::{fig08, fig09, fig10, fig11, fig12, fig13, table1, table2};
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::{
    dump_trace, run_forward_traced, trace_dir_from_env, ExperimentConfig, ModelKind,
};
use gnnadvisor_core::Framework;

fn main() {
    let cfg = ExperimentConfig::default();
    eprintln!(
        "running all experiments at scale {} (set GNNADVISOR_SCALE to change)\n",
        cfg.scale
    );

    let t1 = table1::run(&cfg);
    table1::print(&t1);
    let _ = write_json("table1", &t1);
    println!("\n{}\n", "=".repeat(70));

    let f8 = fig08::run(&cfg);
    fig08::print(&f8);
    let _ = write_json("fig08", &f8);
    println!("\n{}\n", "=".repeat(70));

    let f9 = fig09::run(&cfg);
    fig09::print(&f9);
    let _ = write_json("fig09", &f9);
    println!("\n{}\n", "=".repeat(70));

    let f10 = fig10::run(&cfg);
    fig10::print(&f10);
    let _ = write_json("fig10", &f10);
    println!("\n{}\n", "=".repeat(70));

    let t2 = table2::run(&cfg);
    table2::print(&t2);
    let _ = write_json("table2", &t2);
    println!("\n{}\n", "=".repeat(70));

    let f11 = fig11::run(&cfg);
    fig11::print(&f11);
    let _ = write_json("fig11", &f11);
    println!("\n{}\n", "=".repeat(70));

    let f12 = fig12::run(&cfg);
    fig12::print(&f12);
    let _ = write_json("fig12", &f12);
    println!("\n{}\n", "=".repeat(70));

    let f13 = fig13::run(&cfg);
    fig13::print(&f13);
    let _ = write_json("fig13", &f13);

    dump_traces(&cfg);

    eprintln!("\nall experiments complete; JSON under target/experiments/");
}

/// With `GNNADVISOR_TRACE_DIR` set, re-runs one representative forward
/// pass per model with the trace recorder attached and dumps the chrome
/// traces there — diffable regression artifacts alongside the JSON
/// results (timestamps are simulated cycles, so the bytes are stable).
fn dump_traces(cfg: &ExperimentConfig) {
    let Some(dir) = trace_dir_from_env() else {
        return;
    };
    eprintln!("\ndumping chrome traces to {}", dir.display());
    for (dataset, model) in [
        ("Cora", ModelKind::Gcn),
        ("Cora", ModelKind::Gin),
        ("Pubmed", ModelKind::Sage),
    ] {
        let ds = match gnnadvisor_datasets::table1_by_name(dataset)
            .expect("Table 1 dataset")
            .generate(cfg.scale)
        {
            Ok(ds) => ds,
            Err(e) => {
                eprintln!("  {dataset}: generation failed: {e}");
                continue;
            }
        };
        let name = format!("{}_{}", model.name().to_lowercase(), dataset.to_lowercase());
        match run_forward_traced(Framework::GnnAdvisor, model, &ds, cfg) {
            Ok((metrics, tracer)) => match dump_trace(&tracer, &dir, &name) {
                Ok(path) => eprintln!(
                    "  {} ({} events, {}): {}",
                    name,
                    tracer.len(),
                    metrics.phases.report(),
                    path.display()
                ),
                Err(e) => eprintln!("  {name}: {e}"),
            },
            Err(e) => eprintln!("  {name}: run failed: {e}"),
        }
    }
}
