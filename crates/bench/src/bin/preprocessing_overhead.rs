//! Validates Section 6.1's claim that node renumbering is "lightweight in
//! its computation and memory cost".
//!
//! Measures the *host-side wall time* of the full renumbering pipeline
//! (Louvain + per-community RCM + permutation application) per dataset and
//! amortizes it against the simulated per-epoch saving it buys: how many
//! GCN forward passes pay back the preprocessing investment?

use std::time::Instant;

use gnnadvisor_bench::report::Table;
use gnnadvisor_bench::runner::{build_advisor_manual, run_forward, ExperimentConfig, ModelKind};
use gnnadvisor_core::{Framework, RuntimeParams};
use gnnadvisor_datasets::TYPE_III;
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    println!(
        "Renumbering preprocessing overhead (scale {}).\n\
         Paper claim (Section 6.1): the renumbering process is lightweight.\n",
        cfg.scale
    );

    let mut t = Table::new(&[
        "Dataset",
        "nodes",
        "edges",
        "renumber wall (ms)",
        "epoch w/o (sim ms)",
        "epoch w/ (sim ms)",
        "saving/epoch",
        "break-even epochs*",
    ]);
    for spec in TYPE_III {
        let ds = spec.generate(cfg.scale).expect("dataset generates");

        let start = Instant::now();
        let r = renumber(&ds.graph, &RenumberConfig::default()).expect("renumber runs");
        let _permuted = ds
            .graph
            .permute(&r.permutation)
            .expect("permutation is valid");
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;

        let params_on = RuntimeParams::default();
        let params_off = RuntimeParams {
            renumber: false,
            ..params_on
        };
        let on = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, params_on).expect("builds");
        let off = build_advisor_manual(&ds, ModelKind::Gcn, &cfg.spec, params_off).expect("builds");
        let ms_on = run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, &cfg, Some(&on))
            .expect("runs")
            .total_ms();
        let ms_off = run_forward(Framework::GnnAdvisor, ModelKind::Gcn, &ds, &cfg, Some(&off))
            .expect("runs")
            .total_ms();
        let saving = (ms_off - ms_on).max(0.0);
        let break_even = if saving > 0.0 {
            format!("{:.0}", wall_ms / saving)
        } else {
            "-".into()
        };

        t.row(&[
            spec.name.to_string(),
            ds.graph.num_nodes().to_string(),
            ds.graph.num_edges().to_string(),
            format!("{wall_ms:.1}"),
            format!("{ms_off:.4}"),
            format!("{ms_on:.4}"),
            format!("{saving:.4}"),
            break_even,
        ]);
    }
    t.print();
    println!(
        "\n* break-even compares host preprocessing wall time against simulated\n\
          device milliseconds, so it is an upper bound: on real hardware one\n\
          epoch is orders of magnitude longer than a simulated-kernel tick,\n\
          and GNN training runs hundreds of epochs over a fixed graph."
    );
}
