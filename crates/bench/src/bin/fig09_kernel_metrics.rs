//! Regenerates Figure 9: SM efficiency and cache hit rate vs DGL.

use gnnadvisor_bench::experiments::fig09;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig09::run(&cfg);
    fig09::print(&result);
    if let Ok(path) = write_json("fig09", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
