//! Regenerates Figure 13 and Table 3: hidden-dimension scaling and the
//! V100 case study.

use gnnadvisor_bench::experiments::fig13;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig13::run(&cfg);
    fig13::print(&result);
    if let Ok(path) = write_json("fig13", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
