//! Chaos scenario: serving under injected faults, retry vs no-retry.

use gnnadvisor_bench::experiments::chaos;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = chaos::run(&cfg);
    chaos::print(&result);
    assert!(
        result.goodput_recovery > 1.0,
        "retries with backoff must restore goodput under faults"
    );
    if let Ok(path) = write_json("chaos", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
