//! Regenerates Figure 12: node renumbering and block-level optimization
//! ablations.

use gnnadvisor_bench::experiments::fig12;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig12::run(&cfg);
    fig12::print(&result);
    if let Ok(path) = write_json("fig12", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
