//! Regenerates Figure 8: speedup over DGL for GCN and GIN.

use gnnadvisor_bench::experiments::fig08;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig08::run(&cfg);
    fig08::print(&result);
    if let Ok(path) = write_json("fig08", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
