//! Regenerates Figure 10: comparisons with PyG and GunRock.

use gnnadvisor_bench::experiments::fig10;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig10::run(&cfg);
    fig10::print(&result);
    if let Ok(path) = write_json("fig10", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
