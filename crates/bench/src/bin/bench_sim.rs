//! Wall-clock benchmark of the sharded simulation engine (`BENCH_sim.json`).
//!
//! Runs a fixed synthetic kernel workload — many blocks with cross-block
//! cache locality, scattered reads, and atomic hotspots, i.e. the traffic
//! mix real GNN kernels emit — through two simulators:
//!
//! 1. **Baseline**: a faithful replay of the seed engine's hot path — one
//!    full-geometry cache rebuilt from `Vec<Vec<u64>>` on every launch,
//!    true-LRU via `position` + `remove` + `insert(0)`, hardware `div`/`mod`
//!    per access, a fresh hotspot `HashMap` per launch, and per-warp
//!    heap-allocated offset vectors (what the kernels in
//!    `crates/core/src/kernels/` did before they moved to stack arrays).
//!    It omits the seed's per-warp cost arithmetic, which is cheap next to
//!    the cache work, so the reported speedup *understates* the real one.
//! 2. **The current engine** at 1, 2, 4, and 8 simulation workers, with
//!    every configuration checked for bit-identical metrics.
//!
//! Timings land in `BENCH_sim.json` together with `host_cpus`, because the
//! thread-scaling rows only show parallel speedup when the host actually
//! has cores to scale onto; the before/after speedup is algorithmic and
//! shows up everywhere.
//!
//! Usage: `cargo run --release -p gnnadvisor-bench --bin bench_sim`.

use std::collections::HashMap;
use std::time::Instant;

use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{
    ArrayId, BlockSink, Engine, GpuSpec, GridConfig, Kernel, KernelMetrics, Workload,
    WorkloadMetrics,
};
use serde::{Deserialize, Serialize};

/// Fixed workload: 512 blocks of 8 warps each, mixing a sliding coalesced
/// window (cross-block temporal locality), per-lane scattered rows, and a
/// small pool of contended atomic counters.
struct SimWorkload {
    blocks: usize,
}

impl SimWorkload {
    /// The warp's scattered lane offsets for one read round, shared by the
    /// engine kernel and the baseline replay so both simulate the same
    /// traffic. The footprint (4 MB of 4-byte words) is deliberately much
    /// larger than the 3 MB L2, like a node-feature table: sets run at
    /// full occupancy, so replacement policy work is on the hot path.
    fn lane_offset(block_id: u64, warp: u64, round: u64, lane: u64) -> u64 {
        ((block_id * 131 + warp * 37 + round * 17 + lane * 97) % 1_048_576) * 4
    }
}

impl Kernel for SimWorkload {
    fn name(&self) -> &str {
        "bench_sim_workload"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.blocks,
            threads_per_block: 8 * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        for w in 0..8u64 {
            sink.begin_warp();
            sink.compute(120, WARP_SIZE);
            // 16 KB window sliding 2 KB per block: 7/8 of each block's
            // lines were touched by its predecessor.
            sink.global_read(ArrayId(1), block_id as u64 * 2048 + w * 1024, 16384);
            let mut offsets = [0u64; WARP_SIZE as usize];
            for round in 0..8u64 {
                for (lane, slot) in offsets.iter_mut().enumerate() {
                    *slot = Self::lane_offset(block_id as u64, w, round, lane as u64);
                }
                sink.global_read_scattered(ArrayId(2), &offsets, 4);
            }
            sink.atomic_rmw(ArrayId(3), ((block_id as u64 + w) % 13) * 4, 4, 64);
            sink.sync();
        }
    }
}

/// Seed-style simulation of the same workload: the pre-PR hot path, kept
/// verbatim in idiom (per-launch allocation, `Vec` LRU, `/` and `%`
/// addressing) so the before/after comparison is honest.
mod baseline {
    use super::*;

    /// The seed's set-associative cache: `sets[s]` holds up to `ways` tags
    /// in LRU order (front = MRU), rebuilt from heap vectors per launch.
    struct SeedCache {
        sets: Vec<Vec<u64>>,
        ways: usize,
        line_bytes: u64,
        hits: u64,
        misses: u64,
    }

    impl SeedCache {
        fn new(num_sets: usize, ways: usize, line_bytes: u64) -> Self {
            Self {
                sets: vec![Vec::with_capacity(ways); num_sets],
                ways,
                line_bytes,
                hits: 0,
                misses: 0,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            let line = addr / self.line_bytes;
            let set_idx = (line % self.sets.len() as u64) as usize;
            let set = &mut self.sets[set_idx];
            if let Some(pos) = set.iter().position(|&t| t == line) {
                let tag = set.remove(pos);
                set.insert(0, tag);
                self.hits += 1;
                true
            } else {
                if set.len() == self.ways {
                    set.pop();
                }
                set.insert(0, line);
                self.misses += 1;
                false
            }
        }

        fn access_range(&mut self, addr: u64, bytes: u64) {
            let first = addr / self.line_bytes;
            let last = (addr + bytes - 1) / self.line_bytes;
            for line in first..=last {
                self.access(line * self.line_bytes);
            }
        }
    }

    /// One launch of the workload through the seed hot path. Everything the
    /// seed engine allocated per launch is allocated here per launch.
    pub fn launch(workload: &SimWorkload, spec: &GpuSpec) -> (u64, u64, u64) {
        // Arrays live in disjoint 44-bit address windows, mirroring the
        // engine's `ArrayId` address-space split.
        let base = |id: u64| id << 44;
        let num_sets = spec.l2_bytes / (spec.l2_ways * spec.line_bytes);
        let mut cache = SeedCache::new(num_sets, spec.l2_ways, spec.line_bytes as u64);
        let mut hotspots: HashMap<u64, u64> = HashMap::new();
        let base2 = base(2);
        for block_id in 0..workload.blocks as u64 {
            for w in 0..8u64 {
                cache.access_range(base(1) + block_id * 2048 + w * 1024, 16384);
                for round in 0..8u64 {
                    // The seed kernels built each warp's offset list on the
                    // heap; keep that allocation in the measured path.
                    let offsets: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|lane| SimWorkload::lane_offset(block_id, w, round, lane))
                        .collect();
                    for &off in &offsets {
                        cache.access(base2 + off);
                    }
                }
                let line = (base(3) + ((block_id + w) % 13) * 4) / spec.line_bytes as u64;
                *hotspots.entry(line).or_insert(0) += 64;
            }
        }
        let contended = hotspots.values().copied().max().unwrap_or(0);
        (cache.hits, cache.misses, contended)
    }
}

/// One worker-count measurement of the current engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadRow {
    /// Simulation worker threads.
    threads: usize,
    /// Best-of-runs wall-clock for the whole workload, milliseconds.
    wall_ms: f64,
    /// Speedup over the current engine's own 1-worker run (thread scaling;
    /// only exceeds ~1.0 when `host_cpus` > 1).
    speedup_vs_serial: f64,
    /// Speedup over the seed-style baseline (the before/after number).
    speedup_vs_baseline: f64,
}

/// Everything `BENCH_sim.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchSim {
    /// Workload shape, for reproducibility.
    workload: String,
    /// Kernel launches per timed run.
    launches_per_run: usize,
    /// Timed runs per configuration (best is reported).
    runs: usize,
    /// CPUs visible to this process; thread-scaling rows are bounded by it.
    host_cpus: usize,
    /// Seed-style hot path (per-launch allocation + `Vec` LRU + div/mod),
    /// milliseconds. Understates the seed cost: warp accounting is omitted.
    baseline_wall_ms: f64,
    /// Current engine, 1 worker, milliseconds.
    serial_wall_ms: f64,
    /// Current engine at each measured worker count.
    threaded: Vec<ThreadRow>,
    /// Best baseline speedup observed at >= 4 workers.
    best_speedup_4_plus: f64,
    /// Whether every worker count produced bit-identical metrics.
    deterministic: bool,
    /// How to read the numbers on this host.
    note: String,
}

const LAUNCHES_PER_RUN: usize = 24;
const RUNS: usize = 5;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Times one full workload (`LAUNCHES_PER_RUN` launches) on an engine,
/// checking run-to-run determinism against the warm-up metrics.
fn launch(engine: &Engine, kernel: &SimWorkload) -> KernelMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Kernel(kernel))
        .map(WorkloadMetrics::into_kernel)
        .expect("workload runs")
}

fn time_engine(engine: &Engine, kernel: &SimWorkload, expect: &KernelMetrics) -> f64 {
    let start = Instant::now();
    for _ in 0..LAUNCHES_PER_RUN {
        let m = launch(engine, kernel);
        assert_eq!(&m, expect, "engine must be deterministic run-to-run");
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Times the seed-style baseline over the same launch count.
fn time_baseline(kernel: &SimWorkload, spec: &GpuSpec, warm: (u64, u64, u64)) -> f64 {
    let start = Instant::now();
    for _ in 0..LAUNCHES_PER_RUN {
        let totals = baseline::launch(kernel, spec);
        assert_eq!(totals, warm, "baseline replay must be deterministic");
        std::hint::black_box(totals);
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let kernel = SimWorkload { blocks: 512 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let spec = GpuSpec::quadro_p6000();

    let engines: Vec<Engine> = WORKER_COUNTS
        .iter()
        .map(|&t| {
            Engine::builder(spec.clone())
                .sim_threads(t)
                .build()
                .expect("valid engine configuration")
        })
        .collect();
    // Warm-ups: size each run context so steady state is allocation-free,
    // and record the metrics every timed launch must reproduce.
    let warm_baseline = baseline::launch(&kernel, &spec);
    let serial_metrics = launch(&engines[0], &kernel);
    let mut deterministic = true;
    for engine in &engines[1..] {
        deterministic &= launch(engine, &kernel) == serial_metrics;
    }

    // Interleave configurations round-robin so clock-speed drift over the
    // benchmark's lifetime (noisy shared hosts) biases no configuration;
    // report per-configuration best-of-rounds.
    let mut best_baseline = f64::INFINITY;
    let mut best_engine = [f64::INFINITY; WORKER_COUNTS.len()];
    for _ in 0..RUNS {
        best_baseline = best_baseline.min(time_baseline(&kernel, &spec, warm_baseline));
        for (slot, engine) in best_engine.iter_mut().zip(&engines) {
            *slot = slot.min(time_engine(engine, &kernel, &serial_metrics));
        }
    }

    let baseline_wall_ms = best_baseline;
    let serial_wall_ms = best_engine[0];
    let threaded: Vec<ThreadRow> = WORKER_COUNTS
        .iter()
        .zip(&best_engine)
        .skip(1)
        .map(|(&threads, &wall_ms)| ThreadRow {
            threads,
            wall_ms,
            speedup_vs_serial: serial_wall_ms / wall_ms.max(1e-9),
            speedup_vs_baseline: baseline_wall_ms / wall_ms.max(1e-9),
        })
        .collect();
    let best_speedup_4_plus = threaded
        .iter()
        .filter(|r| r.threads >= 4)
        .map(|r| r.speedup_vs_baseline)
        .fold(0.0, f64::max);

    let result = BenchSim {
        workload: format!(
            "{} blocks x 8 warps: sliding 16 KB window + 8x32-lane scattered \
             reads over a 4 MB table + contended atomics, P6000 model",
            kernel.blocks
        ),
        launches_per_run: LAUNCHES_PER_RUN,
        runs: RUNS,
        host_cpus,
        baseline_wall_ms,
        serial_wall_ms,
        threaded,
        best_speedup_4_plus,
        deterministic,
        note: format!(
            "speedup_vs_baseline is the algorithmic before/after (seed hot \
             path vs current engine, single thread); speedup_vs_serial is \
             thread scaling and is bounded by host_cpus (= {host_cpus} \
             here, so worker counts above it cannot beat 1.0x). The \
             baseline omits the seed's warp-cost arithmetic, so it \
             understates the full seed launch cost."
        ),
    };

    assert!(
        result.deterministic,
        "metrics must be bit-identical across worker counts"
    );

    let json = serde_json::to_string_pretty(&result).expect("serializes");
    std::fs::write("BENCH_sim.json", &json).expect("BENCH_sim.json written");
    println!("{json}");
    println!(
        "\nbaseline {:.2} ms, serial {:.2} ms; best baseline speedup at >= 4 workers: {:.2}x",
        result.baseline_wall_ms, result.serial_wall_ms, result.best_speedup_4_plus
    );
}
