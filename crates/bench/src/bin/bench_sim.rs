//! Wall-clock benchmark of the sharded simulation engine (`BENCH_sim.json`).
//!
//! Runs a fixed synthetic kernel workload — many blocks with cross-block
//! cache locality, scattered reads, and atomic hotspots, i.e. the traffic
//! mix real GNN kernels emit — through two simulators:
//!
//! 1. **Baseline**: a faithful replay of the seed engine's hot path — one
//!    full-geometry cache rebuilt from `Vec<Vec<u64>>` on every launch,
//!    true-LRU via `position` + `remove` + `insert(0)`, hardware `div`/`mod`
//!    per access, a fresh hotspot `HashMap` per launch, and per-warp
//!    heap-allocated offset vectors (what the kernels in
//!    `crates/core/src/kernels/` did before they moved to stack arrays).
//!    It omits the seed's per-warp cost arithmetic, which is cheap next to
//!    the cache work, so the reported speedup *understates* the real one.
//! 2. **The current engine** at 1, 2, 4, and 8 simulation workers, with
//!    every configuration checked for bit-identical metrics.
//!
//! Timings land in `BENCH_sim.json` together with `host_cpus`, because the
//! thread-scaling rows only show parallel speedup when the host actually
//! has cores to scale onto; the before/after speedup is algorithmic and
//! shows up everywhere.
//!
//! Usage: `cargo run --release -p gnnadvisor-bench --bin bench_sim`.

use std::collections::HashMap;
use std::time::Instant;

use gnnadvisor_core::cluster::{
    assign_tenants, simulate_cluster, ClusterConfig, ClusterReport, RouterPolicy, TenantSpec,
};
use gnnadvisor_core::dynamic::{
    generate_updates, simulate_dynamic, DynamicConfig, DynamicReport, RenumberPolicy,
    SnapshotAggregationKernel, SnapshotExecutor, SnapshotKernelHandle, UpdateStreamConfig,
};
use gnnadvisor_core::input::{extract, AggOrder};
use gnnadvisor_core::serving::{
    generate_arrivals, ArrivalConfig, BatchPolicy, BatchWork, DeviceWork, DispatchedBatch,
    QueuePolicy, RetryPolicy, ServingConfig,
};
use gnnadvisor_core::tuning::{
    aggregation_metrics, tune_two_tier, Estimator, EstimatorConfig, TwoTierConfig,
};
use gnnadvisor_core::RuntimeParams;
use gnnadvisor_gpu::kernel::WARP_SIZE;
use gnnadvisor_gpu::{
    ArrayId, BlockSink, Engine, GpuSpec, GridConfig, Kernel, KernelMetrics, OpClass, RunContext,
    StreamSim, Workload, WorkloadMetrics,
};
use gnnadvisor_graph::generators::{
    barabasi_albert, batched_graph, community_graph, BatchedParams, CommunityParams,
};
use gnnadvisor_graph::reorder::{renumber, RenumberConfig};
use gnnadvisor_graph::sample::SampleConfig;
use gnnadvisor_graph::Csr;
use gnnadvisor_models::{train_minibatch, GcnBatchExecutor, MiniBatchConfig, MiniBatchReport};
use gnnadvisor_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Fixed workload: 512 blocks of 8 warps each, mixing a sliding coalesced
/// window (cross-block temporal locality), per-lane scattered rows, and a
/// small pool of contended atomic counters.
struct SimWorkload {
    blocks: usize,
}

impl SimWorkload {
    /// The warp's scattered lane offsets for one read round, shared by the
    /// engine kernel and the baseline replay so both simulate the same
    /// traffic. The footprint (4 MB of 4-byte words) is deliberately much
    /// larger than the 3 MB L2, like a node-feature table: sets run at
    /// full occupancy, so replacement policy work is on the hot path.
    fn lane_offset(block_id: u64, warp: u64, round: u64, lane: u64) -> u64 {
        ((block_id * 131 + warp * 37 + round * 17 + lane * 97) % 1_048_576) * 4
    }
}

impl Kernel for SimWorkload {
    fn name(&self) -> &str {
        "bench_sim_workload"
    }

    fn grid(&self) -> GridConfig {
        GridConfig {
            num_blocks: self.blocks,
            threads_per_block: 8 * WARP_SIZE,
            shared_mem_bytes: 0,
        }
    }

    fn emit_block(&self, block_id: usize, sink: &mut BlockSink<'_>) {
        for w in 0..8u64 {
            sink.begin_warp();
            sink.compute(120, WARP_SIZE);
            // 16 KB window sliding 2 KB per block: 7/8 of each block's
            // lines were touched by its predecessor.
            sink.global_read(ArrayId(1), block_id as u64 * 2048 + w * 1024, 16384);
            let mut offsets = [0u64; WARP_SIZE as usize];
            for round in 0..8u64 {
                for (lane, slot) in offsets.iter_mut().enumerate() {
                    *slot = Self::lane_offset(block_id as u64, w, round, lane as u64);
                }
                sink.global_read_scattered(ArrayId(2), &offsets, 4);
            }
            sink.atomic_rmw(ArrayId(3), ((block_id as u64 + w) % 13) * 4, 4, 64);
            sink.sync();
        }
    }
}

/// Seed-style simulation of the same workload: the pre-PR hot path, kept
/// verbatim in idiom (per-launch allocation, `Vec` LRU, `/` and `%`
/// addressing) so the before/after comparison is honest.
mod baseline {
    use super::*;

    /// The seed's set-associative cache: `sets[s]` holds up to `ways` tags
    /// in LRU order (front = MRU), rebuilt from heap vectors per launch.
    struct SeedCache {
        sets: Vec<Vec<u64>>,
        ways: usize,
        line_bytes: u64,
        hits: u64,
        misses: u64,
    }

    impl SeedCache {
        fn new(num_sets: usize, ways: usize, line_bytes: u64) -> Self {
            Self {
                sets: vec![Vec::with_capacity(ways); num_sets],
                ways,
                line_bytes,
                hits: 0,
                misses: 0,
            }
        }

        fn access(&mut self, addr: u64) -> bool {
            let line = addr / self.line_bytes;
            let set_idx = (line % self.sets.len() as u64) as usize;
            let set = &mut self.sets[set_idx];
            if let Some(pos) = set.iter().position(|&t| t == line) {
                let tag = set.remove(pos);
                set.insert(0, tag);
                self.hits += 1;
                true
            } else {
                if set.len() == self.ways {
                    set.pop();
                }
                set.insert(0, line);
                self.misses += 1;
                false
            }
        }

        fn access_range(&mut self, addr: u64, bytes: u64) {
            let first = addr / self.line_bytes;
            let last = (addr + bytes - 1) / self.line_bytes;
            for line in first..=last {
                self.access(line * self.line_bytes);
            }
        }
    }

    /// One launch of the workload through the seed hot path. Everything the
    /// seed engine allocated per launch is allocated here per launch.
    pub fn launch(workload: &SimWorkload, spec: &GpuSpec) -> (u64, u64, u64) {
        // Arrays live in disjoint 44-bit address windows, mirroring the
        // engine's `ArrayId` address-space split.
        let base = |id: u64| id << 44;
        let num_sets = spec.l2_bytes / (spec.l2_ways * spec.line_bytes);
        let mut cache = SeedCache::new(num_sets, spec.l2_ways, spec.line_bytes as u64);
        let mut hotspots: HashMap<u64, u64> = HashMap::new();
        let base2 = base(2);
        for block_id in 0..workload.blocks as u64 {
            for w in 0..8u64 {
                cache.access_range(base(1) + block_id * 2048 + w * 1024, 16384);
                for round in 0..8u64 {
                    // The seed kernels built each warp's offset list on the
                    // heap; keep that allocation in the measured path.
                    let offsets: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|lane| SimWorkload::lane_offset(block_id, w, round, lane))
                        .collect();
                    for &off in &offsets {
                        cache.access(base2 + off);
                    }
                }
                let line = (base(3) + ((block_id + w) % 13) * 4) / spec.line_bytes as u64;
                *hotspots.entry(line).or_insert(0) += 64;
            }
        }
        let contended = hotspots.values().copied().max().unwrap_or(0);
        (cache.hits, cache.misses, contended)
    }
}

/// One worker-count measurement of the current engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadRow {
    /// Simulation worker threads.
    threads: usize,
    /// Best-of-runs wall-clock for the whole workload, milliseconds.
    wall_ms: f64,
    /// Speedup over the current engine's own 1-worker run (thread scaling;
    /// only exceeds ~1.0 when `host_cpus` > 1).
    speedup_vs_serial: f64,
    /// Speedup over the seed-style baseline (the before/after number).
    speedup_vs_baseline: f64,
}

/// The hot-loop before/after: the same engine, same worker count, with
/// the recycled [`RunContext`] arena versus a fresh context per launch
/// (what every launch paid before spans, traces, and hot-block buffers
/// moved into the context).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HotLoopBench {
    /// One reused context across all launches (the engine's own path).
    reused_context_wall_ms: f64,
    /// A fresh `RunContext` allocated per launch.
    fresh_context_wall_ms: f64,
    /// fresh / reused — what arena reuse buys on this workload.
    arena_speedup: f64,
}

/// Two-tier tuner benchmark on a moderate aggregation workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TuningBench {
    /// The tuned workload.
    graph: String,
    /// Full-simulation tuner, memoization off (every duplicate candidate
    /// re-simulated — the pre-PR cost), milliseconds.
    full_sim_unmemoized_wall_ms: f64,
    /// Full-simulation tuner with the fitness memo cache, milliseconds.
    full_sim_memoized_wall_ms: f64,
    /// Two-tier tuner end to end (probes + calibration + fast-path search
    /// + finalist verification), milliseconds.
    two_tier_wall_ms: f64,
    /// full_sim_unmemoized / two_tier — the acceptance-criterion number.
    tuner_speedup: f64,
    /// Calibrated relative-error band reported by the analytic model.
    calibration_error_band: f64,
    /// Mean fast-path (closed-form) scoring cost per candidate, µs.
    fast_path_per_candidate_us: f64,
    /// Mean full-simulation scoring cost per candidate, µs.
    full_sim_per_candidate_us: f64,
    /// full_sim / fast_path per-candidate scoring ratio.
    scoring_speedup: f64,
    /// Engine latency of the two-tier winner, simulated ms.
    two_tier_winner_ms: f64,
    /// Engine latency of the full-sim tuner's winner, simulated ms.
    full_sim_winner_ms: f64,
    /// Whether the two-tier winner sits within the calibration band of
    /// the full-sim winner (the acceptance criterion).
    winner_within_band: bool,
    /// Engine launches the two-tier tuner consumed (probes + finalists).
    engine_evals: usize,
    /// Distinct candidates the fast path scored.
    fast_evals: usize,
    /// Fast-path evaluations absorbed by the memo cache.
    memo_hits: usize,
}

/// One replica-count row of the cluster serving scenario (simulated
/// goodput, not wall clock — replication must buy schedule span).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterReplicaRow {
    /// Replicas behind the router.
    replicas: usize,
    /// In-deadline completions per simulated second.
    goodput_rps: f64,
    /// Schedule makespan, simulated ms.
    makespan_ms: f64,
    /// This row's goodput over the single-replica goodput.
    goodput_speedup_vs_single: f64,
}

/// Per-tenant SLO outcome at the two-replica operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterTenantRow {
    /// Tenant name.
    tenant: String,
    /// Requests the trace assigned to the tenant.
    arrivals: usize,
    /// Requests completed within the tenant's deadline.
    completed: usize,
    /// completed / arrivals.
    slo_attainment: f64,
}

/// Cluster serving scenario: the same device-limited trace pushed through
/// 1, 2, and 4 cost-aware-routed replicas.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterBench {
    /// Requests in the shared trace.
    requests: usize,
    /// Router policy used on every row.
    router: String,
    /// Replica-count sweep, ascending.
    rows: Vec<ClusterReplicaRow>,
    /// Best multi-replica goodput over single-replica goodput (the
    /// acceptance-criterion number; must clear 1.5x).
    goodput_speedup: f64,
    /// Per-tenant SLO attainment at two replicas.
    tenants_at_two_replicas: Vec<ClusterTenantRow>,
    /// Whether the two-replica report renders byte-identically at 1 and 4
    /// simulation worker threads.
    deterministic: bool,
}

/// Runs the cluster serving pipeline at one replica count.
fn cluster_report(spec: &GpuSpec, replicas: usize, sim_threads: usize) -> ClusterReport {
    // A Type II batched workload like the serving scenario, but with
    // wider features and fatter component graphs: the offered rate sits
    // far above one device's capacity, so the schedule is device-limited
    // and replication moves the span (a light workload pins goodput to
    // the arrival window and every replica count ties).
    let nodes = 8_000;
    let (graph, components) = batched_graph(
        &BatchedParams {
            num_nodes: nodes,
            num_edges: nodes * 4,
            mean_graph_size: 400,
            graph_size_cv: 0.4,
        },
        31,
    )
    .expect("valid batched dataset");
    let mut exec = GcnBatchExecutor::new(&graph, &components, 512, 64, 10);
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: 96,
        mean_interarrival_ms: 0.005,
        num_components: exec.num_components(),
        seed: 7,
    })
    .expect("valid arrival config");
    let tenants = vec![
        TenantSpec {
            name: "batch".into(),
            weight: 3,
            deadline_ms: None,
        },
        TenantSpec {
            name: "online".into(),
            weight: 1,
            deadline_ms: Some(10.0),
        },
    ];
    let tenant_of = assign_tenants(&arrivals, &tenants, 11).expect("valid roster");
    let cfg = ClusterConfig {
        replicas,
        streams: 2,
        queue: QueuePolicy { capacity: 96 },
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ms: 1.0,
        },
        retry: RetryPolicy::default(),
        router: RouterPolicy::CostAware,
        autoscaler: None,
    };
    let engines: Vec<Engine> = (0..replicas)
        .map(|_| {
            Engine::builder(spec.clone())
                .sim_threads(sim_threads)
                .build()
                .expect("valid engine configuration")
        })
        .collect();
    simulate_cluster(&engines, &arrivals, &tenant_of, &tenants, &cfg, &mut exec)
        .expect("cluster simulation runs")
}

/// The replica sweep plus the two-replica determinism cross-check.
fn bench_cluster(spec: &GpuSpec) -> ClusterBench {
    let counts = [1usize, 2, 4];
    let reports: Vec<ClusterReport> = counts.iter().map(|&r| cluster_report(spec, r, 1)).collect();
    let single = reports[0].goodput_rps.max(1e-12);
    let rows: Vec<ClusterReplicaRow> = counts
        .iter()
        .zip(&reports)
        .map(|(&replicas, r)| ClusterReplicaRow {
            replicas,
            goodput_rps: r.goodput_rps,
            makespan_ms: r.makespan_ms,
            goodput_speedup_vs_single: r.goodput_rps / single,
        })
        .collect();
    let goodput_speedup = rows[1..]
        .iter()
        .map(|r| r.goodput_speedup_vs_single)
        .fold(0.0, f64::max);
    let tenants_at_two_replicas = reports[1]
        .tenants
        .iter()
        .map(|t| ClusterTenantRow {
            tenant: t.name.clone(),
            arrivals: t.arrivals,
            completed: t.completed,
            slo_attainment: t.slo_attainment,
        })
        .collect();
    let deterministic = cluster_report(spec, 2, 1).render() == cluster_report(spec, 2, 4).render();
    ClusterBench {
        requests: 96,
        router: RouterPolicy::CostAware.label().into(),
        rows,
        goodput_speedup,
        tenants_at_two_replicas,
        deterministic,
    }
}

/// One kernel of the co-residency scenario's committed schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OccupancyKernelRow {
    /// The stream the kernel ran on.
    stream: usize,
    /// First block admission, simulated ms.
    start_ms: f64,
    /// Last block retirement + launch teardown, simulated ms.
    end_ms: f64,
    /// Time-averaged resident warps over the device's warp slots across
    /// the kernel's execution window — the share of the device this
    /// kernel actually held while sharing SMs with its neighbor.
    achieved_occupancy: f64,
}

/// Kernel co-residency: two half-device kernels on independent streams
/// share every SM under the block-level admission path, where the old
/// whole-kernel arbitration (one residency check per launch) serialized
/// them (simulated time, host-independent).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OccupancyBench {
    /// The two launches, for reproducibility.
    scenario: String,
    /// What whole-kernel arbitration produced: the kernels back to back
    /// (the sum of their standalone elapsed times), simulated ms.
    coarse_serialized_ms: f64,
    /// Makespan of the block-level schedule, simulated ms.
    coresident_makespan_ms: f64,
    /// coarse_serialized / coresident — the co-residency win; must
    /// exceed 1.0.
    speedup: f64,
    /// Most distinct kernels simultaneously resident on one SM; `>= 2`
    /// is proof blocks of both kernels shared an SM.
    max_coresident_kernels_per_sm: u32,
    /// Peak device-wide resident warps (never above the device's warp
    /// slots — the admission invariant, observed).
    peak_resident_warps: u64,
    /// Per-kernel placement and achieved occupancy.
    kernels: Vec<OccupancyKernelRow>,
    /// Whether the schedule is byte-identical at 1 and 4 simulation
    /// worker threads.
    deterministic: bool,
}

/// Runs the two-kernel co-residency scenario: two 30-block GEMMs (one
/// block per SM each, two per SM co-resident) released at the same
/// instant on independent streams.
fn bench_occupancy(spec: &GpuSpec) -> OccupancyBench {
    let gemm = Workload::Gemm {
        m: 30 * 64,
        n: 64,
        k: 256,
    };
    let run_at = |sim_threads: usize| {
        let engine = Engine::builder(spec.clone())
            .sim_threads(sim_threads)
            .build()
            .expect("valid engine configuration");
        let mut sim = StreamSim::new(&engine);
        let mut standalone_ms = 0.0;
        for _ in 0..2 {
            let s = sim.stream();
            let (_, m) = sim.enqueue(s, gemm).expect("valid stream");
            standalone_ms += m.time_ms();
        }
        (sim.run().expect("schedule commits"), standalone_ms)
    };
    let (report, coarse_serialized_ms) = run_at(1);
    let deterministic = report == run_at(4).0;
    let kernels: Vec<OccupancyKernelRow> = report
        .spans
        .iter()
        .filter(|s| s.class == OpClass::Kernel)
        .map(|s| OccupancyKernelRow {
            stream: s.stream.index(),
            start_ms: spec.cycles_to_ms(s.start_cycles),
            end_ms: spec.cycles_to_ms(s.end_cycles),
            achieved_occupancy: s.occupancy,
        })
        .collect();
    OccupancyBench {
        scenario: "2 streams x GEMM 1920x64x256 (30 blocks, 2-per-SM shape) \
                   released at cycle 0, P6000 model (30 SMs)"
            .into(),
        coarse_serialized_ms,
        coresident_makespan_ms: report.makespan_ms,
        speedup: coarse_serialized_ms / report.makespan_ms.max(1e-12),
        max_coresident_kernels_per_sm: report.max_coresident_kernels_per_sm,
        peak_resident_warps: report.peak_resident_warps,
        kernels,
        deterministic,
    }
}

/// One (subsampled) point of a dynamic run's hit-rate trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DynamicTrajectoryRow {
    /// Batch index in dispatch order.
    batch: usize,
    /// Graph version the batch's snapshot was pinned to.
    version: u64,
    /// Hit-count-weighted L2 hit-rate of the batch's kernels.
    hit_rate: f64,
}

/// One arm (policy off / policy on) of the dynamic-graph scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DynamicArm {
    /// In-deadline completions per simulated second.
    goodput_rps: f64,
    /// Mean kernel hit-rate over the first 8 traffic-carrying batches.
    head_hit_rate: f64,
    /// Mean kernel hit-rate over the last 8 traffic-carrying batches.
    tail_hit_rate: f64,
    /// Locality-triggered rebuilds the run performed.
    renumbers: usize,
    /// Final graph version (updates + rebuilds).
    final_version: u64,
    /// Every 8th batch of the version-tagged hit-rate trajectory.
    trajectory: Vec<DynamicTrajectoryRow>,
}

/// Dynamic-graph serving: the same seeded churn stream served with the
/// re-renumbering policy off (the layout decays forever) and on (the
/// watermark trips a rebuild whose recovered kernel speed pays back the
/// stall). Simulated time, host-independent.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DynamicBench {
    /// Base graph + layout, for reproducibility.
    graph: String,
    /// Update-stream shape.
    churn: String,
    /// Requests in the saturating arrival trace.
    requests: usize,
    /// The decay arm: no policy, the renumbered layout erodes.
    without_policy: DynamicArm,
    /// The recovery arm: watermark-triggered rebuild mid-run.
    with_policy: DynamicArm,
    /// with / without goodput (the acceptance-criterion number; must
    /// exceed 1.0 — the rebuild stall is charged on the same clock).
    goodput_recovery: f64,
    /// Whether the policy-on report renders byte-identically at 1 and 4
    /// simulation worker threads.
    deterministic: bool,
}

/// Aggregation-only snapshot executor: one advisor aggregation over the
/// live snapshot per batch, so the measured hit-rate *is* the layout's
/// locality (the models-crate GCN executor adds GEMM/stacking traffic
/// that dilutes the signal; the bench isolates it).
struct AggExecutor {
    dim: usize,
    prepared: Option<(u64, std::sync::Arc<SnapshotAggregationKernel>)>,
}

impl SnapshotExecutor for AggExecutor {
    fn plan(
        &mut self,
        batch: &DispatchedBatch,
        graph: &Csr,
        version: u64,
    ) -> gnnadvisor_core::Result<BatchWork> {
        if batch.requests.is_empty() {
            return Ok(BatchWork::default());
        }
        if self.prepared.as_ref().map(|(v, _)| *v) != Some(version) {
            let kernel =
                SnapshotAggregationKernel::prepare(graph, self.dim, RuntimeParams::default())?;
            self.prepared = Some((version, std::sync::Arc::new(kernel)));
        }
        let kernel = self.prepared.as_ref().expect("just prepared").1.clone();
        Ok(BatchWork {
            ops: vec![
                DeviceWork::Transfer {
                    bytes: (batch.requests.len() * 64) as u64,
                },
                DeviceWork::Kernel(Box::new(SnapshotKernelHandle(kernel))),
            ],
        })
    }
}

/// Runs one arm of the dynamic scenario: a freshly renumbered community
/// graph under attachment-heavy churn, arrivals paced to saturate the
/// device so goodput measures kernel speed, not the arrival window.
fn dynamic_report(
    spec: &GpuSpec,
    policy: Option<RenumberPolicy>,
    sim_threads: usize,
) -> DynamicReport {
    let (shuffled, _) = community_graph(
        &CommunityParams {
            num_nodes: 2_000,
            num_edges: 24_000,
            mean_community: 40,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        },
        1,
    )
    .expect("valid community graph");
    let r = renumber(&shuffled, &RenumberConfig::default()).expect("renumbering runs");
    let base = shuffled.permute(&r.permutation).expect("valid permutation");
    let updates = generate_updates(
        &base,
        &UpdateStreamConfig {
            num_updates: 10_000,
            mean_interarrival_ms: 0.0001,
            delete_fraction: 0.15,
            node_fraction: 0.25,
            attach_degree: 6,
            seed: 7,
        },
    )
    .expect("valid update stream");
    let arrivals = generate_arrivals(&ArrivalConfig {
        num_requests: 800,
        mean_interarrival_ms: 0.002,
        num_components: 1,
        seed: 3,
    })
    .expect("valid arrival config");
    let cfg = DynamicConfig {
        serving: ServingConfig {
            streams: 1,
            queue: QueuePolicy { capacity: 64 },
            batch: BatchPolicy {
                max_batch: 4,
                max_delay_ms: 0.2,
            },
            retry: RetryPolicy::default(),
            deadline_ms: None,
        },
        policy,
        compact_every: 64,
    };
    let engine = Engine::builder(spec.clone())
        .sim_threads(sim_threads)
        .build()
        .expect("valid engine configuration");
    let mut exec = AggExecutor {
        dim: 32,
        prepared: None,
    };
    simulate_dynamic(&[engine], base, &updates, &arrivals, &cfg, &mut exec)
        .expect("dynamic simulation runs")
}

fn dynamic_arm(report: &DynamicReport) -> DynamicArm {
    let last = report.trajectory.len().saturating_sub(1);
    DynamicArm {
        goodput_rps: report.serving.goodput_rps,
        head_hit_rate: report.head_hit_rate(8),
        tail_hit_rate: report.tail_hit_rate(8),
        renumbers: report.renumbers.len(),
        final_version: report.final_version,
        trajectory: report
            .trajectory
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 8 == 0 || *i == last)
            .map(|(_, row)| DynamicTrajectoryRow {
                batch: row.batch,
                version: row.version,
                hit_rate: row.hit_rate,
            })
            .collect(),
    }
}

/// The decay/recovery comparison plus the policy-on determinism check.
fn bench_dynamic(spec: &GpuSpec) -> DynamicBench {
    let policy = RenumberPolicy {
        window: 8,
        watermark: 0.95,
        cooldown_batches: 30,
        rebuild_cost_us_per_edge: 0.0005,
    };
    let without = dynamic_report(spec, None, 1);
    let with = dynamic_report(spec, Some(policy.clone()), 1);
    let deterministic = with.render() == dynamic_report(spec, Some(policy), 4).render();
    DynamicBench {
        graph: "community_graph(2000 nodes, 24000 edges, seed 1), renumbered".into(),
        churn: "10000 updates, 0.0001 ms gap: 15% deletes, 25% node arrivals \
                attaching 6 community edges, 60% uniform inserts"
            .into(),
        requests: 800,
        goodput_recovery: with.serving.goodput_rps / without.serving.goodput_rps.max(1e-12),
        without_policy: dynamic_arm(&without),
        with_policy: dynamic_arm(&with),
        deterministic,
    }
}

/// One epoch of the mini-batch training pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SamplingEpochRow {
    /// Epoch index.
    epoch: usize,
    /// Mini-batches the epoch ran.
    batches: usize,
    /// Mean per-batch training loss (real numerics, not simulated).
    loss: f64,
    /// Mean per-batch seed accuracy.
    accuracy: f64,
    /// Host metadata time: sampling + CSR slicing + feature gathering,
    /// simulated ms.
    host_ms: f64,
    /// Device time with every batch run alone, simulated ms.
    device_ms: f64,
    /// Makespan with the host pipelined one batch ahead of the device.
    pipelined_ms: f64,
    /// Makespan of the classic sample-then-train loop: host + device.
    serialized_ms: f64,
    /// Fraction of the host's working interval hidden under device work.
    overlap_ratio: f64,
}

/// Sampling-based mini-batch training: the host sampling pipeline
/// overlapped with device training vs the serialized loop (simulated
/// time, host-independent; losses are real numerics).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SamplingBench {
    /// Training graph, for reproducibility.
    graph: String,
    /// Sampler + model shape.
    config: String,
    /// Per-epoch trajectory.
    epochs: Vec<SamplingEpochRow>,
    /// Total host metadata time across epochs, simulated ms.
    host_ms: f64,
    /// Total solo device time across epochs, simulated ms.
    device_ms: f64,
    /// Total pipelined makespan, simulated ms.
    pipelined_ms: f64,
    /// Total serialized makespan, simulated ms.
    serialized_ms: f64,
    /// serialized / pipelined — what overlapping the host buys; must
    /// exceed 1.0.
    pipeline_speedup: f64,
    /// Last-epoch mean loss.
    final_loss: f64,
    /// Last-epoch mean seed accuracy.
    final_accuracy: f64,
    /// Whether host metadata work dominated device compute in every
    /// epoch — the paper-motivating regime at hidden dim 16.
    host_bound: bool,
    /// Whether the report renders byte-identically at 1 and 4 simulation
    /// worker threads.
    deterministic: bool,
}

/// Runs the mini-batch pipeline once at a given worker count.
fn sampling_report(spec: &GpuSpec, sim_threads: usize) -> MiniBatchReport {
    let (graph, communities) = community_graph(
        &CommunityParams {
            num_nodes: 1_200,
            num_edges: 14_400,
            mean_community: 40,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        },
        41,
    )
    .expect("valid community graph");
    let labels: Vec<usize> = communities.iter().map(|&c| c as usize % 4).collect();
    let features = Matrix::from_fn(graph.num_nodes(), 16, |v, d| {
        let hot = labels[v] % 16;
        let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
        if d == hot {
            1.0 + noise
        } else {
            noise
        }
    });
    let cfg = MiniBatchConfig {
        dims: vec![16, 16, 4],
        lr: 0.4,
        epochs: 3,
        sample: SampleConfig {
            batch_size: 128,
            fanouts: vec![8, 4],
            ..SampleConfig::default()
        },
        ..MiniBatchConfig::default()
    };
    let engine = Engine::builder(spec.clone())
        .sim_threads(sim_threads)
        .build()
        .expect("valid engine configuration");
    train_minibatch(&engine, &graph, &features, &labels, &cfg).expect("mini-batch training runs")
}

/// The pipelined-vs-serialized comparison plus the determinism check.
fn bench_sampling(spec: &GpuSpec) -> SamplingBench {
    let report = sampling_report(spec, 1);
    let deterministic = report.render() == sampling_report(spec, 4).render();
    let epochs: Vec<SamplingEpochRow> = report
        .epochs
        .iter()
        .map(|e| SamplingEpochRow {
            epoch: e.epoch,
            batches: e.num_batches,
            loss: e.loss,
            accuracy: e.accuracy,
            host_ms: e.host_ms,
            device_ms: e.device_ms,
            pipelined_ms: e.pipelined_ms,
            serialized_ms: e.serialized_ms,
            overlap_ratio: e.overlap_ratio(),
        })
        .collect();
    let host_ms: f64 = epochs.iter().map(|e| e.host_ms).sum();
    let device_ms: f64 = epochs.iter().map(|e| e.device_ms).sum();
    let pipelined_ms = report.pipelined_ms();
    let serialized_ms = report.serialized_ms();
    let host_bound = epochs.iter().all(|e| e.host_ms > e.device_ms);
    SamplingBench {
        graph: "community_graph(1200 nodes, 14400 edges, seed 41), 16-dim \
                noisy one-hot features, 4 classes"
            .into(),
        config: "batch 128 seeds, fan-outs [8, 4], neighbor sampling, \
                 dims [16, 16, 4], lr 0.4, 3 epochs"
            .into(),
        epochs,
        host_ms,
        device_ms,
        pipelined_ms,
        serialized_ms,
        pipeline_speedup: serialized_ms / pipelined_ms.max(1e-12),
        final_loss: report.final_loss(),
        final_accuracy: report.final_accuracy(),
        host_bound,
        deterministic,
    }
}

/// Everything `BENCH_sim.json` records.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchSim {
    /// Workload shape, for reproducibility.
    workload: String,
    /// Kernel launches per timed run.
    launches_per_run: usize,
    /// Timed runs per configuration (best is reported).
    runs: usize,
    /// CPUs visible to this process; thread-scaling rows are bounded by it.
    host_cpus: usize,
    /// Worker counts not timed because the host has too few CPUs to let
    /// them win (counts above `host_cpus`, except the serial row).
    skipped_worker_counts: Vec<usize>,
    /// Seed-style hot path (per-launch allocation + `Vec` LRU + div/mod),
    /// milliseconds. Understates the seed cost: warp accounting is omitted.
    baseline_wall_ms: f64,
    /// Current engine, 1 worker, milliseconds.
    serial_wall_ms: f64,
    /// Current engine at each measured worker count.
    threaded: Vec<ThreadRow>,
    /// Best baseline speedup observed at >= 4 workers (`null` when every
    /// such count was skipped on this host).
    best_speedup_4_plus: Option<f64>,
    /// Whether every worker count produced bit-identical metrics.
    deterministic: bool,
    /// Arena-reuse before/after at 1 worker, on small tuner-shaped
    /// launches (8 blocks, 400 launches per run) where per-launch context
    /// setup is a real fraction of the work.
    hot_loop: HotLoopBench,
    /// Two-tier vs full-simulation tuning.
    tuning: TuningBench,
    /// Kernel co-residency under the block-level device core vs the old
    /// whole-kernel arbitration (simulated time, host-independent).
    occupancy: OccupancyBench,
    /// Cluster serving: goodput scaling across replica counts and
    /// per-tenant SLO attainment (simulated time, host-independent).
    cluster: ClusterBench,
    /// Dynamic-graph serving: hit-rate decay under churn without the
    /// re-renumbering policy vs recovered goodput with it (simulated
    /// time, host-independent).
    dynamic: DynamicBench,
    /// Sampling-based mini-batch training: host sampling pipelined
    /// against device training vs the serialized loop (simulated time,
    /// host-independent).
    sampling: SamplingBench,
    /// How to read the numbers on this host.
    note: String,
}

const LAUNCHES_PER_RUN: usize = 24;
const RUNS: usize = 5;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Times one full workload (`LAUNCHES_PER_RUN` launches) on an engine,
/// checking run-to-run determinism against the warm-up metrics.
fn launch(engine: &Engine, kernel: &SimWorkload) -> KernelMetrics {
    engine
        .submit(&mut engine.lock_context(), Workload::Kernel(kernel))
        .map(WorkloadMetrics::into_kernel)
        .expect("workload runs")
}

/// Like [`launch`] but against a caller-provided context, so the fresh-
/// context baseline can pay the per-launch allocation the arena avoids.
fn launch_with(engine: &Engine, ctx: &mut RunContext, kernel: &SimWorkload) -> KernelMetrics {
    engine
        .submit(ctx, Workload::Kernel(kernel))
        .map(WorkloadMetrics::into_kernel)
        .expect("workload runs")
}

/// Arena before/after at 1 worker: identical launches, one reusing the
/// engine's context and one building a fresh `RunContext` each time.
/// Measured on a *small* launch (8 blocks against the full-size L2 model),
/// the shape tuner sweeps hammer: per-launch context setup — allocating
/// and wiping the cache arrays — is a real fraction of such launches, and
/// the recycled arena turns it into an O(1) epoch bump.
fn bench_hot_loop(engine: &Engine) -> HotLoopBench {
    let kernel = SimWorkload { blocks: 8 };
    const SMALL_LAUNCHES: usize = 400;
    let expect = launch(engine, &kernel);
    let mut reused = f64::INFINITY;
    let mut fresh = f64::INFINITY;
    for _ in 0..RUNS {
        let start = Instant::now();
        for _ in 0..SMALL_LAUNCHES {
            let m = launch(engine, &kernel);
            assert_eq!(m, expect, "reused-context launches must be identical");
        }
        reused = reused.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        for _ in 0..SMALL_LAUNCHES {
            let mut ctx = RunContext::new();
            let m = launch_with(engine, &mut ctx, &kernel);
            assert_eq!(m, expect, "context reuse must be transparent");
        }
        fresh = fresh.min(start.elapsed().as_secs_f64() * 1e3);
    }
    HotLoopBench {
        reused_context_wall_ms: reused,
        fresh_context_wall_ms: fresh,
        arena_speedup: fresh / reused.max(1e-9),
    }
}

/// Two-tier vs full-simulation tuning on a moderate power-law graph (the
/// same workload the acceptance tests use).
fn bench_tuning(spec: &GpuSpec) -> TuningBench {
    let graph = barabasi_albert(2_000, 8, 42).expect("generator");
    let input = extract(&graph, 96, 16, 10, AggOrder::UpdateThenAggregate);
    let dim = input.aggregation_dim();
    let est_cfg = EstimatorConfig::default();

    // Pre-PR baseline: every candidate priced on the event-level engine,
    // duplicates re-simulated (memoization off).
    let raw_cfg = EstimatorConfig {
        memoize: false,
        ..est_cfg
    };
    let start = Instant::now();
    let est = Estimator::new(input.clone(), spec.clone(), raw_cfg);
    let full_best = est.tune_profiled(|p, e| {
        aggregation_metrics(&graph, dim, p, e).map_or(f64::INFINITY, |m| m.time_ms)
    });
    let full_sim_unmemoized_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Same search with the fitness memo cache (satellite win on its own).
    let start = Instant::now();
    let est = Estimator::new(input.clone(), spec.clone(), est_cfg);
    let memo_best = est.tune_profiled(|p, e| {
        aggregation_metrics(&graph, dim, p, e).map_or(f64::INFINITY, |m| m.time_ms)
    });
    let full_sim_memoized_wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        full_best, memo_best,
        "memoization must not change the full-sim winner"
    );

    // The two-tier tuner end to end.
    let tt_cfg = TwoTierConfig {
        estimator: est_cfg,
        ..Default::default()
    };
    let start = Instant::now();
    let outcome = tune_two_tier(&input, spec, &tt_cfg, |p, e| {
        aggregation_metrics(&graph, dim, p, e)
    });
    let two_tier_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Per-candidate scoring cost, each tier on the same finalist sample.
    let sample: Vec<_> = outcome.pool.iter().take(3).map(|&(p, _)| p).collect();
    const REPS: usize = 256;
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..REPS {
        for p in &sample {
            sink += outcome.model.predict_us(p);
        }
    }
    std::hint::black_box(sink);
    let fast_path_per_candidate_us =
        start.elapsed().as_secs_f64() * 1e6 / (REPS * sample.len()) as f64;
    let engine = Engine::new(spec.clone());
    let start = Instant::now();
    for p in &sample {
        std::hint::black_box(aggregation_metrics(&graph, dim, p, &engine));
    }
    let full_sim_per_candidate_us = start.elapsed().as_secs_f64() * 1e6 / sample.len() as f64;

    let full_sim_winner_ms =
        aggregation_metrics(&graph, dim, &full_best, &engine).map_or(f64::INFINITY, |m| m.time_ms);
    let band = outcome.model.error_band();
    TuningBench {
        graph: "barabasi_albert(2000 nodes, attach 8, seed 42), feat dim 96".into(),
        full_sim_unmemoized_wall_ms,
        full_sim_memoized_wall_ms,
        two_tier_wall_ms,
        tuner_speedup: full_sim_unmemoized_wall_ms / two_tier_wall_ms.max(1e-9),
        calibration_error_band: band,
        fast_path_per_candidate_us,
        full_sim_per_candidate_us,
        scoring_speedup: full_sim_per_candidate_us / fast_path_per_candidate_us.max(1e-9),
        two_tier_winner_ms: outcome.best_engine_ms,
        full_sim_winner_ms,
        winner_within_band: outcome.best_engine_ms
            <= full_sim_winner_ms * (1.0 + band.max(0.05)) + 1e-12,
        engine_evals: outcome.engine_evals,
        fast_evals: outcome.fast_evals,
        memo_hits: outcome.memo_hits,
    }
}

fn time_engine(engine: &Engine, kernel: &SimWorkload, expect: &KernelMetrics) -> f64 {
    let start = Instant::now();
    for _ in 0..LAUNCHES_PER_RUN {
        let m = launch(engine, kernel);
        assert_eq!(&m, expect, "engine must be deterministic run-to-run");
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Times the seed-style baseline over the same launch count.
fn time_baseline(kernel: &SimWorkload, spec: &GpuSpec, warm: (u64, u64, u64)) -> f64 {
    let start = Instant::now();
    for _ in 0..LAUNCHES_PER_RUN {
        let totals = baseline::launch(kernel, spec);
        assert_eq!(totals, warm, "baseline replay must be deterministic");
        std::hint::black_box(totals);
    }
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let kernel = SimWorkload { blocks: 512 };
    // Detect host parallelism once: worker counts beyond it cannot beat
    // the serial row (they just time-slice one core), so they are checked
    // for determinism but not timed.
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timed_counts: Vec<usize> = WORKER_COUNTS
        .iter()
        .copied()
        .filter(|&t| t == 1 || t <= host_cpus)
        .collect();
    let skipped_worker_counts: Vec<usize> = WORKER_COUNTS
        .iter()
        .copied()
        .filter(|t| !timed_counts.contains(t))
        .collect();
    let spec = GpuSpec::quadro_p6000();

    // Determinism is verified at every worker count, timed or not: the
    // bit-identity guarantee does not depend on the host having cores.
    let check_engines: Vec<Engine> = WORKER_COUNTS
        .iter()
        .map(|&t| {
            Engine::builder(spec.clone())
                .sim_threads(t)
                .build()
                .expect("valid engine configuration")
        })
        .collect();
    // Warm-ups: size each run context so steady state is allocation-free,
    // and record the metrics every timed launch must reproduce.
    let warm_baseline = baseline::launch(&kernel, &spec);
    let serial_metrics = launch(&check_engines[0], &kernel);
    let mut deterministic = true;
    for engine in &check_engines[1..] {
        deterministic &= launch(engine, &kernel) == serial_metrics;
    }

    let engines: Vec<&Engine> = WORKER_COUNTS
        .iter()
        .zip(&check_engines)
        .filter(|(t, _)| timed_counts.contains(t))
        .map(|(_, e)| e)
        .collect();

    // Interleave configurations round-robin so clock-speed drift over the
    // benchmark's lifetime (noisy shared hosts) biases no configuration;
    // report per-configuration best-of-rounds.
    let mut best_baseline = f64::INFINITY;
    let mut best_engine = vec![f64::INFINITY; timed_counts.len()];
    for _ in 0..RUNS {
        best_baseline = best_baseline.min(time_baseline(&kernel, &spec, warm_baseline));
        for (slot, engine) in best_engine.iter_mut().zip(&engines) {
            *slot = slot.min(time_engine(engine, &kernel, &serial_metrics));
        }
    }

    let baseline_wall_ms = best_baseline;
    let serial_wall_ms = best_engine[0];
    let threaded: Vec<ThreadRow> = timed_counts
        .iter()
        .zip(&best_engine)
        .skip(1)
        .map(|(&threads, &wall_ms)| ThreadRow {
            threads,
            wall_ms,
            speedup_vs_serial: serial_wall_ms / wall_ms.max(1e-9),
            speedup_vs_baseline: baseline_wall_ms / wall_ms.max(1e-9),
        })
        .collect();
    let best_speedup_4_plus = threaded
        .iter()
        .filter(|r| r.threads >= 4)
        .map(|r| r.speedup_vs_baseline)
        .fold(None, |best: Option<f64>, s| {
            Some(best.map_or(s, |b| b.max(s)))
        });

    let hot_loop = bench_hot_loop(&check_engines[0]);
    let tuning = bench_tuning(&spec);
    let occupancy = bench_occupancy(&spec);
    let cluster = bench_cluster(&spec);
    let dynamic = bench_dynamic(&spec);
    let sampling = bench_sampling(&spec);

    let skip_note = if skipped_worker_counts.is_empty() {
        String::new()
    } else {
        format!(
            " Worker counts {skipped_worker_counts:?} were skipped: this host has \
             only {host_cpus} CPU(s), so they cannot win and their timings \
             would be noise (best_speedup_4_plus is null when every >= 4 \
             count is skipped)."
        )
    };
    let result = BenchSim {
        workload: format!(
            "{} blocks x 8 warps: sliding 16 KB window + 8x32-lane scattered \
             reads over a 4 MB table + contended atomics, P6000 model",
            kernel.blocks
        ),
        launches_per_run: LAUNCHES_PER_RUN,
        runs: RUNS,
        host_cpus,
        skipped_worker_counts,
        baseline_wall_ms,
        serial_wall_ms,
        threaded,
        best_speedup_4_plus,
        deterministic,
        hot_loop,
        tuning,
        occupancy,
        cluster,
        dynamic,
        sampling,
        note: format!(
            "speedup_vs_baseline is the algorithmic before/after (seed hot \
             path vs current engine, single thread); speedup_vs_serial is \
             thread scaling and is bounded by host_cpus (= {host_cpus} \
             here, so worker counts above it cannot beat 1.0x). The \
             baseline omits the seed's warp-cost arithmetic, so it \
             understates the full seed launch cost.{skip_note}"
        ),
    };

    assert!(
        result.deterministic,
        "metrics must be bit-identical across worker counts"
    );
    assert!(
        result.tuning.winner_within_band,
        "two-tier winner must sit within the calibration band of the \
         full-sim winner"
    );
    assert!(
        result.occupancy.speedup > 1.0,
        "co-residency must beat whole-kernel serialization, got {:.3}x",
        result.occupancy.speedup
    );
    assert!(
        result.occupancy.max_coresident_kernels_per_sm >= 2,
        "blocks of both kernels must share an SM, got {}",
        result.occupancy.max_coresident_kernels_per_sm
    );
    assert_eq!(result.occupancy.kernels.len(), 2);
    for k in &result.occupancy.kernels {
        assert!(
            k.achieved_occupancy > 0.0 && k.achieved_occupancy <= 1.0,
            "stream {} occupancy {} out of range",
            k.stream,
            k.achieved_occupancy
        );
    }
    assert!(
        result.occupancy.deterministic,
        "the co-residency schedule must be identical across worker counts"
    );
    assert!(
        result.cluster.goodput_speedup >= 1.5,
        "replication must buy at least 1.5x goodput at 2+ replicas, got {:.2}x",
        result.cluster.goodput_speedup
    );
    assert!(
        result.cluster.deterministic,
        "the cluster report must render byte-identically across worker counts"
    );
    assert!(
        result.dynamic.without_policy.tail_hit_rate
            < result.dynamic.without_policy.head_hit_rate - 0.01,
        "churn must decay the measured hit-rate without the policy: head {:.4} tail {:.4}",
        result.dynamic.without_policy.head_hit_rate,
        result.dynamic.without_policy.tail_hit_rate,
    );
    assert!(
        result.dynamic.with_policy.renumbers > 0,
        "decay past the watermark must trigger a rebuild"
    );
    assert!(
        result.dynamic.goodput_recovery > 1.0,
        "re-renumbering must strictly beat the decayed layout, got {:.4}x",
        result.dynamic.goodput_recovery
    );
    assert!(
        result.dynamic.deterministic,
        "the dynamic report must render byte-identically across worker counts"
    );
    assert!(
        result.sampling.host_bound,
        "host metadata work must dominate device compute at hidden dim 16"
    );
    assert!(
        result.sampling.pipeline_speedup > 1.0,
        "pipelining must strictly beat the serialized loop, got {:.4}x",
        result.sampling.pipeline_speedup
    );
    for e in &result.sampling.epochs {
        assert!(
            e.pipelined_ms < e.serialized_ms,
            "epoch {}: pipelined {:.4} ms must beat serialized {:.4} ms",
            e.epoch,
            e.pipelined_ms,
            e.serialized_ms
        );
        assert!(
            e.overlap_ratio > 0.0 && e.overlap_ratio <= 1.0,
            "epoch {}: overlap ratio {} out of range",
            e.epoch,
            e.overlap_ratio
        );
    }
    assert!(
        result.sampling.deterministic,
        "the mini-batch report must render byte-identically across worker counts"
    );

    let json = serde_json::to_string_pretty(&result).expect("serializes");
    std::fs::write("BENCH_sim.json", &json).expect("BENCH_sim.json written");
    println!("{json}");
    println!(
        "\nbaseline {:.2} ms, serial {:.2} ms; best baseline speedup at >= 4 workers: {}",
        result.baseline_wall_ms,
        result.serial_wall_ms,
        result
            .best_speedup_4_plus
            .map_or("n/a (skipped on this host)".into(), |s| format!("{s:.2}x")),
    );
    println!(
        "hot loop: reused {:.2} ms vs fresh {:.2} ms ({:.2}x); tuner: two-tier {:.0} ms \
         vs full-sim {:.0} ms ({:.1}x), band {:.1}%",
        result.hot_loop.reused_context_wall_ms,
        result.hot_loop.fresh_context_wall_ms,
        result.hot_loop.arena_speedup,
        result.tuning.two_tier_wall_ms,
        result.tuning.full_sim_unmemoized_wall_ms,
        result.tuning.tuner_speedup,
        result.tuning.calibration_error_band * 100.0,
    );
    println!(
        "occupancy: 2 co-resident kernels finish in {:.4} ms vs {:.4} ms \
         serialized ({:.2}x); {} kernels/SM peak, per-kernel occupancy {:.4}/{:.4}",
        result.occupancy.coresident_makespan_ms,
        result.occupancy.coarse_serialized_ms,
        result.occupancy.speedup,
        result.occupancy.max_coresident_kernels_per_sm,
        result.occupancy.kernels[0].achieved_occupancy,
        result.occupancy.kernels[1].achieved_occupancy,
    );
    println!(
        "cluster: best goodput speedup {:.2}x over one replica; online tenant \
         SLO attainment at 2 replicas: {:.3}",
        result.cluster.goodput_speedup,
        result
            .cluster
            .tenants_at_two_replicas
            .iter()
            .find(|t| t.tenant == "online")
            .map_or(1.0, |t| t.slo_attainment),
    );
    println!(
        "dynamic: hit-rate {:.4} -> {:.4} without the policy; {} rebuild(s) \
         recover {:.4} and {:.3}x goodput",
        result.dynamic.without_policy.head_hit_rate,
        result.dynamic.without_policy.tail_hit_rate,
        result.dynamic.with_policy.renumbers,
        result.dynamic.with_policy.tail_hit_rate,
        result.dynamic.goodput_recovery,
    );
    println!(
        "sampling: pipelined {:.4} ms vs serialized {:.4} ms ({:.2}x); host \
         {:.4} ms vs device {:.4} ms; final loss {:.4}, accuracy {:.4}",
        result.sampling.pipelined_ms,
        result.sampling.serialized_ms,
        result.sampling.pipeline_speedup,
        result.sampling.host_ms,
        result.sampling.device_ms,
        result.sampling.final_loss,
        result.sampling.final_accuracy,
    );
}
