//! Training-workload comparison (Section 8.1.4's claim that GNNAdvisor's
//! optimizations carry over to training).
//!
//! Runs real GCN training epochs (forward + backward + SGD) on a Type III
//! dataset under GNNAdvisor and DGL execution strategies, reporting the
//! simulated per-epoch time, the speedup, and the learning curve — the
//! numerics are identical by construction, only the cost differs.

use gnnadvisor_bench::report::Table;
use gnnadvisor_bench::runner::{build_advisor, ExperimentConfig, ModelKind};
use gnnadvisor_core::Framework;
use gnnadvisor_datasets::table1_by_name;
use gnnadvisor_gpu::Engine;
use gnnadvisor_models::{GcnTrainer, ModelExec};
use gnnadvisor_tensor::Matrix;

fn main() {
    let cfg = ExperimentConfig::default();
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "com-amazon".into());
    let spec = table1_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset {name}");
        std::process::exit(1);
    });
    let ds = spec.generate(cfg.scale).expect("dataset generates");
    println!(
        "GCN training on {} (scale {}): {} nodes, {} edges, {} classes\n",
        spec.name,
        cfg.scale,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );

    // Learnable labels: noisy community indicator (from the renumbering
    // pipeline's own detection, so no ground truth leaks in).
    let detected = gnnadvisor_graph::community::louvain(
        &ds.graph,
        &gnnadvisor_graph::community::LouvainConfig::default(),
    );
    let labels: Vec<usize> = detected
        .community_of
        .iter()
        .map(|&c| c as usize % ds.num_classes)
        .collect();
    let dim = 32;
    let features = Matrix::from_fn(ds.graph.num_nodes(), dim, |v, d| {
        let hot = labels[v] % dim;
        let noise = ((v * 31 + d * 17) % 13) as f32 / 26.0;
        if d == hot {
            1.0 + noise
        } else {
            noise
        }
    });

    let engine = Engine::new(cfg.spec.clone());
    let advisor = build_advisor(&ds, ModelKind::Gcn, &cfg.spec).expect("advisor builds");
    let epochs = 10;

    let mut t = Table::new(&["Strategy", "per-epoch (sim ms)", "final loss", "final acc"]);
    let mut advisor_ms = 0.0;
    for (fw, adv) in [
        (Framework::GnnAdvisor, Some(&advisor)),
        (Framework::Dgl, None),
    ] {
        let exec = ModelExec::new(&engine, &ds.graph, fw, adv);
        let mut trainer = GcnTrainer::new(&[dim, 16, ds.num_classes], 0.5, 3);
        let mut last = None;
        let mut epoch_ms = 0.0;
        for _ in 0..epochs {
            let step = trainer
                .step(&exec, &features, &labels)
                .expect("training step");
            epoch_ms = step.metrics.total_ms();
            last = Some(step);
        }
        let last = last.expect("epochs > 0");
        if fw == Framework::GnnAdvisor {
            advisor_ms = epoch_ms;
        }
        t.row(&[
            fw.name().to_string(),
            format!("{epoch_ms:.4}"),
            format!("{:.4}", last.loss),
            format!("{:.1}%", last.accuracy * 100.0),
        ]);
    }
    t.print();

    let exec = ModelExec::new(&engine, &ds.graph, Framework::Dgl, None);
    let mut trainer = GcnTrainer::new(&[dim, 16, ds.num_classes], 0.5, 3);
    println!("\nlearning curve (strategy-independent numerics):");
    for epoch in 0..epochs {
        let step = trainer
            .step(&exec, &features, &labels)
            .expect("training step");
        println!(
            "  epoch {epoch:>2}: loss {:.4}, accuracy {:>5.1}%",
            step.loss,
            step.accuracy * 100.0
        );
    }
    println!(
        "\nGNNAdvisor per-epoch: {advisor_ms:.4} sim ms — both forward and backward\n\
         aggregation run through the same group-based kernels (Section 8.1.4)."
    );
}
