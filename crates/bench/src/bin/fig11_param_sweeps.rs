//! Regenerates Figure 11: group-size / thread-per-block / dimension-worker
//! sweeps.

use gnnadvisor_bench::experiments::fig11;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = fig11::run(&cfg);
    fig11::print(&result);
    if let Ok(path) = write_json("fig11", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
