//! Serving scenario: serialized vs. overlapped simulated streams.

use gnnadvisor_bench::experiments::serving;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = serving::run(&cfg);
    serving::print(&result);
    assert!(
        result.overlap_speedup > 1.0,
        "overlapped streams must beat the serialized schedule"
    );
    if let Ok(path) = write_json("serving", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
