//! Ablation: how much does each tuning stage buy?
//!
//! Compares, per Type III dataset: (1) untuned defaults, (2) the
//! analytical Modeling decision (Eq. 2–4 grid), (3) the evolutionary
//! Estimating search on the analytical fitness, and (4) the profile-guided
//! Estimating loop whose fitness is the simulated kernel itself (the full
//! Figure 1 optimization loop). Also ablates each §5/§6 optimization from
//! the tuned configuration.

use gnnadvisor_bench::report::Table;
use gnnadvisor_bench::runner::{build_advisor_manual, run_forward, ExperimentConfig, ModelKind};
use gnnadvisor_core::input::extract;
use gnnadvisor_core::runtime::{Advisor, AdvisorConfig, TuneStrategy};
use gnnadvisor_core::tuning::estimator::{Estimator, EstimatorConfig};
use gnnadvisor_core::tuning::model;
use gnnadvisor_core::{Framework, RuntimeParams};
use gnnadvisor_datasets::TYPE_III;

fn time_with(
    cfg: &ExperimentConfig,
    ds: &gnnadvisor_datasets::Dataset,
    params: RuntimeParams,
) -> f64 {
    let advisor =
        build_advisor_manual(ds, ModelKind::Gcn, &cfg.spec, params).expect("advisor builds");
    run_forward(
        Framework::GnnAdvisor,
        ModelKind::Gcn,
        ds,
        cfg,
        Some(&advisor),
    )
    .expect("runs")
    .total_ms()
}

fn main() {
    let cfg = ExperimentConfig::default();
    println!(
        "Tuning ablation on Type III, GCN (scale {}).\nAll times simulated ms; lower is better.\n",
        cfg.scale
    );

    let mut t = Table::new(&[
        "Dataset",
        "defaults",
        "modeling (Eq.2-4)",
        "estimating",
        "profile-guided",
        "no renumber",
        "no shared",
        "no grouping (gs=1024)",
    ]);
    for spec in TYPE_III {
        let ds = spec.generate(cfg.scale).expect("dataset generates");
        let input = extract(
            &ds.graph,
            ds.feat_dim,
            ModelKind::Gcn.hidden_dim(),
            ds.num_classes,
            ModelKind::Gcn.agg_order(),
        );

        let defaults = RuntimeParams::default();
        let modeled = model::decide(&input, &cfg.spec);
        let estimated =
            Estimator::new(input.clone(), cfg.spec.clone(), EstimatorConfig::default()).tune();
        // Profile-guided: fitness is the actual simulated forward pass.
        // Every candidate advisor is handed a clone of the estimator's
        // shared engine, so the whole search reuses one RunContext.
        let profiled = Estimator::new(
            input.clone(),
            cfg.spec.clone(),
            EstimatorConfig {
                population: 12,
                iterations: 6,
                ..Default::default()
            },
        )
        .tune_profiled(|p, engine| {
            Advisor::new(
                &ds.graph,
                ds.feat_dim,
                ModelKind::Gcn.hidden_dim(),
                ds.num_classes,
                ModelKind::Gcn.agg_order(),
                AdvisorConfig {
                    spec: cfg.spec.clone(),
                    tune: TuneStrategy::Manual(RuntimeParams {
                        renumber: false,
                        ..*p
                    }),
                    engine: Some(engine.clone()),
                    ..Default::default()
                },
            )
            .and_then(|a| a.aggregate(ModelKind::Gcn.hidden_dim()))
            .map(|m| m.time_ms)
            .unwrap_or(f64::INFINITY)
        });

        let tuned = profiled;
        t.row(&[
            spec.name.to_string(),
            format!("{:.4}", time_with(&cfg, &ds, defaults)),
            format!("{:.4}", time_with(&cfg, &ds, modeled)),
            format!("{:.4}", time_with(&cfg, &ds, estimated)),
            format!("{:.4}", time_with(&cfg, &ds, tuned)),
            format!(
                "{:.4}",
                time_with(
                    &cfg,
                    &ds,
                    RuntimeParams {
                        renumber: false,
                        ..tuned
                    }
                )
            ),
            format!(
                "{:.4}",
                time_with(
                    &cfg,
                    &ds,
                    RuntimeParams {
                        use_shared: false,
                        ..tuned
                    }
                )
            ),
            format!(
                "{:.4}",
                time_with(
                    &cfg,
                    &ds,
                    RuntimeParams {
                        group_size: 1024,
                        ..tuned
                    }
                )
            ),
        ]);
    }
    t.print();
}
