//! Regenerates Table 2: comparison with NeuGraph.

use gnnadvisor_bench::experiments::table2;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = table2::run(&cfg);
    table2::print(&result);
    if let Ok(path) = write_json("table2", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
