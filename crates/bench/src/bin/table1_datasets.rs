//! Regenerates Table 1: the dataset inventory.

use gnnadvisor_bench::experiments::table1;
use gnnadvisor_bench::report::write_json;
use gnnadvisor_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::default();
    let result = table1::run(&cfg);
    table1::print(&result);
    if let Ok(path) = write_json("table1", &result) {
        eprintln!("\n[written {}]", path.display());
    }
}
