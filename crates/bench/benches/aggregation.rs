//! Criterion benchmarks of the aggregation strategies.
//!
//! These measure the *simulator's* wall-clock cost of evaluating each
//! strategy on a fixed mid-size graph — a regression harness for the
//! runtime system itself. The simulated GPU milliseconds (the paper's
//! numbers) come from the `src/bin` experiment binaries instead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gnnadvisor_core::frameworks::{aggregate_with, Framework};
use gnnadvisor_core::input::AggOrder;
use gnnadvisor_core::runtime::{Advisor, AdvisorConfig};
use gnnadvisor_gpu::{Engine, GpuSpec};
use gnnadvisor_graph::generators::{community_graph, CommunityParams};
use gnnadvisor_graph::Csr;

fn graph() -> Csr {
    let params = CommunityParams {
        num_nodes: 2_000,
        num_edges: 40_000,
        mean_community: 64,
        community_size_cv: 0.3,
        inter_fraction: 0.1,
        shuffle_ids: true,
    };
    community_graph(&params, 2024).expect("valid").0
}

fn bench_strategies(c: &mut Criterion) {
    let g = graph();
    let engine = Engine::new(GpuSpec::quadro_p6000());
    let advisor = Advisor::new(
        &g,
        96,
        16,
        10,
        AggOrder::UpdateThenAggregate,
        AdvisorConfig::default(),
    )
    .expect("builds");
    let dim = 16;

    let mut group = c.benchmark_group("aggregation_strategies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("gnnadvisor", |b| {
        b.iter(|| {
            aggregate_with(Framework::GnnAdvisor, &engine, &g, dim, Some(&advisor)).expect("runs")
        })
    });
    for fw in [
        Framework::Dgl,
        Framework::Pyg,
        Framework::Gunrock,
        Framework::NodeCentric,
        Framework::EdgeCentric,
    ] {
        group.bench_function(fw.name(), |b| {
            b.iter(|| aggregate_with(fw, &engine, &g, dim, None).expect("runs"))
        });
    }
    group.finish();
}

fn bench_runtime_construction(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("runtime_construction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("advisor_new_with_renumbering", |b| {
        b.iter(|| {
            Advisor::new(
                &g,
                96,
                16,
                10,
                AggOrder::UpdateThenAggregate,
                AdvisorConfig::default(),
            )
            .expect("builds")
        })
    });
    group.bench_function("advisor_new_no_renumbering", |b| {
        b.iter(|| {
            let cfg = AdvisorConfig {
                renumber: Some(false),
                ..Default::default()
            };
            Advisor::new(&g, 96, 16, 10, AggOrder::UpdateThenAggregate, cfg).expect("builds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_runtime_construction);
criterion_main!(benches);
