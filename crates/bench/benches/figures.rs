//! Criterion wrappers around every paper experiment at tiny scale.
//!
//! `cargo bench` therefore exercises the full table/figure regeneration
//! pipeline end-to-end (one benchmark per paper artifact). The printed
//! paper-style tables come from the `src/bin` binaries; these benches keep
//! the whole pipeline honest and measure its wall-clock cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use gnnadvisor_bench::experiments::{fig08, fig09, fig10, fig11, fig12, fig13, table1, table2};
use gnnadvisor_bench::ExperimentConfig;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        scale: 0.004,
        ..Default::default()
    }
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(4));
    let cfg = tiny();
    group.bench_function("table1_datasets", |b| b.iter(|| table1::run(&cfg)));
    group.bench_function("fig08_dgl_speedup", |b| b.iter(|| fig08::run(&cfg)));
    group.bench_function("fig09_kernel_metrics", |b| b.iter(|| fig09::run(&cfg)));
    group.bench_function("fig10_pyg_gunrock", |b| b.iter(|| fig10::run(&cfg)));
    group.bench_function("table2_neugraph", |b| b.iter(|| table2::run(&cfg)));
    group.bench_function("fig11_param_sweeps", |b| b.iter(|| fig11::run(&cfg)));
    group.bench_function("fig12_renumbering_block", |b| b.iter(|| fig12::run(&cfg)));
    group.bench_function("fig13_case_studies", |b| b.iter(|| fig13::run(&cfg)));
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
