//! Property-based tests on the mini-batch sampler: seeded determinism
//! and the structural invariants every sampled block must satisfy.

use proptest::prelude::*;

use gnnadvisor_graph::sample::{sample_epoch, SampleConfig, SampleStrategy, SampledBlock};
use gnnadvisor_graph::{Csr, EdgeList};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        4usize..=60,
        proptest::collection::vec((0u32..60, 0u32..60), 1..200),
    )
        .prop_map(|(n, raw)| {
            let mut el = EdgeList::new(n);
            for (u, v) in raw {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    el.push_undirected(u, v);
                }
            }
            el.dedup();
            el.into_csr().expect("bounded ids")
        })
}

fn arb_config() -> impl Strategy<Value = SampleConfig> {
    (
        1usize..=20,
        proptest::collection::vec(1usize..=6, 1..=3),
        prop_oneof![
            Just(SampleStrategy::NeighborFanout),
            (4usize..=64).prop_map(|budget| SampleStrategy::LayerWise { budget }),
        ],
        0u64..1_000,
    )
        .prop_map(|(batch_size, fanouts, strategy, seed)| SampleConfig {
            batch_size,
            fanouts,
            strategy,
            seed,
        })
}

/// Every invariant one block must satisfy against its base graph.
fn check_block(g: &Csr, cfg: &SampleConfig, blk: &SampledBlock) {
    let n = blk.nodes.len();
    assert_eq!(blk.block.num_nodes(), n);
    assert!(blk.num_seeds >= 1 && blk.num_seeds <= cfg.batch_size);

    // Block-local node ids map to distinct base nodes in range.
    let mut seen = blk.nodes.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), n, "block nodes must be unique");
    assert!(blk.nodes.iter().all(|&v| (v as usize) < g.num_nodes()));

    // hop_offsets partitions the node list: seeds first, hops after.
    assert_eq!(blk.hop_offsets.first().copied(), Some(0));
    assert_eq!(blk.hop_offsets.last().copied(), Some(n));
    assert!(blk.hop_offsets.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(blk.hop_offsets.len(), cfg.fanouts.len() + 2);
    assert_eq!(blk.hop_offsets[1], blk.num_seeds);

    // Fan-out bounds and base-graph membership, row by row.
    for v in 0..n as u32 {
        let deg = blk.block.degree(v);
        let base_deg = g.degree(blk.nodes[v as usize]);
        assert!(deg <= base_deg, "block degree may not exceed base degree");
        if let SampleStrategy::NeighborFanout = cfg.strategy {
            let max_fanout = cfg.fanouts.iter().copied().max().expect("non-empty");
            assert!(deg <= max_fanout, "degree {deg} over fan-out {max_fanout}");
        }
        for &u in blk.block.neighbors(v) {
            let (bu, bv) = (blk.nodes[u as usize], blk.nodes[v as usize]);
            assert!(
                g.neighbors(bv).contains(&bu),
                "sampled edge {bv}->{bu} missing from the base graph"
            );
        }
    }
    assert!(blk.scanned_edges >= blk.block.num_edges());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same (graph, config, epoch) triple reproduces the same blocks,
    /// byte for byte, and every block satisfies the structural invariants.
    #[test]
    fn sampling_is_deterministic_and_blocks_are_valid(
        g in arb_graph(),
        cfg in arb_config(),
        epoch in 0u64..4,
    ) {
        let a = sample_epoch(&g, &cfg, epoch).expect("samples");
        let b = sample_epoch(&g, &cfg, epoch).expect("samples");
        prop_assert_eq!(&a, &b, "sampling must replay exactly");

        // Together the blocks' seeds cover every node exactly once.
        let mut seeds: Vec<u32> = a
            .iter()
            .flat_map(|blk| blk.nodes[..blk.num_seeds].iter().copied())
            .collect();
        seeds.sort_unstable();
        let all: Vec<u32> = (0..g.num_nodes() as u32).collect();
        prop_assert_eq!(seeds, all);

        for blk in &a {
            check_block(&g, &cfg, blk);
        }
    }

    /// Different epochs draw different seed permutations (on any graph
    /// big enough that a coincidence is implausible), while each stays
    /// individually replayable.
    #[test]
    fn epochs_reshuffle_the_seed_order(cfg in arb_config()) {
        let mut el = EdgeList::new(40);
        for v in 1u32..40 {
            el.push_undirected(0, v);
            el.push_undirected(v, (v % 39) + 1);
        }
        el.dedup();
        let g = el.into_csr().expect("valid");
        let order = |epoch: u64| -> Vec<u32> {
            sample_epoch(&g, &cfg, epoch)
                .expect("samples")
                .iter()
                .flat_map(|blk| blk.nodes[..blk.num_seeds].iter().copied())
                .collect()
        };
        prop_assert_ne!(order(0), order(1), "epochs must reshuffle seeds");
    }
}
