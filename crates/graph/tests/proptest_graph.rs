//! Property-based tests on the graph substrate's core data structures.

use proptest::prelude::*;

use gnnadvisor_graph::community::{louvain, modularity, LouvainConfig};
use gnnadvisor_graph::reorder::rcm_order;
use gnnadvisor_graph::{Csr, EdgeList, Permutation};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (
        2usize..=50,
        proptest::collection::vec((0u32..50, 0u32..50), 0..150),
    )
        .prop_map(|(n, raw)| {
            let mut el = EdgeList::new(n);
            for (u, v) in raw {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    el.push_undirected(u, v);
                }
            }
            el.dedup();
            el.into_csr().expect("bounded ids")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants hold for anything the EdgeList builder produces.
    #[test]
    fn csr_invariants(g in arb_graph()) {
        prop_assert!(g.is_sorted());
        prop_assert!(g.is_symmetric());
        let degree_sum: usize = (0..g.num_nodes() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_edges());
    }

    /// Transpose is an involution, and on symmetric graphs the identity.
    #[test]
    fn transpose_involution(g in arb_graph()) {
        prop_assert_eq!(g.transpose().transpose(), g.clone());
        prop_assert_eq!(g.transpose(), g);
    }

    /// Permuting preserves degree multiset and symmetry; bandwidth of the
    /// identity permutation is unchanged.
    #[test]
    fn permute_preserves_structure(g in arb_graph(), seed in 0u64..100) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.num_nodes();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let perm = Permutation::from_order(order).expect("valid");
        let p = g.permute(&perm).expect("valid");
        prop_assert_eq!(p.num_edges(), g.num_edges());
        prop_assert!(p.is_symmetric());
        let identity = Permutation::identity(n);
        prop_assert_eq!(g.permute(&identity).expect("valid"), g);
    }

    /// RCM over the whole node set emits a permutation of the nodes.
    #[test]
    fn rcm_is_permutation(g in arb_graph()) {
        let all: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let mut order = rcm_order(&g, &all);
        prop_assert_eq!(order.len(), g.num_nodes());
        order.sort_unstable();
        prop_assert_eq!(order, all);
    }

    /// Louvain output is a dense partition whose modularity is at least
    /// that of the all-singletons partition.
    #[test]
    fn louvain_output_is_valid_partition(g in arb_graph()) {
        let r = louvain(&g, &LouvainConfig::default());
        prop_assert_eq!(r.community_of.len(), g.num_nodes());
        if !r.community_of.is_empty() {
            let max = *r.community_of.iter().max().expect("non-empty") as usize;
            prop_assert_eq!(max + 1, r.num_communities);
        }
        let singletons: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let q_singletons = modularity(&g, &singletons);
        prop_assert!(r.modularity >= q_singletons - 1e-9,
            "louvain ({}) must not underperform singletons ({})", r.modularity, q_singletons);
    }

    /// Edge-list round-trip through the text format preserves the graph up
    /// to id remapping (degree multiset).
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        for (u, v) in g.edges() {
            use std::io::Write;
            writeln!(buf, "{u} {v}").expect("write to Vec");
        }
        let opts = gnnadvisor_graph::io::LoadOptions { symmetrize: false, drop_self_loops: false };
        let back = gnnadvisor_graph::io::read_edge_list(buf.as_slice(), &opts).expect("parses");
        prop_assert_eq!(back.num_edges(), g.num_edges());
        // Isolated trailing nodes are dropped by id interning; degree
        // multisets must match over non-isolated nodes.
        let degs = |g: &Csr| {
            let mut d: Vec<usize> =
                (0..g.num_nodes() as u32).map(|v| g.degree(v)).filter(|&d| d > 0).collect();
            d.sort_unstable();
            d
        };
        prop_assert_eq!(degs(&back), degs(&g));
    }
}
