//! Property tests for `DeltaCsr` snapshot semantics.
//!
//! The contract under test (ISSUE 8, satellite 3): for *any* interleaving
//! of updates, snapshot reads, and compactions,
//!
//! - a snapshot taken at version `v` observes exactly
//!   `base.edges ± applied deltas at v` — both the count and the full
//!   adjacency — no matter how many mutations follow;
//! - compaction is a no-op for query results (it only rebuilds the
//!   representation).
//!
//! A plain `BTreeSet<(u, v)>` edge-set model is stepped alongside the
//! `DeltaCsr`; frozen copies of the model at snapshot instants are the
//! oracle for late snapshot reads.

use std::collections::BTreeSet;

use proptest::prelude::*;

use gnnadvisor_graph::{Csr, DeltaCsr, GraphBuilder, GraphSnapshot, NodeId};

/// One scripted step of the interleaving.
#[derive(Debug, Clone)]
enum Step {
    Insert(u64, u64),
    Delete(u64, u64),
    AddNode,
    Snapshot,
    Compact,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    // The vendored proptest samples integer ranges; an op selector picks
    // the step kind (weighted by range width) and the endpoints are
    // reduced modulo the live node count at apply time.
    proptest::collection::vec(
        (0u8..11, 0u64..1000, 0u64..1000).prop_map(|(op, u, v)| match op {
            0..=3 => Step::Insert(u, v),
            4..=6 => Step::Delete(u, v),
            7 => Step::AddNode,
            8..=9 => Step::Snapshot,
            _ => Step::Compact,
        }),
        1..60,
    )
}

fn base_graph(n: usize, ring: bool) -> Csr {
    let mut b = GraphBuilder::new(n);
    if ring && n >= 3 {
        for v in 0..n as NodeId {
            b = b.undirected_edge(v, (v + 1) % n as NodeId);
        }
    }
    b.build().expect("valid")
}

/// Directed edge count of a model edge set (2 entries per undirected edge).
fn model_edges(model: &BTreeSet<(NodeId, NodeId)>) -> usize {
    model.len() * 2
}

/// Asserts a snapshot agrees with a frozen model byte-for-byte (plain
/// panicking asserts — the vendored proptest runs bodies as ordinary
/// tests without shrinking).
fn assert_snapshot_matches(
    snap: &GraphSnapshot,
    model: &BTreeSet<(NodeId, NodeId)>,
    nodes: usize,
    applied_adds: usize,
    applied_dels: usize,
    base_edges: usize,
) {
    assert_eq!(snap.num_nodes(), nodes);
    assert_eq!(snap.num_edges(), model_edges(model));
    // The invariant as stated in the issue: edges at version v equal the
    // base count plus applied inserts minus applied deletes (directed).
    assert_eq!(
        snap.num_edges(),
        base_edges + 2 * applied_adds - 2 * applied_dels
    );
    for v in 0..nodes as NodeId {
        let mut expected: Vec<NodeId> = model
            .iter()
            .filter_map(|&(a, b)| {
                if a == v {
                    Some(b)
                } else if b == v {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        expected.sort_unstable();
        assert_eq!(snap.neighbors_of(v), expected, "row {v} diverged");
    }
    // Materialization agrees with the row-by-row view.
    let csr = snap.to_csr();
    assert_eq!(csr.num_nodes(), nodes);
    assert_eq!(csr.num_edges(), snap.num_edges());
    assert!(csr.is_symmetric());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any interleaving of updates, snapshots, and compactions preserves
    /// `snapshot(v).edges == base.edges ± applied deltas at version v`,
    /// snapshots stay frozen, and compaction never changes query results.
    #[test]
    fn snapshots_observe_exactly_their_version(
        n in 4usize..12,
        ring in 0u8..2,
        steps in arb_steps(),
    ) {
        let base = base_graph(n, ring == 1);
        let base_edges = base.num_edges();
        let mut delta = DeltaCsr::new(base.clone());

        // Live model state.
        let mut model: BTreeSet<(NodeId, NodeId)> = base
            .edges()
            .filter(|&(v, u)| v < u)
            .collect();
        let mut nodes = n;
        let mut applied_adds = 0usize;
        let mut applied_dels = 0usize;

        // Frozen (snapshot, model, counts) tuples, re-checked after every step.
        struct Frozen {
            snap: GraphSnapshot,
            model: BTreeSet<(NodeId, NodeId)>,
            nodes: usize,
            adds: usize,
            dels: usize,
        }
        let mut frozen: Vec<Frozen> = Vec::new();

        for step in steps {
            match step {
                Step::Insert(u, v) => {
                    let u = (u % nodes as u64) as NodeId;
                    let v = (v % nodes as u64) as NodeId;
                    if u == v {
                        prop_assert!(delta.insert_edge(u, v).is_err());
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    let version = delta.version();
                    let effective = delta.insert_edge(u, v).expect("in range");
                    prop_assert_eq!(effective, model.insert(key));
                    if effective {
                        applied_adds += 1;
                        prop_assert_eq!(delta.version(), version + 1);
                    } else {
                        prop_assert_eq!(delta.version(), version, "no-op must not bump version");
                    }
                }
                Step::Delete(u, v) => {
                    let u = (u % nodes as u64) as NodeId;
                    let v = (v % nodes as u64) as NodeId;
                    if u == v {
                        continue;
                    }
                    let key = (u.min(v), u.max(v));
                    let version = delta.version();
                    let effective = delta.delete_edge(u, v).expect("in range");
                    prop_assert_eq!(effective, model.remove(&key));
                    if effective {
                        applied_dels += 1;
                        prop_assert_eq!(delta.version(), version + 1);
                    } else {
                        prop_assert_eq!(delta.version(), version);
                    }
                }
                Step::AddNode => {
                    let id = delta.add_node();
                    prop_assert_eq!(id as usize, nodes);
                    nodes += 1;
                }
                Step::Snapshot => {
                    frozen.push(Frozen {
                        snap: delta.snapshot(),
                        model: model.clone(),
                        nodes,
                        adds: applied_adds,
                        dels: applied_dels,
                    });
                }
                Step::Compact => {
                    let version = delta.version();
                    let live = delta.to_csr();
                    delta.compact();
                    prop_assert_eq!(delta.version(), version, "compaction keeps the version");
                    prop_assert_eq!(delta.delta_entries(), 0);
                    prop_assert_eq!(delta.to_csr(), live, "compaction is a query no-op");
                }
            }
            // The live view always matches the live model...
            prop_assert_eq!(delta.num_edges(), model_edges(&model));
            prop_assert_eq!(delta.num_nodes(), nodes);
            // ...and every frozen snapshot still matches its frozen model.
            for f in &frozen {
                assert_snapshot_matches(&f.snap, &f.model, f.nodes, f.adds, f.dels, base_edges);
            }
        }
    }
}
