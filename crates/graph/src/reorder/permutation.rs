//! Node-id permutations (bijections over `0..n`).

use crate::csr::NodeId;
use crate::{GraphError, Result};

/// A validated bijection over node ids `0..n`.
///
/// Stored as `new_of_old`: `new_of_old[old] = new`. The inverse direction is
/// materialized on demand by [`Permutation::inverse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<NodeId>,
}

impl Permutation {
    /// The identity permutation over `n` nodes.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as NodeId).collect(),
        }
    }

    /// Builds a permutation from the `new_of_old` mapping, validating that
    /// it is a bijection over `0..n`.
    pub fn from_new_of_old(new_of_old: Vec<NodeId>) -> Result<Self> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &new in &new_of_old {
            let idx = new as usize;
            if idx >= n {
                return Err(GraphError::InvalidPermutation {
                    reason: "target id out of range",
                });
            }
            if seen[idx] {
                return Err(GraphError::InvalidPermutation {
                    reason: "duplicate target id",
                });
            }
            seen[idx] = true;
        }
        Ok(Self { new_of_old })
    }

    /// Builds a permutation from an *ordering*: `order[new] = old` (i.e. the
    /// node that should receive id `new`). This is the natural output shape
    /// of traversal-based reorderings like RCM.
    pub fn from_order(order: Vec<NodeId>) -> Result<Self> {
        let n = order.len();
        let mut new_of_old = vec![NodeId::MAX; n];
        for (new_id, &old) in order.iter().enumerate() {
            let idx = old as usize;
            if idx >= n {
                return Err(GraphError::InvalidPermutation {
                    reason: "source id out of range",
                });
            }
            if new_of_old[idx] != NodeId::MAX {
                return Err(GraphError::InvalidPermutation {
                    reason: "duplicate source id",
                });
            }
            new_of_old[idx] = new_id as NodeId;
        }
        Ok(Self { new_of_old })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// Whether this is the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The new id of old node `v`.
    #[inline]
    pub fn new_of(&self, v: NodeId) -> NodeId {
        self.new_of_old[v as usize]
    }

    /// The raw `new_of_old` slice.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.new_of_old
    }

    /// The inverse permutation (`old_of_new`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as NodeId; self.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            inv[new as usize] = old as NodeId;
        }
        Permutation { new_of_old: inv }
    }

    /// Composition: applies `self` first, then `next` (`result.new_of(v) ==
    /// next.new_of(self.new_of(v))`).
    pub fn then(&self, next: &Permutation) -> Result<Permutation> {
        if self.len() != next.len() {
            return Err(GraphError::InvalidPermutation {
                reason: "length mismatch in composition",
            });
        }
        Ok(Permutation {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&mid| next.new_of(mid))
                .collect(),
        })
    }

    /// Whether this permutation maps every id to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(i, &v)| i as NodeId == v)
    }

    /// Permutes the rows of a row-major matrix in one pass: row `old` of the
    /// input lands at row `new_of(old)` of the output. `row_len` is the
    /// number of elements per row.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len() * row_len`.
    pub fn permute_rows<T: Copy + Default>(&self, data: &[T], row_len: usize) -> Vec<T> {
        assert_eq!(data.len(), self.len() * row_len, "matrix shape mismatch");
        let mut out = vec![T::default(); data.len()];
        for old in 0..self.len() {
            let new = self.new_of_old[old] as usize;
            out[new * row_len..(new + 1) * row_len]
                .copy_from_slice(&data[old * row_len..(old + 1) * row_len]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn validation_rejects_non_bijections() {
        assert!(Permutation::from_new_of_old(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_new_of_old(vec![0, 5, 1]).is_err());
        assert!(Permutation::from_new_of_old(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn from_order_inverts() {
        // order[new] = old: node 2 gets id 0, node 0 gets id 1, node 1 gets id 2.
        let p = Permutation::from_order(vec![2, 0, 1]).expect("valid");
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
        assert_eq!(p.new_of(1), 2);
        assert!(Permutation::from_order(vec![1, 1, 0]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_new_of_old(vec![3, 1, 0, 2]).expect("valid");
        assert!(p.then(&p.inverse()).expect("same length").is_identity());
        assert!(p.inverse().then(&p).expect("same length").is_identity());
    }

    #[test]
    fn composition_order() {
        let first = Permutation::from_new_of_old(vec![1, 2, 0]).expect("valid");
        let second = Permutation::from_new_of_old(vec![2, 0, 1]).expect("valid");
        let both = first.then(&second).expect("same length");
        for v in 0..3 {
            assert_eq!(both.new_of(v), second.new_of(first.new_of(v)));
        }
    }

    #[test]
    fn permute_rows_moves_data() {
        let p = Permutation::from_new_of_old(vec![2, 0, 1]).expect("valid");
        let data = vec![10, 11, 20, 21, 30, 31]; // 3 rows x 2 cols
        let out = p.permute_rows(&data, 2);
        assert_eq!(out, vec![20, 21, 30, 31, 10, 11]);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn permute_rows_shape_checked() {
        Permutation::identity(2).permute_rows(&[1, 2, 3], 2);
    }
}
