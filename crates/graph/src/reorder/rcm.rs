//! Reverse Cuthill–McKee traversal (Section 6.1, step 2).
//!
//! Within each detected community, the paper traverses nodes with RCM "to
//! maximize the neighbor sharing among nodes with consecutive IDs". RCM is
//! a breadth-first traversal from a low-degree peripheral node with
//! neighbors visited in ascending-degree order, reversed at the end; it is
//! the classic bandwidth-reduction ordering for sparse matrices.

use crate::csr::{Csr, NodeId};

/// Computes the RCM ordering of a node subset.
///
/// `subset` lists the nodes to order (typically one community); edges to
/// nodes outside the subset are ignored. The returned vector is a
/// permutation of `subset`: position `i` holds the node that should receive
/// the `i`-th id. Disconnected parts of the subset are ordered one
/// component at a time, each started from its minimum-degree node.
pub fn rcm_order(graph: &Csr, subset: &[NodeId]) -> Vec<NodeId> {
    if subset.is_empty() {
        return Vec::new();
    }
    // Membership and local degree (within-subset) computation.
    let in_subset: std::collections::HashSet<NodeId> = subset.iter().copied().collect();
    let local_degree = |v: NodeId| -> usize {
        graph
            .neighbors(v)
            .iter()
            .filter(|u| in_subset.contains(u))
            .count()
    };

    let mut visited: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    let mut order: Vec<NodeId> = Vec::with_capacity(subset.len());

    // Candidate start nodes sorted by (degree, id) for determinism.
    let mut starts: Vec<NodeId> = subset.to_vec();
    starts.sort_unstable_by_key(|&v| (local_degree(v), v));

    let mut queue = std::collections::VecDeque::new();
    for &start in &starts {
        if visited.contains(&start) {
            continue;
        }
        visited.insert(start);
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut next: Vec<NodeId> = graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|u| in_subset.contains(u) && !visited.contains(u))
                .collect();
            next.sort_unstable_by_key(|&u| (local_degree(u), u));
            for u in next {
                visited.insert(u);
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, Permutation};

    #[test]
    fn orders_every_subset_node_exactly_once() {
        let g = GraphBuilder::new(6)
            .path(&[0, 3, 1, 4, 2, 5])
            .build()
            .expect("valid");
        let subset: Vec<NodeId> = (0..6).collect();
        let mut order = rcm_order(&g, &subset);
        assert_eq!(order.len(), 6);
        order.sort_unstable();
        assert_eq!(order, subset);
    }

    #[test]
    fn reduces_bandwidth_of_scrambled_path() {
        // A path visited in scrambled id order has high bandwidth; RCM
        // restores bandwidth 1.
        let g = GraphBuilder::new(8)
            .path(&[0, 5, 2, 7, 1, 6, 3, 4])
            .build()
            .expect("valid");
        assert!(g.bandwidth() > 1);
        let order = rcm_order(&g, &(0..8).collect::<Vec<_>>());
        let perm = Permutation::from_order(order).expect("valid");
        let reordered = g.permute(&perm).expect("valid");
        assert_eq!(reordered.bandwidth(), 1, "RCM must linearize a path");
    }

    #[test]
    fn respects_subset_boundary() {
        let g = GraphBuilder::new(6)
            .clique(&[0, 1, 2])
            .clique(&[3, 4, 5])
            .undirected_edge(2, 3)
            .build()
            .expect("valid");
        let order = rcm_order(&g, &[3, 4, 5]);
        assert_eq!(order.len(), 3);
        assert!(order.iter().all(|&v| (3..6).contains(&v)));
    }

    #[test]
    fn handles_disconnected_subset() {
        let g = GraphBuilder::new(4)
            .undirected_edge(0, 1)
            .build()
            .expect("valid");
        let mut order = rcm_order(&g, &[0, 1, 2, 3]);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_subset() {
        let g = GraphBuilder::new(2).build().expect("valid");
        assert!(rcm_order(&g, &[]).is_empty());
    }

    #[test]
    fn deterministic() {
        let g = GraphBuilder::new(5)
            .clique(&[0, 1, 2, 3, 4])
            .build()
            .expect("valid");
        let s: Vec<NodeId> = (0..5).collect();
        assert_eq!(rcm_order(&g, &s), rcm_order(&g, &s));
    }
}
