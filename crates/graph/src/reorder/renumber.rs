//! Community-aware node renumbering (Section 6.1, the full pipeline).
//!
//! Three steps, exactly as in the paper:
//!
//! 1. Identify communities that maximize modularity (Louvain).
//! 2. Traverse nodes inside each community with RCM "to maximize the
//!    neighbor sharing among nodes with consecutive IDs".
//! 3. Emit the one-to-one old-id → new-id mapping: communities receive
//!    consecutive id blocks, and within a block ids follow RCM order.
//!
//! The result is a [`Permutation`] the runtime applies to the graph *and*
//! to the node-feature matrix before building workloads, improving the
//! temporal and spatial locality of aggregation (evaluated in Figure 12).

use crate::community::{louvain, LouvainConfig};
use crate::csr::{Csr, NodeId};
use crate::reorder::rcm::rcm_order;
use crate::{Permutation, Result};

/// Configuration for the renumbering pipeline.
#[derive(Debug, Clone, Default)]
pub struct RenumberConfig {
    /// Louvain settings for the community step.
    pub louvain: LouvainConfig,
    /// Skip the RCM step and order nodes within a community by original id
    /// (ablation knob; the full pipeline leaves this `false`).
    pub skip_rcm: bool,
}

/// Output of the renumbering pipeline.
#[derive(Debug, Clone)]
pub struct RenumberResult {
    /// The old-id → new-id mapping.
    pub permutation: Permutation,
    /// Community id per *old* node id (dense).
    pub community_of: Vec<u32>,
    /// Number of communities found.
    pub num_communities: usize,
    /// Modularity of the detected partition.
    pub modularity: f64,
}

/// Runs the Section 6.1 pipeline on a symmetric graph.
pub fn renumber(graph: &Csr, config: &RenumberConfig) -> Result<RenumberResult> {
    let n = graph.num_nodes();
    let detected = louvain(graph, &config.louvain);

    // Bucket nodes per community, communities ordered by their minimum
    // original id so the output is stable.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); detected.num_communities.max(1)];
    for v in 0..n as NodeId {
        members[detected.community_of[v as usize] as usize].push(v);
    }
    members.retain(|m| !m.is_empty());
    members.sort_unstable_by_key(|m| m[0]);

    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for community in &members {
        if config.skip_rcm {
            order.extend_from_slice(community);
        } else {
            order.extend(rcm_order(graph, community));
        }
    }
    let permutation = Permutation::from_order(order)?;
    Ok(RenumberResult {
        permutation,
        community_of: detected.community_of,
        num_communities: detected.num_communities,
        modularity: detected.modularity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityParams};
    use crate::stats::locality_score;

    fn latent_community_graph(seed: u64) -> Csr {
        let params = CommunityParams {
            num_nodes: 1_200,
            num_edges: 24_000,
            mean_community: 40,
            community_size_cv: 0.3,
            inter_fraction: 0.08,
            shuffle_ids: true,
        };
        community_graph(&params, seed).expect("valid").0
    }

    #[test]
    fn produces_valid_permutation() {
        let g = latent_community_graph(1);
        let r = renumber(&g, &RenumberConfig::default()).expect("valid");
        assert_eq!(r.permutation.len(), g.num_nodes());
        // Permutation validity is enforced by construction; applying it must
        // preserve the edge count and symmetry.
        let p = g.permute(&r.permutation).expect("valid");
        assert_eq!(p.num_edges(), g.num_edges());
        assert!(p.is_symmetric());
    }

    #[test]
    fn improves_locality_on_shuffled_community_graph() {
        let g = latent_community_graph(2);
        let before = g.mean_edge_span();
        let r = renumber(&g, &RenumberConfig::default()).expect("valid");
        let after = g.permute(&r.permutation).expect("valid").mean_edge_span();
        assert!(
            after < before / 3.0,
            "renumbering should collapse edge spans: before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn rcm_step_tightens_within_community_order() {
        let g = latent_community_graph(3);
        let full = renumber(&g, &RenumberConfig::default()).expect("valid");
        let no_rcm = renumber(
            &g,
            &RenumberConfig {
                skip_rcm: true,
                ..Default::default()
            },
        )
        .expect("valid");
        let g_full = g.permute(&full.permutation).expect("valid");
        let g_norcm = g.permute(&no_rcm.permutation).expect("valid");
        let w = 32;
        assert!(
            locality_score(&g_full, w) >= locality_score(&g_norcm, w) * 0.98,
            "RCM should not hurt near-window locality: rcm={} plain={}",
            locality_score(&g_full, w),
            locality_score(&g_norcm, w)
        );
    }

    #[test]
    fn communities_get_consecutive_id_blocks() {
        let g = latent_community_graph(4);
        let r = renumber(&g, &RenumberConfig::default()).expect("valid");
        // Map each new id back to its community; ids within one community
        // must form one contiguous run.
        let n = g.num_nodes();
        let mut comm_of_new = vec![0u32; n];
        for old in 0..n as NodeId {
            comm_of_new[r.permutation.new_of(old) as usize] = r.community_of[old as usize];
        }
        let mut seen = std::collections::HashSet::new();
        let mut prev = u32::MAX;
        for &c in &comm_of_new {
            if c != prev {
                assert!(
                    seen.insert(c),
                    "community {c} appears in two separate id runs"
                );
                prev = c;
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = latent_community_graph(5);
        let a = renumber(&g, &RenumberConfig::default()).expect("valid");
        let b = renumber(&g, &RenumberConfig::default()).expect("valid");
        assert_eq!(a.permutation, b.permutation);
    }

    /// Regression (ISSUE 8): isolated (zero-degree) nodes must appear in
    /// the permutation exactly once — Louvain leaves them as singleton
    /// communities and RCM must emit them — so renumber + inverse
    /// round-trips every node, including on graphs where isolated nodes
    /// are interleaved with real communities.
    #[test]
    fn isolated_nodes_keep_the_permutation_total() {
        use crate::GraphBuilder;
        // Nodes 6..10 never touch an edge; node 3 sits between two
        // communities; both RCM paths are exercised.
        for skip_rcm in [false, true] {
            let g = GraphBuilder::new(10)
                .clique(&[0, 1, 2])
                .path(&[3, 4, 5])
                .build()
                .expect("valid");
            let cfg = RenumberConfig {
                skip_rcm,
                ..Default::default()
            };
            let r = renumber(&g, &cfg).expect("isolated nodes must renumber");
            assert_eq!(r.permutation.len(), 10, "permutation must be total");
            assert_eq!(r.community_of.len(), 10);
            let inv = r.permutation.inverse();
            for v in 0..10 as NodeId {
                assert_eq!(
                    inv.new_of(r.permutation.new_of(v)),
                    v,
                    "node {v} must round-trip (skip_rcm={skip_rcm})"
                );
            }
            let p = g.permute(&r.permutation).expect("valid");
            assert_eq!(p.num_edges(), g.num_edges());
            assert!(p.is_symmetric());
        }
    }

    /// Degenerate inputs stay total and finite: a fully edgeless graph
    /// (every node isolated) and the empty graph.
    #[test]
    fn edgeless_and_empty_graphs_renumber() {
        for n in [0usize, 1, 7] {
            let g = Csr::empty(n);
            let r = renumber(&g, &RenumberConfig::default()).expect("edgeless renumbers");
            assert_eq!(r.permutation.len(), n);
            assert!(r.modularity.is_finite(), "modularity must not be NaN");
            let inv = r.permutation.inverse();
            for v in 0..n as NodeId {
                assert_eq!(inv.new_of(r.permutation.new_of(v)), v);
            }
        }
    }

    /// Isolated nodes appended to a latent community graph (the shape a
    /// dynamic node-arrival stream produces) round-trip through the full
    /// multi-level Louvain pipeline.
    #[test]
    fn arrived_isolated_nodes_round_trip_through_the_full_pipeline() {
        use crate::GraphBuilder;
        let g = latent_community_graph(6);
        let n = g.num_nodes();
        let mut b = GraphBuilder::new(n + 32);
        for (v, u) in g.edges() {
            if v < u {
                b = b.undirected_edge(v, u);
            }
        }
        let g2 = b.build().expect("valid");
        let r = renumber(&g2, &RenumberConfig::default()).expect("valid");
        assert_eq!(r.permutation.len(), n + 32);
        let inv = r.permutation.inverse();
        for v in 0..(n + 32) as NodeId {
            assert_eq!(inv.new_of(r.permutation.new_of(v)), v);
        }
        assert_eq!(
            g2.permute(&r.permutation).expect("valid").num_edges(),
            g2.num_edges()
        );
    }
}
