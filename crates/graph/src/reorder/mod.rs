//! Node reordering: permutations, Reverse Cuthill–McKee, and the
//! community-aware renumbering pipeline of Section 6.1.

pub mod permutation;
pub mod rcm;
pub mod renumber;

pub use permutation::Permutation;
pub use rcm::rcm_order;
pub use renumber::{renumber, RenumberConfig, RenumberResult};
