//! Planted-community power-law generator (Type I / Type III datasets).
//!
//! Section 4.1.3 of the paper leverages graph community structure — "a small
//! group of nodes tend to hold strong intra-group connections while
//! maintaining weak connections with the remaining part of the graph" — to
//! improve aggregation locality. This generator plants exactly that
//! structure: community sizes are drawn from a log-normal-ish distribution,
//! intra-community edges use preferential attachment (power-law degrees),
//! and a small fraction of edges cross communities.
//!
//! Crucially for the renumbering experiments (Figure 12), the generator
//! *shuffles node ids* before returning, so the community structure is
//! latent: the renumbering pipeline has to rediscover it, exactly as it
//! would for a real dataset file.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Parameters for [`community_graph`].
#[derive(Debug, Clone, Copy)]
pub struct CommunityParams {
    /// Total number of nodes.
    pub num_nodes: usize,
    /// Target number of *directed* edges (the generator lands within a few
    /// percent; exact counts depend on dedup of random collisions).
    pub num_edges: usize,
    /// Mean community size.
    pub mean_community: usize,
    /// Spread of community sizes as a fraction of the mean (0 = uniform
    /// sizes). The paper's `artist` dataset corresponds to a large value.
    pub community_size_cv: f64,
    /// Fraction of undirected edges that cross community boundaries.
    pub inter_fraction: f64,
    /// Whether to shuffle node ids before returning (latent communities).
    pub shuffle_ids: bool,
}

impl Default for CommunityParams {
    fn default() -> Self {
        Self {
            num_nodes: 10_000,
            num_edges: 100_000,
            mean_community: 64,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        }
    }
}

/// Generates a symmetric community-structured graph with power-law
/// intra-community degrees. Also returns the ground-truth community
/// assignment (in terms of the *returned* node ids), which tests use to
/// validate Louvain recovery.
pub fn community_graph(params: &CommunityParams, seed: u64) -> Result<(Csr, Vec<u32>)> {
    let n = params.num_nodes;
    if n == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "num_nodes must be > 0".into(),
        });
    }
    if params.mean_community == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "mean_community must be > 0".into(),
        });
    }
    if !(0.0..=1.0).contains(&params.inter_fraction) {
        return Err(GraphError::InvalidParameters {
            reason: "inter_fraction must lie in [0, 1]".into(),
        });
    }
    let mut rng = super::rng(seed);

    // Partition nodes into communities with sizes around the mean.
    let mut community_of = vec![0u32; n];
    let mut bounds: Vec<(usize, usize)> = Vec::new(); // [start, end) per community
    let mut start = 0usize;
    let mut cid = 0u32;
    while start < n {
        let jitter = 1.0 + params.community_size_cv * (rng.gen::<f64>() * 2.0 - 1.0);
        let remaining = n - start;
        let size = if remaining <= 2 {
            remaining
        } else {
            ((params.mean_community as f64 * jitter).round() as usize).clamp(2, remaining)
        };
        let end = (start + size).min(n);
        for c in community_of.iter_mut().take(end).skip(start) {
            *c = cid;
        }
        bounds.push((start, end));
        start = end;
        cid += 1;
    }

    let undirected_target = params.num_edges / 2;
    let inter_target = (undirected_target as f64 * params.inter_fraction).round() as usize;
    let intra_target = undirected_target.saturating_sub(inter_target);

    let mut el = EdgeList::with_capacity(n, params.num_edges + 16);

    // Intra-community edges: distribute the budget proportionally to
    // community size, then run preferential attachment inside each.
    let total_capacity: usize = bounds.iter().map(|&(s, e)| (e - s) * (e - s - 1) / 2).sum();
    for &(s, e) in &bounds {
        let size = e - s;
        let cap = size * (size - 1) / 2;
        let mut want = if total_capacity == 0 {
            0
        } else {
            (intra_target as u128 * cap as u128 / total_capacity as u128) as usize
        };
        want = want.min(cap);
        if want == 0 && size >= 2 {
            want = (size - 1).min(cap); // keep every community connected
        }
        preferential_within(&mut el, s as NodeId, e as NodeId, want, &mut rng);
    }

    // Inter-community edges. Real Type III graphs carry *global* hubs
    // whose degree far exceeds any single community (amazon0505 peaks in
    // the thousands) — the heavy tail that makes group-based workload
    // partitioning matter (Figure 2 / Section 4.1.1). Designate one hub
    // per ~4 communities (the first node of the community, so hubs spread
    // across the id space) and route half the inter-community edges
    // through a hub endpoint; the rest connect uniform pairs.
    let hubs: Vec<NodeId> = bounds
        .iter()
        .step_by(4)
        .map(|&(s, _)| s as NodeId)
        .collect();
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < inter_target && guard < inter_target * 20 + 64 {
        guard += 1;
        let u = if !hubs.is_empty() && rng.gen_bool(0.5) {
            hubs[rng.gen_range(0..hubs.len())]
        } else {
            rng.gen_range(0..n as NodeId)
        };
        let v = rng.gen_range(0..n as NodeId);
        if u == v || community_of[u as usize] == community_of[v as usize] {
            continue;
        }
        el.push_undirected(u, v);
        placed += 1;
    }

    el.dedup();
    let csr = el.into_csr()?;

    if params.shuffle_ids {
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut rng);
        // `order[new] = old`; build new_of_old.
        let mut new_of_old = vec![0 as NodeId; n];
        for (new_id, &old) in order.iter().enumerate() {
            new_of_old[old as usize] = new_id as NodeId;
        }
        let perm = crate::Permutation::from_new_of_old(new_of_old)?;
        let shuffled = csr.permute(&perm)?;
        let mut shuffled_comm = vec![0u32; n];
        for old in 0..n {
            shuffled_comm[perm.new_of(old as NodeId) as usize] = community_of[old];
        }
        Ok((shuffled, shuffled_comm))
    } else {
        Ok((csr, community_of))
    }
}

/// Preferential attachment restricted to the node range `[start, end)`,
/// adding ~`want` undirected edges.
fn preferential_within(
    el: &mut EdgeList,
    start: NodeId,
    end: NodeId,
    want: usize,
    rng: &mut impl Rng,
) {
    let size = (end - start) as usize;
    if size < 2 || want == 0 {
        return;
    }
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * want + 2);
    // Spanning chain first for connectivity.
    let chain = (size - 1).min(want);
    for i in 0..chain as NodeId {
        el.push_undirected(start + i, start + i + 1);
        pool.push(start + i);
        pool.push(start + i + 1);
    }
    let mut added = chain;
    let mut guard = 0usize;
    while added < want && guard < want * 30 + 64 {
        guard += 1;
        let u = start + rng.gen_range(0..size as NodeId);
        let v = pool[rng.gen_range(0..pool.len())];
        if u == v {
            continue;
        }
        el.push_undirected(u, v);
        pool.push(u);
        pool.push(v);
        added += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{DegreeStats, PartitionStats};

    fn small_params() -> CommunityParams {
        CommunityParams {
            num_nodes: 2_000,
            num_edges: 20_000,
            mean_community: 50,
            community_size_cv: 0.3,
            inter_fraction: 0.1,
            shuffle_ids: true,
        }
    }

    #[test]
    fn edge_count_close_to_target() {
        let p = small_params();
        let (g, _) = community_graph(&p, 1).expect("valid");
        assert_eq!(g.num_nodes(), p.num_nodes);
        let ratio = g.num_edges() as f64 / p.num_edges as f64;
        assert!(
            (0.7..=1.1).contains(&ratio),
            "edge count ratio {ratio} out of band"
        );
        assert!(g.is_symmetric());
    }

    #[test]
    fn communities_cover_all_nodes() {
        let p = small_params();
        let (_, comm) = community_graph(&p, 2).expect("valid");
        let s = PartitionStats::of(&comm);
        assert!(s.count >= p.num_nodes / (2 * p.mean_community));
        assert!(s.max_size <= 3 * p.mean_community);
    }

    #[test]
    fn intra_edges_dominate() {
        let p = small_params();
        let (g, comm) = community_graph(&p, 3).expect("valid");
        let intra = g
            .edges()
            .filter(|&(u, v)| comm[u as usize] == comm[v as usize])
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(
            frac > 0.8,
            "expected strong intra-community connectivity, got {frac}"
        );
    }

    #[test]
    fn shuffling_destroys_id_locality() {
        let mut p = small_params();
        p.shuffle_ids = false;
        let (ordered, _) = community_graph(&p, 4).expect("valid");
        p.shuffle_ids = true;
        let (shuffled, _) = community_graph(&p, 4).expect("valid");
        assert!(
            shuffled.mean_edge_span() > 3.0 * ordered.mean_edge_span(),
            "shuffled span {} vs ordered span {}",
            shuffled.mean_edge_span(),
            ordered.mean_edge_span()
        );
    }

    #[test]
    fn degrees_are_skewed() {
        let (g, _) = community_graph(&small_params(), 5).expect("valid");
        let s = DegreeStats::of(&g);
        assert!(
            s.coefficient_of_variation() > 0.3,
            "cv = {}",
            s.coefficient_of_variation()
        );
    }

    #[test]
    fn deterministic() {
        let p = small_params();
        let (a, ca) = community_graph(&p, 9).expect("valid");
        let (b, cb) = community_graph(&p, 9).expect("valid");
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn rejects_bad_params() {
        let mut p = small_params();
        p.num_nodes = 0;
        assert!(community_graph(&p, 0).is_err());
        let mut p = small_params();
        p.inter_fraction = 1.5;
        assert!(community_graph(&p, 0).is_err());
    }
}
