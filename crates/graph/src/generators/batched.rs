//! Batched small-graph generator (Type II datasets).
//!
//! Table 1's Type II datasets (PROTEINS_full, OVCAR-8H, Yeast, DD,
//! TWITTER-Partial, SW-620H) are unions of many small molecule/protein
//! graphs: "small graphs with very dense intra-graph connections but no
//! inter-graph edges, plus nodes within each small graph are assigned with
//! consecutive IDs" (Section 8.2). This block-diagonal adjacency is exactly
//! why Type II inputs enjoy intrinsic locality, and the generator reproduces
//! it by construction.

use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Parameters for [`batched_graph`].
#[derive(Debug, Clone, Copy)]
pub struct BatchedParams {
    /// Total number of nodes across all component graphs.
    pub num_nodes: usize,
    /// Target number of directed edges across all component graphs.
    pub num_edges: usize,
    /// Mean component-graph size (nodes). Molecule graphs are tiny; protein
    /// graphs run a few hundred nodes.
    pub mean_graph_size: usize,
    /// Spread of component sizes as a fraction of the mean.
    pub graph_size_cv: f64,
}

impl Default for BatchedParams {
    fn default() -> Self {
        Self {
            num_nodes: 40_000,
            num_edges: 160_000,
            mean_graph_size: 40,
            graph_size_cv: 0.4,
        }
    }
}

/// Generates a symmetric batched graph: consecutive id ranges form
/// independent dense components with no inter-component edges. Returns the
/// graph and the component id of every node.
pub fn batched_graph(params: &BatchedParams, seed: u64) -> Result<(Csr, Vec<u32>)> {
    let n = params.num_nodes;
    if n == 0 || params.mean_graph_size == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "num_nodes and mean_graph_size must be > 0".into(),
        });
    }
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, params.num_edges + 16);
    let mut component_of = vec![0u32; n];

    // Carve node ranges.
    let mut bounds = Vec::new();
    let mut start = 0usize;
    let mut cid = 0u32;
    while start < n {
        let jitter = 1.0 + params.graph_size_cv * (rng.gen::<f64>() * 2.0 - 1.0);
        let size = ((params.mean_graph_size as f64 * jitter).round() as usize).max(2);
        let end = (start + size).min(n);
        for c in component_of.iter_mut().take(end).skip(start) {
            *c = cid;
        }
        bounds.push((start, end));
        start = end;
        cid += 1;
    }

    // Per-component edge budget proportional to pair capacity, targeting the
    // dense connectivity of molecule graphs.
    let undirected_target = params.num_edges / 2;
    let total_capacity: usize = bounds.iter().map(|&(s, e)| (e - s) * (e - s - 1) / 2).sum();
    for &(s, e) in &bounds {
        let size = e - s;
        let cap = size * (size - 1) / 2;
        let mut want = if total_capacity == 0 {
            0
        } else {
            (undirected_target as u128 * cap as u128 / total_capacity as u128) as usize
        };
        want = want.clamp(size.saturating_sub(1).min(cap), cap);
        // Spanning chain for connectivity, then uniform fill.
        for i in 0..(size - 1).min(want) {
            el.push_undirected((s + i) as NodeId, (s + i + 1) as NodeId);
        }
        let mut added = (size - 1).min(want);
        let mut guard = 0usize;
        while added < want && guard < want * 20 + 64 {
            guard += 1;
            let u = (s + rng.gen_range(0..size)) as NodeId;
            let v = (s + rng.gen_range(0..size)) as NodeId;
            if u == v {
                continue;
            }
            el.push_undirected(u, v);
            added += 1;
        }
    }

    el.dedup();
    Ok((el.into_csr()?, component_of))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BatchedParams {
        BatchedParams {
            num_nodes: 4_000,
            num_edges: 16_000,
            mean_graph_size: 40,
            graph_size_cv: 0.4,
        }
    }

    #[test]
    fn no_inter_component_edges() {
        let (g, comp) = batched_graph(&params(), 1).expect("valid");
        assert!(g.edges().all(|(u, v)| comp[u as usize] == comp[v as usize]));
    }

    #[test]
    fn components_are_consecutive_id_ranges() {
        let (_, comp) = batched_graph(&params(), 2).expect("valid");
        // Component ids must be non-decreasing over the node range.
        assert!(comp.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn edge_count_close_to_target() {
        let p = params();
        let (g, _) = batched_graph(&p, 3).expect("valid");
        let ratio = g.num_edges() as f64 / p.num_edges as f64;
        assert!((0.6..=1.2).contains(&ratio), "ratio {ratio}");
        assert!(g.is_symmetric());
    }

    #[test]
    fn intrinsic_locality_is_high() {
        let (g, _) = batched_graph(&params(), 4).expect("valid");
        // All edges stay within a component of ~40 nodes, so the mean edge
        // span must be far below the whole-graph scale.
        assert!(g.mean_edge_span() < 64.0, "span = {}", g.mean_edge_span());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            batched_graph(&params(), 7).unwrap().0,
            batched_graph(&params(), 7).unwrap().0
        );
    }

    #[test]
    fn rejects_zero_nodes() {
        let mut p = params();
        p.num_nodes = 0;
        assert!(batched_graph(&p, 0).is_err());
    }
}
