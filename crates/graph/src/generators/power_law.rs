//! Barabási–Albert preferential-attachment generator.
//!
//! Real-world GNN inputs follow a power-law degree distribution
//! (Section 4.1.1), which is the root cause of the inter-thread workload
//! imbalance that group-based partitioning addresses. This generator is the
//! reference source of such skew for tests and ablations.

use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Generates a symmetric Barabási–Albert graph: nodes arrive one at a time
/// and attach `m_attach` undirected edges to existing nodes chosen with
/// probability proportional to their current degree.
///
/// The classic "repeated-endpoint" trick implements preferential attachment
/// in O(E): endpoints are sampled uniformly from the list of all prior edge
/// endpoints.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Result<Csr> {
    if m_attach == 0 || n <= m_attach {
        return Err(GraphError::InvalidParameters {
            reason: format!("barabasi_albert requires 0 < m_attach ({m_attach}) < n ({n})"),
        });
    }
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, 2 * n * m_attach);
    // Endpoint pool: each node id appears once per incident edge.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique over the first m_attach + 1 nodes.
    let seed_nodes = m_attach + 1;
    for u in 0..seed_nodes as NodeId {
        for v in (u + 1)..seed_nodes as NodeId {
            el.push_undirected(u, v);
            pool.push(u);
            pool.push(v);
        }
    }

    let mut targets = Vec::with_capacity(m_attach);
    for v in seed_nodes as NodeId..n as NodeId {
        targets.clear();
        // Sample m_attach distinct targets preferentially by degree.
        let mut guard = 0usize;
        while targets.len() < m_attach {
            let t = pool[rng.gen_range(0..pool.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 64 * m_attach {
                // Degenerate corner (tiny pools): fall back to uniform picks.
                let t = rng.gen_range(0..v);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            el.push_undirected(v, t);
            pool.push(v);
            pool.push(t);
        }
    }
    el.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn node_and_edge_counts() {
        let n = 500;
        let m = 4;
        let g = barabasi_albert(n, m, 11).expect("valid");
        assert_eq!(g.num_nodes(), n);
        // Seed clique contributes C(m+1, 2) undirected edges; each later node
        // adds m.
        let undirected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), 2 * undirected);
        assert!(g.is_symmetric());
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 3, 5).expect("valid");
        let s = DegreeStats::of(&g);
        assert!(
            s.coefficient_of_variation() > 0.6,
            "preferential attachment must produce heavy skew, got cv={}",
            s.coefficient_of_variation()
        );
        assert!(s.max > 10 * s.min.max(1));
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(300, 3, 9).expect("valid");
        let s = DegreeStats::of(&g);
        assert!(s.min >= 3, "every node attaches with at least m edges");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            barabasi_albert(100, 2, 42).unwrap(),
            barabasi_albert(100, 2, 42).unwrap()
        );
    }

    #[test]
    fn invalid_params() {
        assert!(barabasi_albert(3, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }
}
