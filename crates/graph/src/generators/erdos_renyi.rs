//! Erdős–Rényi G(n, m) generator.

use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Generates a symmetric Erdős–Rényi graph with `n` nodes and approximately
/// `m` undirected edges (2·m directed edges), no self-loops, deterministic
/// for a given `seed`.
///
/// Sampling is with rejection of duplicates, so the exact undirected edge
/// count equals `m` whenever `m` does not exceed the number of possible
/// pairs.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Result<Csr> {
    let max_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_pairs {
        return Err(GraphError::InvalidParameters {
            reason: format!("requested {m} edges but only {max_pairs} pairs exist for n={n}"),
        });
    }
    let mut rng = super::rng(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut el = EdgeList::with_capacity(n, m * 2);
    // For dense requests fall back to enumerating pairs to avoid unbounded
    // rejection; the threshold is conservative.
    if m * 2 > max_pairs {
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(max_pairs);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                pairs.push((u, v));
            }
        }
        // Partial Fisher-Yates: select m pairs uniformly.
        for i in 0..m {
            let j = rng.gen_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            el.push_undirected(u, v);
        }
    } else {
        while chosen.len() < m {
            let u = rng.gen_range(0..n as NodeId);
            let v = rng.gen_range(0..n as NodeId);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if chosen.insert(key) {
                el.push_undirected(key.0, key.1);
            }
        }
    }
    el.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_and_symmetry() {
        let g = erdos_renyi(100, 250, 7).expect("valid");
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 500);
        assert!(g.is_symmetric());
        assert!(g.edges().all(|(u, v)| u != v), "no self loops");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(50, 100, 3).expect("valid");
        let b = erdos_renyi(50, 100, 3).expect("valid");
        let c = erdos_renyi(50, 100, 4).expect("valid");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dense_request_uses_enumeration() {
        // 10 nodes -> 45 pairs; ask for 40 (dense path).
        let g = erdos_renyi(10, 40, 1).expect("valid");
        assert_eq!(g.num_edges(), 80);
        assert!(g.is_symmetric());
    }

    #[test]
    fn too_many_edges_rejected() {
        assert!(erdos_renyi(4, 100, 0).is_err());
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(5, 0, 0).expect("valid");
        assert_eq!(g.num_edges(), 0);
    }
}
