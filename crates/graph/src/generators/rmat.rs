//! R-MAT (recursive matrix) generator for large irregular graphs.
//!
//! The paper's Type III graphs "demonstrate high irregularity in structure"
//! (Section 8.1.2). R-MAT with skewed quadrant probabilities is the
//! standard way to synthesize such irregular, scale-free adjacency, and the
//! harness uses it as an extra stressor alongside the community generator.

use rand::Rng;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Quadrant probabilities for the recursive partition. Must sum to ~1.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the number of nodes.
    pub scale: u32,
    /// Directed edges to sample (before dedup/self-loop removal).
    pub num_edges: usize,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500 parameters.
        Self {
            scale: 14,
            num_edges: 16 * (1 << 14),
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates an R-MAT graph, symmetrized, with self-loops and duplicates
/// removed. The final edge count is therefore somewhat below
/// `2 * num_edges`.
pub fn rmat(params: &RmatParams, seed: u64) -> Result<Csr> {
    let d = 1.0 - params.a - params.b - params.c;
    if !(0.0..=1.0).contains(&d) || params.a < 0.0 || params.b < 0.0 || params.c < 0.0 {
        return Err(GraphError::InvalidParameters {
            reason: "quadrant probabilities must be non-negative and sum to <= 1".into(),
        });
    }
    if params.scale == 0 || params.scale > 31 {
        return Err(GraphError::InvalidParameters {
            reason: format!("scale {} out of supported range 1..=31", params.scale),
        });
    }
    let n = 1usize << params.scale;
    let mut rng = super::rng(seed);
    let mut el = EdgeList::with_capacity(n, params.num_edges * 2);
    for _ in 0..params.num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..params.scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            el.push_undirected(u as NodeId, v as NodeId);
        }
    }
    el.dedup();
    el.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn basic_shape() {
        let p = RmatParams {
            scale: 10,
            num_edges: 8192,
            ..Default::default()
        };
        let g = rmat(&p, 1).expect("valid");
        assert_eq!(g.num_nodes(), 1024);
        assert!(g.num_edges() > 8000, "most sampled edges survive dedup");
        assert!(g.is_symmetric());
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn skewed_parameters_give_skewed_degrees() {
        let p = RmatParams {
            scale: 12,
            num_edges: 32_768,
            ..Default::default()
        };
        let g = rmat(&p, 2).expect("valid");
        let s = DegreeStats::of(&g);
        assert!(
            s.coefficient_of_variation() > 1.0,
            "cv = {}",
            s.coefficient_of_variation()
        );
    }

    #[test]
    fn uniform_parameters_are_flat() {
        let p = RmatParams {
            scale: 12,
            num_edges: 32_768,
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(&p, 3).expect("valid");
        let s = DegreeStats::of(&g);
        assert!(
            s.coefficient_of_variation() < 0.5,
            "cv = {}",
            s.coefficient_of_variation()
        );
    }

    #[test]
    fn invalid_probabilities_rejected() {
        let p = RmatParams {
            scale: 4,
            num_edges: 16,
            a: 0.8,
            b: 0.3,
            c: 0.2,
        };
        assert!(rmat(&p, 0).is_err());
        let p = RmatParams {
            scale: 0,
            num_edges: 16,
            ..Default::default()
        };
        assert!(rmat(&p, 0).is_err());
    }

    #[test]
    fn deterministic() {
        let p = RmatParams {
            scale: 8,
            num_edges: 1024,
            ..Default::default()
        };
        assert_eq!(rmat(&p, 5).unwrap(), rmat(&p, 5).unwrap());
    }
}
