//! Seeded synthetic graph generators.
//!
//! The paper evaluates on three dataset classes (Table 1). Each class is
//! characterized by a structural property that GNNAdvisor's optimizations
//! key on, and each generator here reproduces that property:
//!
//! - **Type I / III** (citation networks, SNAP graphs): power-law degree
//!   distribution with community structure → [`community::community_graph`]
//!   (planted communities with preferential attachment inside each).
//! - **Type II** (graph-kernel benchmark sets): unions of many small dense
//!   graphs with block-diagonal adjacency and consecutive ids →
//!   [`batched::batched_graph`].
//! - Reference generators for tests and ablations: [`erdos_renyi`],
//!   [`power_law`] (Barabási–Albert), and [`rmat`].
//!
//! All generators take an explicit `u64` seed and are deterministic.

pub mod batched;
pub mod community;
pub mod erdos_renyi;
pub mod power_law;
pub mod rmat;

pub use batched::{batched_graph, BatchedParams};
pub use community::{community_graph, CommunityParams};
pub use erdos_renyi::erdos_renyi;
pub use power_law::barabasi_albert;
pub use rmat::{rmat, RmatParams};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds the deterministic RNG used by all generators in this module.
pub(crate) fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
