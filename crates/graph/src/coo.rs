//! Coordinate-format edge list: the mutable builder finalized into [`Csr`].

use crate::csr::{Csr, NodeId};
use crate::{GraphError, Result};

/// A mutable list of directed edges over a fixed node set.
///
/// Generators accumulate edges here and call [`EdgeList::into_csr`] once.
/// Duplicate edges and self-loops are permitted during accumulation;
/// [`EdgeList::dedup`] and [`EdgeList::remove_self_loops`] clean them up.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl EdgeList {
    /// An empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// An empty edge list with capacity reserved for `cap` edges.
    pub fn with_capacity(num_nodes: usize, cap: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::with_capacity(cap),
        }
    }

    /// Number of nodes in the underlying node set.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges currently stored.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are stored.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Appends the directed edge `(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an endpoint is out of range; release-mode
    /// range errors surface from [`EdgeList::into_csr`].
    #[inline]
    pub fn push(&mut self, src: NodeId, dst: NodeId) {
        debug_assert!((src as usize) < self.num_nodes && (dst as usize) < self.num_nodes);
        self.edges.push((src, dst));
    }

    /// Appends both `(u, v)` and `(v, u)`.
    #[inline]
    pub fn push_undirected(&mut self, u: NodeId, v: NodeId) {
        self.push(u, v);
        self.push(v, u);
    }

    /// Adds the reverse of every stored edge, then removes duplicates, so
    /// the resulting graph is symmetric.
    pub fn symmetrize(&mut self) {
        let reversed: Vec<_> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(reversed);
        self.dedup();
    }

    /// Sorts edges and removes exact duplicates.
    pub fn dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Removes all edges `(v, v)`.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(u, v)| u != v);
    }

    /// Whether the directed edge `(src, dst)` is present (linear scan; used
    /// by generators on small candidate sets and by tests).
    pub fn contains(&self, src: NodeId, dst: NodeId) -> bool {
        self.edges.contains(&(src, dst))
    }

    /// Finalizes into a CSR with sorted neighbor lists.
    pub fn into_csr(mut self) -> Result<Csr> {
        for &(u, v) in &self.edges {
            for node in [u, v] {
                if node as usize >= self.num_nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: node as u64,
                        num_nodes: self.num_nodes as u64,
                    });
                }
            }
        }
        self.edges.sort_unstable();
        let mut row_ptr = vec![0usize; self.num_nodes + 1];
        for &(u, _) in &self.edges {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..self.num_nodes {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = self.edges.into_iter().map(|(_, v)| v).collect();
        Csr::from_raw(self.num_nodes, row_ptr, col_idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_finalize() {
        let mut el = EdgeList::new(4);
        el.push(2, 0);
        el.push(0, 3);
        el.push(0, 1);
        let g = el.into_csr().expect("valid");
        assert_eq!(g.neighbors(0), &[1, 3], "neighbor lists are sorted");
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn out_of_range_rejected() {
        let el = EdgeList {
            num_nodes: 2,
            edges: vec![(0, 7)],
        };
        assert!(matches!(
            el.into_csr(),
            Err(GraphError::NodeOutOfRange { node: 7, .. })
        ));
    }

    #[test]
    fn symmetrize_dedups() {
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 0);
        el.push(1, 2);
        el.symmetrize();
        assert_eq!(el.len(), 4);
        let g = el.into_csr().expect("valid");
        assert!(g.is_symmetric());
    }

    #[test]
    fn self_loop_removal() {
        let mut el = EdgeList::new(2);
        el.push(0, 0);
        el.push(0, 1);
        el.push(1, 1);
        el.remove_self_loops();
        assert_eq!(el.len(), 1);
        assert!(el.contains(0, 1));
    }

    #[test]
    fn undirected_push() {
        let mut el = EdgeList::new(2);
        el.push_undirected(0, 1);
        assert_eq!(el.len(), 2);
        assert!(el.contains(0, 1) && el.contains(1, 0));
    }
}
