//! Dynamic-graph substrate: seeded update streams and an incrementally
//! maintained CSR with copy-on-write snapshots.
//!
//! Production graph serving (ROADMAP item 4) means the graph mutates
//! while queries run: edges arrive and vanish, new nodes appear. This
//! module provides the two graph-side pieces the dynamic serving runtime
//! (`core::dynamic`) builds on:
//!
//! - [`generate_updates`]: an open-loop, seeded stream of edge
//!   insert/delete and node-arrival events with a configurable churn
//!   mix, timestamped by a Poisson process — the update-side twin of the
//!   serving crate's arrival generators. Deterministic for a `(base
//!   graph, config)` pair, independent of any thread count.
//! - [`DeltaCsr`]: the base [`Csr`] plus an immutable *overlay* of
//!   per-node added/deleted neighbor lists. Mutations copy-on-write the
//!   overlay (`Arc::make_mut`), so a [`GraphSnapshot`] taken before a
//!   mutation keeps observing the exact pre-mutation graph at zero copy
//!   cost until a writer actually diverges. [`DeltaCsr::compact`] folds
//!   the overlay back into a fresh base CSR; compaction never changes
//!   query results (property-tested in `tests/dynamic_snapshots.rs`).
//!
//! Versioning: every *effective* mutation (one that changes the edge set
//! or node count) bumps the version by one; no-op updates (inserting a
//! present edge, deleting an absent one) leave it untouched. Snapshots
//! carry the version they were taken at, which serving reports use to
//! tag every batch with the graph it actually executed against.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::{Csr, NodeId};
use crate::{GraphError, Result};

/// One mutation of the evolving graph.
///
/// Edge endpoints are *stream-space* ids: the base graph's original ids
/// for seed nodes, then `base.num_nodes(), base.num_nodes()+1, ...` for
/// arrived nodes in arrival order. A consumer that renumbers the live
/// graph maps stream-space ids through its cumulative permutation at
/// apply time, so one generated stream drives renumbered and
/// non-renumbered runs identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Insert the undirected edge `{u, v}` (a no-op if present).
    InsertEdge {
        /// First endpoint (stream-space id).
        u: NodeId,
        /// Second endpoint (stream-space id).
        v: NodeId,
    },
    /// Delete the undirected edge `{u, v}` (a no-op if absent).
    DeleteEdge {
        /// First endpoint (stream-space id).
        u: NodeId,
        /// Second endpoint (stream-space id).
        v: NodeId,
    },
    /// A new, initially isolated node arrives; later events may wire it.
    AddNode,
}

/// One timestamped update event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateEvent {
    /// Instant of the update on the serving clock, milliseconds.
    pub at_ms: f64,
    /// The mutation.
    pub kind: UpdateKind,
}

/// Parameters of the seeded update stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStreamConfig {
    /// Total update events; zero is rejected (an empty stream is a
    /// config bug — run the static pipeline instead).
    pub num_updates: usize,
    /// Mean gap between consecutive updates, milliseconds (exponential).
    pub mean_interarrival_ms: f64,
    /// Fraction of events that delete an existing edge, in `[0, 1]`.
    pub delete_fraction: f64,
    /// Fraction of events that are node arrivals, in `[0, 1]`;
    /// `delete_fraction + node_fraction <= 1` and the remainder inserts
    /// edges between uniformly drawn live nodes.
    pub node_fraction: f64,
    /// Edges each arriving node immediately wires up, emitted as
    /// [`UpdateKind::InsertEdge`] events right after its
    /// [`UpdateKind::AddNode`] (each with its own clock gap, all counted
    /// against `num_updates`). The first attachment picks a random
    /// endpoint of a random live edge (degree-proportional, i.e.
    /// preferential attachment); the rest close triangles with that
    /// anchor's neighbors (friend-of-friend). `0` (the default) leaves
    /// arrivals isolated until later uniform inserts happen to hit them.
    ///
    /// Attachment churn is community-structured in *graph* space but
    /// catastrophic in *id* space — the new node holds the maximum id
    /// while its neighbors sit in some community block — which is
    /// precisely the decay a re-renumbering policy can undo, unlike
    /// uniform insert noise.
    pub attach_degree: usize,
    /// RNG seed; equal seeds give equal streams.
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            num_updates: 256,
            mean_interarrival_ms: 0.05,
            delete_fraction: 0.2,
            node_fraction: 0.05,
            attach_degree: 0,
            seed: 0,
        }
    }
}

impl UpdateStreamConfig {
    fn validate(&self) -> Result<()> {
        if self.num_updates == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "num_updates must be at least 1 (an empty stream is a config bug)".into(),
            });
        }
        if !(self.mean_interarrival_ms.is_finite() && self.mean_interarrival_ms > 0.0) {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "mean_interarrival_ms must be positive and finite, got {}",
                    self.mean_interarrival_ms
                ),
            });
        }
        for (name, f) in [
            ("delete_fraction", self.delete_fraction),
            ("node_fraction", self.node_fraction),
        ] {
            if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                return Err(GraphError::InvalidParameters {
                    reason: format!("{name} must be in [0, 1], got {f}"),
                });
            }
        }
        if self.delete_fraction + self.node_fraction > 1.0 {
            return Err(GraphError::InvalidParameters {
                reason: format!(
                    "delete_fraction + node_fraction must not exceed 1, got {}",
                    self.delete_fraction + self.node_fraction
                ),
            });
        }
        Ok(())
    }
}

/// One exponential gap of the given mean, floored so consecutive
/// instants stay strictly increasing (same scheme as the arrival
/// generators in the serving crate).
fn exp_gap(rng: &mut SmallRng, mean_ms: f64) -> f64 {
    let u: f64 = rng.gen();
    (-mean_ms * (1.0 - u).ln()).max(mean_ms * 1e-12)
}

/// Draws a seeded update stream against `base`.
///
/// The generator tracks the live undirected edge set so deletes always
/// name a currently present edge and inserts always name a currently
/// absent pair; events are therefore never no-ops when applied in
/// order from the base graph. Plain inserted endpoints are drawn
/// uniformly over the *live* node set (including arrived nodes);
/// arrivals additionally wire themselves in when
/// [`UpdateStreamConfig::attach_degree`] is set, producing the
/// id-space-destroying (but renumber-fixable) churn the re-renumbering
/// policy exists for. Degenerate draws (full clique, no deletable edge)
/// fall back to another event kind rather than spinning.
pub fn generate_updates(base: &Csr, cfg: &UpdateStreamConfig) -> Result<Vec<UpdateEvent>> {
    cfg.validate()?;
    if base.num_nodes() < 2 && cfg.node_fraction < 1.0 {
        return Err(GraphError::InvalidParameters {
            reason: format!(
                "base graph needs at least 2 nodes to draw edge updates, got {}",
                base.num_nodes()
            ),
        });
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    // Live undirected edge set, kept as a sorted-key set plus a dense
    // vector for uniform delete/anchor draws, plus per-node adjacency for
    // friend-of-friend attachment draws.
    let mut live: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let mut live_vec: Vec<(NodeId, NodeId)> = Vec::new();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); base.num_nodes()];
    for (v, u) in base.edges() {
        if v < u && live.insert((v, u)) {
            live_vec.push((v, u));
            adj[v as usize].push(u);
            adj[u as usize].push(v);
        }
    }
    let mut clock_ms = 0.0f64;
    let mut out: Vec<UpdateEvent> = Vec::with_capacity(cfg.num_updates);
    let push =
        |out: &mut Vec<UpdateEvent>, clock_ms: &mut f64, rng: &mut SmallRng, kind: UpdateKind| {
            *clock_ms += exp_gap(rng, cfg.mean_interarrival_ms);
            out.push(UpdateEvent {
                at_ms: *clock_ms,
                kind,
            });
        };
    let insert = |live: &mut std::collections::HashSet<(NodeId, NodeId)>,
                  live_vec: &mut Vec<(NodeId, NodeId)>,
                  adj: &mut Vec<Vec<NodeId>>,
                  u: NodeId,
                  v: NodeId| {
        let key = (u.min(v), u.max(v));
        live.insert(key);
        live_vec.push(key);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
    };
    while out.len() < cfg.num_updates {
        let roll: f64 = rng.gen();
        if roll < cfg.node_fraction {
            let fresh = adj.len() as NodeId;
            adj.push(Vec::new());
            push(&mut out, &mut clock_ms, &mut rng, UpdateKind::AddNode);
            // Wire the arrival: one preferential anchor (a random endpoint
            // of a random live edge), then triangles with the anchor's
            // neighbors; give up on duplicate draws rather than spinning.
            if cfg.attach_degree > 0 && !live_vec.is_empty() && out.len() < cfg.num_updates {
                let (a, b) = live_vec[rng.gen_range(0..live_vec.len())];
                let anchor = if rng.gen_range(0..2u8) == 0 { a } else { b };
                insert(&mut live, &mut live_vec, &mut adj, fresh, anchor);
                push(
                    &mut out,
                    &mut clock_ms,
                    &mut rng,
                    UpdateKind::InsertEdge {
                        u: fresh,
                        v: anchor,
                    },
                );
                for _ in 1..cfg.attach_degree {
                    if out.len() >= cfg.num_updates {
                        break;
                    }
                    let candidates = &adj[anchor as usize];
                    let w = candidates[rng.gen_range(0..candidates.len())];
                    if w == fresh || live.contains(&(w.min(fresh), w.max(fresh))) {
                        continue;
                    }
                    insert(&mut live, &mut live_vec, &mut adj, fresh, w);
                    push(
                        &mut out,
                        &mut clock_ms,
                        &mut rng,
                        UpdateKind::InsertEdge { u: fresh, v: w },
                    );
                }
            }
        } else if roll < cfg.node_fraction + cfg.delete_fraction && !live_vec.is_empty() {
            // Swap-remove keeps the draw uniform and O(1).
            let i = rng.gen_range(0..live_vec.len());
            let (u, v) = live_vec.swap_remove(i);
            live.remove(&(u, v));
            adj[u as usize].retain(|&x| x != v);
            adj[v as usize].retain(|&x| x != u);
            push(
                &mut out,
                &mut clock_ms,
                &mut rng,
                UpdateKind::DeleteEdge { u, v },
            );
        } else {
            // Rejection-sample an absent pair; bail to a node arrival on
            // pathological density so the stream always makes progress.
            let num_nodes = adj.len() as NodeId;
            let mut picked = None;
            for _ in 0..64 {
                let u = rng.gen_range(0..num_nodes);
                let v = rng.gen_range(0..num_nodes);
                if u == v {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if !live.contains(&key) {
                    picked = Some(key);
                    break;
                }
            }
            match picked {
                Some((u, v)) => {
                    insert(&mut live, &mut live_vec, &mut adj, u, v);
                    push(
                        &mut out,
                        &mut clock_ms,
                        &mut rng,
                        UpdateKind::InsertEdge { u, v },
                    );
                }
                None => {
                    adj.push(Vec::new());
                    push(&mut out, &mut clock_ms, &mut rng, UpdateKind::AddNode);
                }
            }
        }
    }
    Ok(out)
}

/// The copy-on-write overlay: per-node sorted neighbor additions and
/// deletions relative to the base CSR, plus appended (initially
/// isolated) nodes. Directed entry counts keep `num_edges` O(1).
#[derive(Debug, Clone, Default, PartialEq)]
struct Overlay {
    /// Nodes appended after the base was built.
    extra_nodes: usize,
    /// Sorted neighbor ids added per node (absent key = no additions).
    adds: BTreeMap<NodeId, Vec<NodeId>>,
    /// Sorted base neighbor ids deleted per node.
    dels: BTreeMap<NodeId, Vec<NodeId>>,
    /// Directed adjacency entries added (2 per undirected insert).
    added_entries: usize,
    /// Directed adjacency entries deleted.
    deleted_entries: usize,
}

impl Overlay {
    fn is_empty(&self) -> bool {
        self.extra_nodes == 0 && self.adds.is_empty() && self.dels.is_empty()
    }

    /// Directed overlay entries — the compaction policy's debt measure.
    fn len(&self) -> usize {
        self.added_entries + self.deleted_entries
    }

    /// Merged sorted neighbor list of `v` over `base`.
    fn neighbors_of(&self, base: &Csr, v: NodeId) -> Vec<NodeId> {
        let base_row: &[NodeId] = if (v as usize) < base.num_nodes() {
            base.neighbors(v)
        } else {
            &[]
        };
        let empty: [NodeId; 0] = [];
        let adds = self.adds.get(&v).map(|a| a.as_slice()).unwrap_or(&empty);
        let dels = self.dels.get(&v).map(|d| d.as_slice()).unwrap_or(&empty);
        let mut out =
            Vec::with_capacity(base_row.len() + adds.len() - dels.len().min(base_row.len()));
        // Merge two sorted runs, filtering deleted base entries.
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_row.len() || j < adds.len() {
            let take_base = j >= adds.len() || (i < base_row.len() && base_row[i] <= adds[j]);
            if take_base {
                let u = base_row[i];
                i += 1;
                if dels.binary_search(&u).is_err() {
                    out.push(u);
                }
            } else {
                out.push(adds[j]);
                j += 1;
            }
        }
        out
    }
}

/// A CSR graph under mutation: an immutable base plus a copy-on-write
/// delta overlay, with monotone versioning and O(1) snapshots.
///
/// Undirected semantics throughout — one `insert_edge(u, v)` adds both
/// directed entries, matching the symmetric graphs the
/// community/renumbering pipeline assumes.
#[derive(Debug, Clone)]
pub struct DeltaCsr {
    base: Arc<Csr>,
    overlay: Arc<Overlay>,
    version: u64,
}

impl DeltaCsr {
    /// Wraps a base graph at version 0.
    pub fn new(base: Csr) -> Self {
        Self::with_version(base, 0)
    }

    /// Wraps a base graph at a caller-chosen version — used after a
    /// renumber/compaction rebuild to keep version tags monotone across
    /// the swap.
    pub fn with_version(base: Csr, version: u64) -> Self {
        Self {
            base: Arc::new(base),
            overlay: Arc::new(Overlay::default()),
            version,
        }
    }

    /// Current graph version: bumps by one per effective mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live node count (base plus arrivals).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.overlay.extra_nodes
    }

    /// Live directed adjacency-entry count.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.overlay.added_entries - self.overlay.deleted_entries
    }

    /// Directed overlay entries not yet folded into the base — the
    /// measure a compaction policy watches.
    pub fn delta_entries(&self) -> usize {
        self.overlay.len()
    }

    /// Merged sorted neighbor list of `v`.
    pub fn neighbors_of(&self, v: NodeId) -> Vec<NodeId> {
        self.overlay.neighbors_of(&self.base, v)
    }

    /// Whether the undirected edge `{u, v}` is live.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: v as u64,
                num_nodes: self.num_nodes() as u64,
            })
        }
    }

    /// Inserts the undirected edge `{u, v}`. Returns `true` (and bumps
    /// the version) if the edge was absent; a present edge is a no-op.
    /// Self-loops are rejected.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::InvalidParameters {
                reason: format!("self-loop insert on node {u}"),
            });
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        let base = Arc::clone(&self.base);
        let overlay = Arc::make_mut(&mut self.overlay);
        for (a, b) in [(u, v), (v, u)] {
            // Undeleting a base edge and adding a new entry are distinct:
            // the former shrinks `dels`, the latter grows `adds`.
            let was_deleted = overlay
                .dels
                .get_mut(&a)
                .map(|d| {
                    if let Ok(i) = d.binary_search(&b) {
                        d.remove(i);
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if was_deleted {
                if overlay.dels.get(&a).is_some_and(|d| d.is_empty()) {
                    overlay.dels.remove(&a);
                }
                overlay.deleted_entries -= 1;
            } else {
                let row = overlay.adds.entry(a).or_default();
                let at = row.binary_search(&b).expect_err("edge checked absent");
                row.insert(at, b);
                overlay.added_entries += 1;
            }
        }
        drop(base);
        self.version += 1;
        Ok(true)
    }

    /// Deletes the undirected edge `{u, v}`. Returns `true` (and bumps
    /// the version) if the edge was live; an absent edge is a no-op.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if !self.has_edge(u, v) {
            return Ok(false);
        }
        let base = Arc::clone(&self.base);
        let overlay = Arc::make_mut(&mut self.overlay);
        for (a, b) in [(u, v), (v, u)] {
            // An overlay-added edge is retracted from `adds`; a base edge
            // is masked via `dels`.
            let was_added = overlay
                .adds
                .get_mut(&a)
                .map(|r| {
                    if let Ok(i) = r.binary_search(&b) {
                        r.remove(i);
                        true
                    } else {
                        false
                    }
                })
                .unwrap_or(false);
            if was_added {
                if overlay.adds.get(&a).is_some_and(|r| r.is_empty()) {
                    overlay.adds.remove(&a);
                }
                overlay.added_entries -= 1;
            } else {
                let row = overlay.dels.entry(a).or_default();
                let at = row
                    .binary_search(&b)
                    .expect_err("edge is in base, not yet deleted");
                row.insert(at, b);
                overlay.deleted_entries += 1;
            }
        }
        drop(base);
        self.version += 1;
        Ok(true)
    }

    /// Appends a new isolated node, returning its id; bumps the version.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.num_nodes() as NodeId;
        Arc::make_mut(&mut self.overlay).extra_nodes += 1;
        self.version += 1;
        id
    }

    /// Takes an O(1) consistent snapshot at the current version. The
    /// snapshot keeps observing this exact graph no matter how many
    /// mutations follow (writers copy the overlay on divergence).
    pub fn snapshot(&self) -> GraphSnapshot {
        GraphSnapshot {
            base: Arc::clone(&self.base),
            overlay: Arc::clone(&self.overlay),
            version: self.version,
        }
    }

    /// Folds the overlay into a fresh base CSR. Queries and the version
    /// are unaffected — compaction is pure representation maintenance;
    /// outstanding snapshots keep their old base/overlay pair.
    pub fn compact(&mut self) {
        if self.overlay.is_empty() {
            return;
        }
        let csr = self.snapshot().to_csr();
        self.base = Arc::new(csr);
        self.overlay = Arc::new(Overlay::default());
    }

    /// Materializes the current graph as a plain CSR (sorted rows).
    pub fn to_csr(&self) -> Csr {
        self.snapshot().to_csr()
    }
}

/// An immutable, consistent view of a [`DeltaCsr`] at one version.
/// Cheap to take and to clone (two `Arc`s); materialize with
/// [`GraphSnapshot::to_csr`] when a kernel needs a contiguous CSR.
#[derive(Debug, Clone)]
pub struct GraphSnapshot {
    base: Arc<Csr>,
    overlay: Arc<Overlay>,
    version: u64,
}

impl GraphSnapshot {
    /// The version this snapshot was taken at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Node count at snapshot time.
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.overlay.extra_nodes
    }

    /// Directed adjacency-entry count at snapshot time.
    pub fn num_edges(&self) -> usize {
        self.base.num_edges() + self.overlay.added_entries - self.overlay.deleted_entries
    }

    /// Merged sorted neighbor list of `v` at snapshot time.
    pub fn neighbors_of(&self, v: NodeId) -> Vec<NodeId> {
        self.overlay.neighbors_of(&self.base, v)
    }

    /// Whether the undirected edge `{u, v}` was live at snapshot time.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    /// Materializes the snapshot as a plain CSR with sorted rows.
    pub fn to_csr(&self) -> Csr {
        let n = self.num_nodes();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.num_edges());
        row_ptr.push(0usize);
        for v in 0..n as NodeId {
            col_idx.extend(self.neighbors_of(v));
            row_ptr.push(col_idx.len());
        }
        Csr::from_raw(n, row_ptr, col_idx).expect("snapshot rows are sorted and in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityParams};
    use crate::GraphBuilder;

    fn small_base() -> Csr {
        GraphBuilder::new(6)
            .clique(&[0, 1, 2])
            .path(&[3, 4, 5])
            .build()
            .expect("valid")
    }

    #[test]
    fn insert_and_delete_round_trip() {
        let mut d = DeltaCsr::new(small_base());
        let e0 = d.num_edges();
        assert!(d.insert_edge(0, 5).expect("in range"));
        assert!(d.has_edge(0, 5) && d.has_edge(5, 0));
        assert_eq!(d.num_edges(), e0 + 2);
        assert_eq!(d.version(), 1);
        // Re-insert is a no-op without a version bump.
        assert!(!d.insert_edge(5, 0).expect("in range"));
        assert_eq!(d.version(), 1);
        assert!(d.delete_edge(0, 5).expect("in range"));
        assert_eq!(d.num_edges(), e0);
        assert_eq!(d.version(), 2);
        assert!(!d.delete_edge(0, 5).expect("in range"));
        assert_eq!(d.version(), 2);
    }

    #[test]
    fn deleting_base_edges_masks_them() {
        let mut d = DeltaCsr::new(small_base());
        assert!(d.has_edge(0, 1));
        assert!(d.delete_edge(0, 1).expect("in range"));
        assert!(!d.has_edge(0, 1) && !d.has_edge(1, 0));
        // Undelete restores the base entry without growing `adds`.
        assert!(d.insert_edge(1, 0).expect("in range"));
        assert!(d.has_edge(0, 1));
        assert_eq!(
            d.delta_entries(),
            0,
            "masked-then-restored base edge leaves no overlay debt"
        );
    }

    #[test]
    fn node_arrivals_extend_the_graph() {
        let mut d = DeltaCsr::new(small_base());
        let v = d.add_node();
        assert_eq!(v, 6);
        assert_eq!(d.num_nodes(), 7);
        assert!(d.neighbors_of(v).is_empty());
        assert!(d.insert_edge(v, 0).expect("in range"));
        assert_eq!(d.neighbors_of(v), vec![0]);
        assert!(d.insert_edge(v, 3).expect("in range"));
        assert_eq!(d.neighbors_of(v), vec![0, 3]);
    }

    #[test]
    fn out_of_range_and_self_loops_are_rejected() {
        let mut d = DeltaCsr::new(small_base());
        assert!(matches!(
            d.insert_edge(0, 99),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            d.insert_edge(2, 2),
            Err(GraphError::InvalidParameters { .. })
        ));
        assert_eq!(d.version(), 0, "rejected updates must not bump the version");
    }

    #[test]
    fn snapshots_are_isolated_from_later_mutations() {
        let mut d = DeltaCsr::new(small_base());
        d.insert_edge(0, 4).expect("in range");
        let snap = d.snapshot();
        let frozen_edges = snap.num_edges();
        let frozen_neighbors = snap.neighbors_of(0);
        d.delete_edge(0, 4).expect("in range");
        d.insert_edge(2, 5).expect("in range");
        d.add_node();
        assert_eq!(snap.version(), 1);
        assert_eq!(snap.num_edges(), frozen_edges);
        assert_eq!(snap.neighbors_of(0), frozen_neighbors);
        assert!(
            snap.has_edge(0, 4),
            "snapshot must keep the pre-delete view"
        );
        assert!(!snap.has_edge(2, 5));
        assert_eq!(snap.num_nodes(), 6);
        assert_eq!(d.version(), 4);
    }

    #[test]
    fn compaction_preserves_queries_and_version() {
        let mut d = DeltaCsr::new(small_base());
        d.insert_edge(0, 5).expect("in range");
        d.delete_edge(0, 1).expect("in range");
        let n = d.add_node();
        d.insert_edge(n, 2).expect("in range");
        let before = d.to_csr();
        let version = d.version();
        assert!(d.delta_entries() > 0);
        d.compact();
        assert_eq!(d.delta_entries(), 0);
        assert_eq!(d.version(), version);
        assert_eq!(d.to_csr(), before);
        // Compacting a clean delta is a no-op.
        d.compact();
        assert_eq!(d.to_csr(), before);
    }

    #[test]
    fn materialized_snapshot_is_a_valid_symmetric_csr() {
        let mut d = DeltaCsr::new(small_base());
        for (u, v) in [(0, 3), (1, 4), (2, 5)] {
            d.insert_edge(u, v).expect("in range");
        }
        d.delete_edge(3, 4).expect("in range");
        let csr = d.to_csr();
        assert!(csr.is_sorted());
        assert!(csr.is_symmetric());
        assert_eq!(csr.num_edges(), d.num_edges());
    }

    #[test]
    fn update_stream_is_deterministic_and_effective() {
        let (base, _) = community_graph(
            &CommunityParams {
                num_nodes: 300,
                num_edges: 2_400,
                mean_community: 30,
                community_size_cv: 0.3,
                inter_fraction: 0.08,
                shuffle_ids: false,
            },
            3,
        )
        .expect("valid");
        let cfg = UpdateStreamConfig {
            num_updates: 400,
            delete_fraction: 0.25,
            node_fraction: 0.05,
            seed: 9,
            ..Default::default()
        };
        let a = generate_updates(&base, &cfg).expect("valid");
        let b = generate_updates(&base, &cfg).expect("valid");
        assert_eq!(a, b, "same seed, same stream");
        assert!(
            a.windows(2).all(|w| w[0].at_ms < w[1].at_ms),
            "strictly increasing"
        );
        // Applying the stream in order never hits a no-op: the generator
        // tracks the live edge set.
        let mut d = DeltaCsr::new(base);
        let (mut ins, mut del, mut arr) = (0usize, 0usize, 0usize);
        for ev in &a {
            match ev.kind {
                UpdateKind::InsertEdge { u, v } => {
                    assert!(
                        d.insert_edge(u, v).expect("in range"),
                        "insert must be effective"
                    );
                    ins += 1;
                }
                UpdateKind::DeleteEdge { u, v } => {
                    assert!(
                        d.delete_edge(u, v).expect("in range"),
                        "delete must be effective"
                    );
                    del += 1;
                }
                UpdateKind::AddNode => {
                    d.add_node();
                    arr += 1;
                }
            }
        }
        assert_eq!(ins + del + arr, 400);
        assert!(
            ins > del && del > 0 && arr > 0,
            "churn mix respected: {ins}/{del}/{arr}"
        );
        assert_eq!(d.version(), 400);
    }

    #[test]
    fn attachment_churn_wires_arrivals_into_communities() {
        let (base, _) = community_graph(
            &CommunityParams {
                num_nodes: 300,
                num_edges: 2_400,
                mean_community: 30,
                community_size_cv: 0.3,
                inter_fraction: 0.08,
                shuffle_ids: false,
            },
            5,
        )
        .expect("valid");
        let cfg = UpdateStreamConfig {
            num_updates: 600,
            delete_fraction: 0.1,
            node_fraction: 0.3,
            attach_degree: 5,
            seed: 4,
            ..Default::default()
        };
        let stream = generate_updates(&base, &cfg).expect("valid");
        assert_eq!(stream, generate_updates(&base, &cfg).expect("valid"));
        assert_eq!(stream.len(), 600);
        let mut d = DeltaCsr::new(base.clone());
        let mut arrivals: Vec<NodeId> = Vec::new();
        for ev in &stream {
            match ev.kind {
                UpdateKind::InsertEdge { u, v } => {
                    assert!(d.insert_edge(u, v).expect("in range"), "effective insert");
                }
                UpdateKind::DeleteEdge { u, v } => {
                    assert!(d.delete_edge(u, v).expect("in range"), "effective delete");
                }
                UpdateKind::AddNode => arrivals.push(d.add_node()),
            }
        }
        assert!(
            arrivals.len() > 20,
            "node churn present: {}",
            arrivals.len()
        );
        // Most arrivals (ignoring the tail, whose attachments may be cut
        // off by the num_updates budget) end up wired, not isolated.
        let wired = arrivals
            .iter()
            .take(arrivals.len() - 2)
            .filter(|&&v| !d.neighbors_of(v).is_empty())
            .count();
        assert!(
            wired * 10 >= (arrivals.len() - 2) * 9,
            "attachment must wire arrivals: {wired}/{}",
            arrivals.len() - 2
        );
        // Attachment edges land far from the new node in id space — the
        // decay signal a re-renumbering policy later removes.
        let n0 = base.num_nodes() as i64;
        let long_span = stream
            .iter()
            .filter(|e| match e.kind {
                UpdateKind::InsertEdge { u, v } => {
                    (u as i64 - v as i64).abs() > 64 && (u as i64 >= n0 || v as i64 >= n0)
                }
                _ => false,
            })
            .count();
        assert!(
            long_span > 50,
            "arrival edges span the id space: {long_span}"
        );
    }

    #[test]
    fn update_stream_rejects_bad_configs() {
        let base = small_base();
        let bad = |mutate: fn(&mut UpdateStreamConfig)| {
            let mut cfg = UpdateStreamConfig::default();
            mutate(&mut cfg);
            generate_updates(&base, &cfg)
        };
        assert!(bad(|c| c.num_updates = 0).is_err());
        assert!(bad(|c| c.mean_interarrival_ms = 0.0).is_err());
        assert!(bad(|c| c.delete_fraction = 1.2).is_err());
        assert!(bad(|c| c.node_fraction = -0.1).is_err());
        assert!(bad(|c| {
            c.delete_fraction = 0.7;
            c.node_fraction = 0.4;
        })
        .is_err());
        assert!(generate_updates(&Csr::empty(1), &UpdateStreamConfig::default()).is_err());
    }
}
