//! Compressed-sparse-row adjacency structure.
//!
//! [`Csr`] is the canonical graph representation consumed by every
//! aggregation kernel in the runtime. Node ids are `u32` ([`NodeId`]) so
//! that multi-million-node graphs (Table 1, Type III) keep their adjacency
//! arrays compact, which also matters for the simulated memory traffic: the
//! kernels charge DRAM bytes proportional to these arrays' real sizes.

use crate::{GraphError, Permutation, Result};

/// Node identifier. `u32` bounds graphs at ~4.2 billion nodes, far beyond
/// the paper's largest input.
pub type NodeId = u32;

/// A directed graph in compressed-sparse-row form.
///
/// `row_ptr` has `num_nodes + 1` entries; the out-neighbors of node `v` are
/// `col_idx[row_ptr[v] .. row_ptr[v + 1]]`. GNN aggregation treats the
/// neighbor list of `v` as the set of messages flowing *into* `v`, matching
/// the paper's formulation `a_v = Aggregate(h_u | u in Neighbor(v))`.
///
/// # Examples
///
/// ```
/// use gnnadvisor_graph::{Csr, EdgeList};
///
/// let mut edges = EdgeList::new(3);
/// edges.push_undirected(0, 1);
/// edges.push_undirected(1, 2);
/// let graph: Csr = edges.into_csr().unwrap();
/// assert_eq!(graph.degree(1), 2);
/// assert_eq!(graph.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    num_nodes: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from raw arrays, validating the invariants.
    ///
    /// Returns an error if `row_ptr` is not monotone from `0` to
    /// `col_idx.len()`, or if any column index is out of range.
    pub fn from_raw(num_nodes: usize, row_ptr: Vec<usize>, col_idx: Vec<NodeId>) -> Result<Self> {
        if row_ptr.len() != num_nodes + 1 {
            return Err(GraphError::MalformedRowPtr {
                index: row_ptr.len(),
            });
        }
        if row_ptr[0] != 0 {
            return Err(GraphError::MalformedRowPtr { index: 0 });
        }
        for i in 1..row_ptr.len() {
            if row_ptr[i] < row_ptr[i - 1] {
                return Err(GraphError::MalformedRowPtr { index: i });
            }
        }
        if *row_ptr.last().expect("non-empty by construction") != col_idx.len() {
            return Err(GraphError::MalformedRowPtr { index: num_nodes });
        }
        for &c in &col_idx {
            if c as usize >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: c as u64,
                    num_nodes: num_nodes as u64,
                });
            }
        }
        Ok(Self {
            num_nodes,
            row_ptr,
            col_idx,
        })
    }

    /// An empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            row_ptr: vec![0; num_nodes + 1],
            col_idx: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges (an undirected edge stored both ways counts
    /// twice, matching how the paper's Table 1 reports edge counts).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Neighbor slice of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// The raw row-pointer array (length `num_nodes + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw column-index array (length `num_edges`).
    #[inline]
    pub fn col_idx(&self) -> &[NodeId] {
        &self.col_idx
    }

    /// Iterates over all directed edges as `(src, dst)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes as NodeId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether each neighbor list is sorted ascending (generators guarantee
    /// this; some reorderings rely on it for determinism).
    pub fn is_sorted(&self) -> bool {
        (0..self.num_nodes as NodeId).all(|v| self.neighbors(v).windows(2).all(|w| w[0] <= w[1]))
    }

    /// Whether the graph is symmetric (for every edge `(u, v)` the reverse
    /// edge `(v, u)` exists). Aggregation semantics do not require symmetry,
    /// but the community/renumbering pipeline assumes it.
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| {
            self.neighbors(v).binary_search(&u).is_ok() || {
                // Fall back to a linear scan when neighbor lists are unsorted.
                !self.is_sorted_row(v) && self.neighbors(v).contains(&u)
            }
        })
    }

    fn is_sorted_row(&self, v: NodeId) -> bool {
        self.neighbors(v).windows(2).all(|w| w[0] <= w[1])
    }

    /// Returns the transpose graph (every edge reversed).
    pub fn transpose(&self) -> Csr {
        let mut deg = vec![0usize; self.num_nodes];
        for &c in &self.col_idx {
            deg[c as usize] += 1;
        }
        let mut row_ptr = vec![0usize; self.num_nodes + 1];
        for v in 0..self.num_nodes {
            row_ptr[v + 1] = row_ptr[v] + deg[v];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as NodeId; self.col_idx.len()];
        for (src, dst) in self.edges() {
            let slot = cursor[dst as usize];
            col_idx[slot] = src;
            cursor[dst as usize] += 1;
        }
        Csr {
            num_nodes: self.num_nodes,
            row_ptr,
            col_idx,
        }
    }

    /// Applies a node permutation, producing the renumbered graph.
    ///
    /// `perm.new_of(v)` gives the new id of old node `v`. The result has the
    /// same edge multiset modulo renaming, with sorted neighbor lists.
    pub fn permute(&self, perm: &Permutation) -> Result<Csr> {
        if perm.len() != self.num_nodes {
            return Err(GraphError::InvalidPermutation {
                reason: "length mismatch with graph",
            });
        }
        let mut deg = vec![0usize; self.num_nodes];
        for v in 0..self.num_nodes as NodeId {
            deg[perm.new_of(v) as usize] = self.degree(v);
        }
        let mut row_ptr = vec![0usize; self.num_nodes + 1];
        for v in 0..self.num_nodes {
            row_ptr[v + 1] = row_ptr[v] + deg[v];
        }
        let mut col_idx = vec![0 as NodeId; self.col_idx.len()];
        for v in 0..self.num_nodes as NodeId {
            let nv = perm.new_of(v) as usize;
            let out = &mut col_idx[row_ptr[nv]..row_ptr[nv] + deg[nv]];
            for (slot, &u) in out.iter_mut().zip(self.neighbors(v)) {
                *slot = perm.new_of(u);
            }
            out.sort_unstable();
        }
        Ok(Csr {
            num_nodes: self.num_nodes,
            row_ptr,
            col_idx,
        })
    }

    /// RCM-style bandwidth: the maximum `|v - u|` over all edges `(v, u)`.
    /// Lower bandwidth after renumbering means neighbor embeddings live
    /// closer together in memory, which the cache model rewards.
    pub fn bandwidth(&self) -> usize {
        self.edges()
            .map(|(v, u)| (v as i64 - u as i64).unsigned_abs() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean `|v - u|` over all edges: a smoother locality proxy than
    /// [`Csr::bandwidth`], used by tests to verify that renumbering
    /// improves locality on community graphs.
    pub fn mean_edge_span(&self) -> f64 {
        if self.num_edges() == 0 {
            return 0.0;
        }
        let total: u64 = self
            .edges()
            .map(|(v, u)| (v as i64 - u as i64).unsigned_abs())
            .sum();
        total as f64 / self.num_edges() as f64
    }

    /// Heap size of the adjacency arrays in bytes, as charged to the
    /// simulated GPU's global memory.
    pub fn adjacency_bytes(&self) -> usize {
        self.row_ptr.len() * core::mem::size_of::<usize>()
            + self.col_idx.len() * core::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn path3() -> Csr {
        // 0 - 1 - 2 stored symmetrically.
        let mut el = EdgeList::new(3);
        el.push(0, 1);
        el.push(1, 2);
        el.symmetrize();
        el.into_csr().expect("valid")
    }

    #[test]
    fn from_raw_validates_row_ptr() {
        assert!(
            Csr::from_raw(2, vec![0, 1], vec![0]).is_err(),
            "short row_ptr"
        );
        assert!(
            Csr::from_raw(2, vec![1, 1, 1], vec![0]).is_err(),
            "row_ptr[0] != 0"
        );
        assert!(
            Csr::from_raw(2, vec![0, 2, 1], vec![0]).is_err(),
            "non-monotone"
        );
        assert!(
            Csr::from_raw(2, vec![0, 0, 2], vec![0]).is_err(),
            "tail mismatch"
        );
        assert!(
            Csr::from_raw(2, vec![0, 1, 1], vec![5]).is_err(),
            "col out of range"
        );
        assert!(Csr::from_raw(2, vec![0, 1, 1], vec![1]).is_ok());
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path3();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_and_transpose() {
        let g = path3();
        assert!(g.is_symmetric());
        assert_eq!(g.transpose(), g, "symmetric graph equals its transpose");

        let mut el = EdgeList::new(3);
        el.push(0, 1);
        let d = el.into_csr().expect("valid");
        assert!(!d.is_symmetric());
        let t = d.transpose();
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.degree(0), 0);
    }

    #[test]
    fn permute_reverses_ids() {
        let g = path3();
        // Reverse node order: 0 <-> 2.
        let perm = Permutation::from_new_of_old(vec![2, 1, 0]).expect("valid");
        let p = g.permute(&perm).expect("valid");
        assert_eq!(p.neighbors(2), &[1]); // old node 0
        assert_eq!(p.neighbors(1), &[0, 2]);
        assert!(p.is_symmetric());
        assert_eq!(p.num_edges(), g.num_edges());
    }

    #[test]
    fn bandwidth_of_path_is_one() {
        let g = path3();
        assert_eq!(g.bandwidth(), 1);
        assert!((g.mean_edge_span() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.bandwidth(), 0);
        assert!(g.is_symmetric());
        assert!(g.is_sorted());
    }

    #[test]
    fn edges_iterator_matches_neighbor_lists() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }
}
