//! Seeded neighbor fan-out and layer-wise sampling for mini-batch training.
//!
//! Sampling-based GNN training never touches the full graph per step:
//! each mini-batch picks a set of *seed* nodes, expands their receptive
//! field hop by hop under a sampling policy, and trains on the resulting
//! sub-block. This module produces those blocks over the synthetic
//! generators:
//!
//! - [`SampleStrategy::NeighborFanout`] — GraphSAGE-style per-node
//!   fan-out: every frontier node keeps at most `fanouts[hop]` of its
//!   neighbors, sampled without replacement.
//! - [`SampleStrategy::LayerWise`] — FastGCN-style per-layer budget: the
//!   union of all frontier neighbors is subsampled to at most `budget`
//!   nodes per hop, and each frontier node keeps its edges into the
//!   chosen set.
//!
//! A [`SampledBlock`] is a *directed* CSR over block-local ids: row `v`
//! lists the neighbors `v` sampled, so the adjacency is asymmetric in
//! general even over an undirected base graph (`v` may sample `u`
//! without `u` sampling `v`, and frontier-most nodes have empty rows).
//! Downstream normalization (GCN's symmetric norm) therefore has to be
//! recomputed from the block's own degrees — see
//! [`SampledBlock::degrees`] — and the backward pass has to aggregate
//! over the block's transpose; assuming forward/backward symmetry is
//! only valid on full undirected graphs.
//!
//! Everything is seeded and serial: the same `(graph, config, epoch)`
//! triple produces byte-identical blocks on every run and at any
//! `GNNADVISOR_SIM_THREADS` (the sampler never touches the simulator).

use std::collections::{HashMap, HashSet};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::csr::{Csr, NodeId};
use crate::{GraphError, Result};

/// How the receptive field is subsampled at each hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Per-node fan-out: every frontier node keeps at most `fanouts[hop]`
    /// neighbors.
    NeighborFanout,
    /// Per-layer budget: at most `budget` distinct neighbor nodes survive
    /// per hop, shared across the whole frontier.
    LayerWise {
        /// Maximum distinct sampled nodes per hop.
        budget: usize,
    },
}

/// Parameters of one epoch's worth of mini-batch samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleConfig {
    /// Seed nodes per mini-batch (the last batch of an epoch may be
    /// smaller).
    pub batch_size: usize,
    /// Per-hop fan-outs, seed-adjacent hop first. The length is the
    /// number of sampled hops; under [`SampleStrategy::LayerWise`] the
    /// values still cap each node's kept edges into the chosen set.
    pub fanouts: Vec<usize>,
    /// Subsampling policy.
    pub strategy: SampleStrategy,
    /// Sampling seed; combined with the epoch index so every epoch draws
    /// a fresh (but replayable) permutation and sample.
    pub seed: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            batch_size: 256,
            fanouts: vec![10, 5],
            strategy: SampleStrategy::NeighborFanout,
            seed: 7,
        }
    }
}

impl SampleConfig {
    /// Validates the configuration (positive batch size, at least one
    /// non-zero fan-out, non-zero layer-wise budget).
    pub fn validate(&self) -> Result<()> {
        if self.batch_size == 0 {
            return Err(GraphError::InvalidParameters {
                reason: "sample batch_size must be > 0".into(),
            });
        }
        if self.fanouts.is_empty() {
            return Err(GraphError::InvalidParameters {
                reason: "sample fanouts must name at least one hop".into(),
            });
        }
        if self.fanouts.contains(&0) {
            return Err(GraphError::InvalidParameters {
                reason: "sample fanouts must all be > 0".into(),
            });
        }
        if let SampleStrategy::LayerWise { budget } = self.strategy {
            if budget == 0 {
                return Err(GraphError::InvalidParameters {
                    reason: "layer-wise budget must be > 0".into(),
                });
            }
        }
        Ok(())
    }
}

/// One mini-batch's sampled sub-block.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledBlock {
    /// The sampled adjacency over block-local ids: row `v` lists the
    /// neighbors `v` sampled. Directed — asymmetric in general.
    pub block: Csr,
    /// Block-local id → base-graph id. The first [`Self::num_seeds`]
    /// entries are the batch's seed nodes in batch order.
    pub nodes: Vec<NodeId>,
    /// How many leading entries of [`Self::nodes`] are seeds (the nodes
    /// whose predictions the batch trains on).
    pub num_seeds: usize,
    /// Node-count prefix per hop: `hop_offsets[h]..hop_offsets[h + 1]`
    /// are the block-local ids first reached at hop `h` (hop 0 = seeds).
    pub hop_offsets: Vec<usize>,
    /// Base-graph adjacency entries examined while sampling — the
    /// candidate scan the host pays for before any edge is kept.
    pub scanned_edges: usize,
}

impl SampledBlock {
    /// The block's per-node sampled out-degrees (row lengths) — the
    /// degrees GCN normalization must be recomputed from, because base-
    /// graph degrees overcount what the block actually aggregates.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.block.num_nodes() as NodeId)
            .map(|v| self.block.degree(v))
            .collect()
    }

    /// Bytes of feature rows the host gathers for this block.
    pub fn gather_bytes(&self, feat_dim: usize) -> usize {
        self.block.num_nodes() * feat_dim * core::mem::size_of::<f32>()
    }
}

/// Samples one epoch: a seeded shuffle of all nodes, chunked into
/// batches of `cfg.batch_size` seeds, each expanded into a
/// [`SampledBlock`]. The epoch index is folded into the seed so epochs
/// draw distinct (but individually replayable) samples.
pub fn sample_epoch(graph: &Csr, cfg: &SampleConfig, epoch: u64) -> Result<Vec<SampledBlock>> {
    cfg.validate()?;
    if graph.num_nodes() == 0 {
        return Err(GraphError::InvalidParameters {
            reason: "cannot sample an empty graph".into(),
        });
    }
    // Golden-ratio stride decorrelates epochs without losing replay.
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ (epoch.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut order: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    order.shuffle(&mut rng);
    order
        .chunks(cfg.batch_size)
        .map(|seeds| sample_block(graph, seeds, cfg, &mut rng))
        .collect()
}

/// Expands one batch of seed nodes into a [`SampledBlock`] under the
/// config's strategy, drawing from `rng`.
pub fn sample_block(
    graph: &Csr,
    seeds: &[NodeId],
    cfg: &SampleConfig,
    rng: &mut SmallRng,
) -> Result<SampledBlock> {
    cfg.validate()?;
    if seeds.is_empty() {
        return Err(GraphError::InvalidParameters {
            reason: "a sample batch needs at least one seed".into(),
        });
    }
    let n = graph.num_nodes();
    let mut local_of: HashMap<NodeId, u32> = HashMap::with_capacity(seeds.len() * 4);
    let mut nodes: Vec<NodeId> = Vec::with_capacity(seeds.len() * 4);
    for &s in seeds {
        if (s as usize) >= n {
            return Err(GraphError::NodeOutOfRange {
                node: s as u64,
                num_nodes: n as u64,
            });
        }
        if local_of.insert(s, nodes.len() as u32).is_some() {
            return Err(GraphError::InvalidParameters {
                reason: format!("duplicate seed node {s}"),
            });
        }
        nodes.push(s);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes.len()];
    let mut hop_offsets = vec![0usize, nodes.len()];
    let mut frontier = 0..nodes.len();
    let mut scanned_edges = 0usize;

    for &fanout in &cfg.fanouts {
        let hop_start = nodes.len();
        // Layer-wise: pick the hop's shared node budget up front from the
        // frontier's candidate union (first-seen order keeps it seeded).
        let chosen_pool: Option<HashSet<NodeId>> = match cfg.strategy {
            SampleStrategy::NeighborFanout => None,
            SampleStrategy::LayerWise { budget } => {
                let mut union: Vec<NodeId> = Vec::new();
                let mut seen: HashSet<NodeId> = HashSet::new();
                for v_local in frontier.clone() {
                    let v = nodes[v_local];
                    for &u in graph.neighbors(v) {
                        if u != v && seen.insert(u) {
                            union.push(u);
                        }
                    }
                }
                Some(
                    sample_without_replacement(&union, budget, rng)
                        .into_iter()
                        .collect(),
                )
            }
        };
        for v_local in frontier.clone() {
            let v = nodes[v_local];
            let neigh = graph.neighbors(v);
            scanned_edges += neigh.len();
            let kept: Vec<NodeId> = match &chosen_pool {
                None => {
                    let candidates: Vec<NodeId> =
                        neigh.iter().copied().filter(|&u| u != v).collect();
                    sample_without_replacement(&candidates, fanout, rng)
                }
                Some(pool) => {
                    let candidates: Vec<NodeId> = neigh
                        .iter()
                        .copied()
                        .filter(|&u| u != v && pool.contains(&u))
                        .collect();
                    sample_without_replacement(&candidates, fanout, rng)
                }
            };
            for u in kept {
                let u_local = *local_of.entry(u).or_insert_with(|| {
                    nodes.push(u);
                    adj.push(Vec::new());
                    (nodes.len() - 1) as u32
                });
                adj[v_local].push(u_local);
            }
        }
        hop_offsets.push(nodes.len());
        frontier = hop_start..nodes.len();
    }

    // Canonical CSR: rows in local-id order, columns ascending.
    let mut row_ptr = Vec::with_capacity(nodes.len() + 1);
    let mut col_idx = Vec::new();
    row_ptr.push(0);
    for row in &mut adj {
        row.sort_unstable();
        col_idx.extend_from_slice(row);
        row_ptr.push(col_idx.len());
    }
    let block = Csr::from_raw(nodes.len(), row_ptr, col_idx)?;
    Ok(SampledBlock {
        block,
        num_seeds: seeds.len(),
        nodes,
        hop_offsets,
        scanned_edges,
    })
}

/// At most `k` distinct entries of `pool`, in ascending pool order
/// (partial Fisher–Yates, then sort for a canonical result).
fn sample_without_replacement(pool: &[NodeId], k: usize, rng: &mut SmallRng) -> Vec<NodeId> {
    if pool.len() <= k {
        let mut all = pool.to_vec();
        all.sort_unstable();
        return all;
    }
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    let mut kept: Vec<NodeId> = idx[..k].iter().map(|&i| pool[i]).collect();
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    fn base() -> Csr {
        barabasi_albert(400, 6, 3).expect("valid")
    }

    fn cfg() -> SampleConfig {
        SampleConfig {
            batch_size: 64,
            fanouts: vec![4, 3],
            strategy: SampleStrategy::NeighborFanout,
            seed: 11,
        }
    }

    #[test]
    fn epoch_covers_every_node_as_a_seed_once() {
        let g = base();
        let blocks = sample_epoch(&g, &cfg(), 0).expect("samples");
        let mut seeds: Vec<NodeId> = blocks
            .iter()
            .flat_map(|b| b.nodes[..b.num_seeds].iter().copied())
            .collect();
        seeds.sort_unstable();
        assert_eq!(seeds, (0..g.num_nodes() as NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn fanout_bounds_block_degrees() {
        let g = base();
        let c = cfg();
        for b in sample_epoch(&g, &c, 1).expect("samples") {
            let max_fanout = *c.fanouts.iter().max().expect("non-empty");
            for v in 0..b.block.num_nodes() as NodeId {
                assert!(b.block.degree(v) <= max_fanout);
                // Never more than the base graph offers.
                assert!(b.block.degree(v) <= g.degree(b.nodes[v as usize]));
            }
        }
    }

    #[test]
    fn sampled_edges_exist_in_the_base_graph() {
        let g = base();
        for b in sample_epoch(&g, &cfg(), 2).expect("samples") {
            for v in 0..b.block.num_nodes() as NodeId {
                let base_v = b.nodes[v as usize];
                for &u in b.block.neighbors(v) {
                    let base_u = b.nodes[u as usize];
                    assert!(
                        g.neighbors(base_v).contains(&base_u),
                        "block edge {base_v}->{base_u} absent from base graph"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = base();
        let a = sample_epoch(&g, &cfg(), 5).expect("samples");
        let b = sample_epoch(&g, &cfg(), 5).expect("samples");
        assert_eq!(a, b);
        // Distinct epochs draw distinct shuffles.
        let c = sample_epoch(&g, &cfg(), 6).expect("samples");
        assert_ne!(
            a.first().map(|b| b.nodes.clone()),
            c.first().map(|b| b.nodes.clone())
        );
    }

    #[test]
    fn blocks_are_asymmetric_in_general() {
        // Fan-out sampling keeps v -> u without necessarily keeping
        // u -> v; over many blocks of a dense-enough graph at small
        // fan-out, at least one block must be asymmetric. This is the
        // property that invalidates the symmetric-backward shortcut.
        let g = base();
        let c = SampleConfig {
            fanouts: vec![2, 2],
            ..cfg()
        };
        let any_asymmetric = sample_epoch(&g, &c, 0)
            .expect("samples")
            .iter()
            .any(|b| !b.block.is_symmetric());
        assert!(any_asymmetric);
    }

    #[test]
    fn layer_wise_budget_caps_hop_growth() {
        let g = base();
        let budget = 16;
        let c = SampleConfig {
            batch_size: 32,
            fanouts: vec![8, 8],
            strategy: SampleStrategy::LayerWise { budget },
            seed: 4,
        };
        for b in sample_epoch(&g, &c, 0).expect("samples") {
            for h in 1..b.hop_offsets.len() - 1 {
                let added = b.hop_offsets[h + 1] - b.hop_offsets[h];
                assert!(added <= budget, "hop {h} added {added} > budget {budget}");
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let g = base();
        let mut c = cfg();
        c.batch_size = 0;
        assert!(sample_epoch(&g, &c, 0).is_err());
        let mut c = cfg();
        c.fanouts.clear();
        assert!(sample_epoch(&g, &c, 0).is_err());
        let mut c = cfg();
        c.strategy = SampleStrategy::LayerWise { budget: 0 };
        assert!(sample_epoch(&g, &c, 0).is_err());
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(sample_block(&g, &[], &cfg(), &mut rng).is_err());
        assert!(sample_block(&g, &[0, 0], &cfg(), &mut rng).is_err());
        assert!(sample_block(&g, &[9_999], &cfg(), &mut rng).is_err());
    }

    #[test]
    fn hop_offsets_partition_the_block() {
        let g = base();
        for b in sample_epoch(&g, &cfg(), 3).expect("samples") {
            assert_eq!(b.hop_offsets[0], 0);
            assert_eq!(b.hop_offsets[1], b.num_seeds);
            assert_eq!(*b.hop_offsets.last().expect("non-empty"), b.nodes.len());
            assert!(b.hop_offsets.windows(2).all(|w| w[0] <= w[1]));
            assert!(b.scanned_edges >= b.block.num_edges());
        }
    }
}
