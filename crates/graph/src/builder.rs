//! Ergonomic graph construction helper used by tests and examples.

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, Result};

/// A small fluent builder over [`EdgeList`] for hand-written graphs.
///
/// # Examples
///
/// ```
/// use gnnadvisor_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .undirected_edge(0, 1)
///     .undirected_edge(1, 2)
///     .undirected_edge(2, 3)
///     .build()
///     .unwrap();
/// assert_eq!(g.num_edges(), 6);
/// assert!(g.is_symmetric());
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edges: EdgeList,
}

impl GraphBuilder {
    /// A builder over `num_nodes` nodes with no edges.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            edges: EdgeList::new(num_nodes),
        }
    }

    /// Adds a directed edge.
    #[must_use]
    pub fn edge(mut self, src: NodeId, dst: NodeId) -> Self {
        self.edges.push(src, dst);
        self
    }

    /// Adds an undirected edge (both directions).
    #[must_use]
    pub fn undirected_edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.edges.push_undirected(u, v);
        self
    }

    /// Adds a clique over the given nodes (all pairs, both directions).
    #[must_use]
    pub fn clique(mut self, nodes: &[NodeId]) -> Self {
        for (i, &u) in nodes.iter().enumerate() {
            for &v in &nodes[i + 1..] {
                self.edges.push_undirected(u, v);
            }
        }
        self
    }

    /// Adds an undirected path through the given nodes in order.
    #[must_use]
    pub fn path(mut self, nodes: &[NodeId]) -> Self {
        for w in nodes.windows(2) {
            self.edges.push_undirected(w[0], w[1]);
        }
        self
    }

    /// Adds an undirected star centered at `center`.
    #[must_use]
    pub fn star(mut self, center: NodeId, leaves: &[NodeId]) -> Self {
        for &l in leaves {
            self.edges.push_undirected(center, l);
        }
        self
    }

    /// Finalizes into a CSR, deduplicating edges first.
    pub fn build(mut self) -> Result<Csr> {
        self.edges.dedup();
        self.edges.into_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_has_all_pairs() {
        let g = GraphBuilder::new(4)
            .clique(&[0, 1, 2, 3])
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 12);
        for v in 0..4 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn star_degrees() {
        let g = GraphBuilder::new(5)
            .star(0, &[1, 2, 3, 4])
            .build()
            .expect("valid");
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = GraphBuilder::new(2)
            .edge(0, 1)
            .edge(0, 1)
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn path_is_connected_chain() {
        let g = GraphBuilder::new(3)
            .path(&[0, 1, 2])
            .build()
            .expect("valid");
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.bandwidth(), 1);
    }
}
