//! Graph statistics consumed by the input extractor (Section 4.1).
//!
//! The analytical model (Section 7.1, Eq. 2) keys its `alpha` parameter on
//! the standard deviation of node degree, and the renumbering analysis
//! (Section 8.6.2) explains the `artist` outlier by the standard deviation
//! of community sizes — both statistics are computed here.

use crate::csr::{Csr, NodeId};

/// Summary statistics over node out-degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree (`E / N`).
    pub mean: f64,
    /// Population standard deviation of out-degree.
    pub stddev: f64,
}

impl DegreeStats {
    /// Computes degree statistics for a graph.
    pub fn of(graph: &Csr) -> Self {
        let n = graph.num_nodes();
        if n == 0 {
            return Self {
                min: 0,
                max: 0,
                mean: 0.0,
                stddev: 0.0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0u64;
        for v in 0..n as NodeId {
            let d = graph.degree(v);
            min = min.min(d);
            max = max.max(d);
            sum += d as u64;
        }
        let mean = sum as f64 / n as f64;
        let var = (0..n as NodeId)
            .map(|v| {
                let d = graph.degree(v) as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        Self {
            min,
            max,
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Coefficient of variation (`stddev / mean`), a scale-free measure of
    /// degree skew. Power-law graphs score well above 1.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Summary statistics over the sizes of a node partition (communities).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Number of parts (communities).
    pub count: usize,
    /// Mean part size.
    pub mean_size: f64,
    /// Population standard deviation of part sizes.
    pub stddev_size: f64,
    /// Largest part size.
    pub max_size: usize,
}

impl PartitionStats {
    /// Computes partition statistics from a per-node community assignment.
    ///
    /// Community ids need not be dense; empty ids are ignored.
    pub fn of(assignment: &[u32]) -> Self {
        if assignment.is_empty() {
            return Self {
                count: 0,
                mean_size: 0.0,
                stddev_size: 0.0,
                max_size: 0,
            };
        }
        let max_id = assignment.iter().max().copied().unwrap_or(0) as usize;
        let mut sizes = vec![0usize; max_id + 1];
        for &c in assignment {
            sizes[c as usize] += 1;
        }
        sizes.retain(|&s| s > 0);
        let count = sizes.len();
        let mean = assignment.len() as f64 / count as f64;
        let var = sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / count as f64;
        Self {
            count,
            mean_size: mean,
            stddev_size: var.sqrt(),
            max_size: sizes.into_iter().max().unwrap_or(0),
        }
    }
}

/// Degree histogram in power-of-two buckets: bucket `i` counts nodes with
/// degree in `[2^i, 2^(i+1))` (bucket 0 additionally holds degree 0).
/// Useful for eyeballing the power-law property that drives the paper's
/// workload-imbalance argument (Figure 2).
pub fn degree_histogram_log2(graph: &Csr) -> Vec<usize> {
    let mut buckets = Vec::new();
    for v in 0..graph.num_nodes() as NodeId {
        let d = graph.degree(v);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Fraction of a node's edges whose endpoint lies within `window` ids of the
/// node, averaged over edges. A cheap proxy for the spatial locality the
/// renumbering pass (Section 6.1) tries to maximize.
///
/// An edgeless graph (including the empty and single-node graphs) scores
/// `1.0` by convention — nothing is non-local — instead of dividing by a
/// zero edge count.
pub fn locality_score(graph: &Csr, window: usize) -> f64 {
    let e = graph.num_edges();
    if e == 0 {
        return 1.0;
    }
    let near = graph
        .edges()
        .filter(|&(v, u)| (v as i64 - u as i64).unsigned_abs() as usize <= window)
        .count();
    near as f64 / e as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn degree_stats_of_star() {
        let g = GraphBuilder::new(5)
            .star(0, &[1, 2, 3, 4])
            .build()
            .expect("valid");
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert!(s.stddev > 1.0, "star is highly skewed");
        assert!(s.coefficient_of_variation() > 0.5);
    }

    #[test]
    fn degree_stats_of_regular_graph() {
        let g = GraphBuilder::new(4)
            .clique(&[0, 1, 2, 3])
            .build()
            .expect("valid");
        let s = DegreeStats::of(&g);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 3);
        assert_eq!(s.stddev, 0.0);
    }

    /// Regression pins (ISSUE 8): degree/locality summaries of the empty
    /// and single-node graphs are exact zeros/ones — finite, deterministic,
    /// and never the product of a 0/0 division.
    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&crate::Csr::empty(0));
        assert_eq!(
            s,
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                stddev: 0.0
            }
        );
        assert_eq!(s.coefficient_of_variation(), 0.0);
    }

    #[test]
    fn single_node_graph_stats_are_exact_zeros() {
        let g = crate::Csr::empty(1);
        let s = DegreeStats::of(&g);
        assert_eq!(
            s,
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                stddev: 0.0
            }
        );
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(
            degree_histogram_log2(&g),
            vec![1],
            "one degree-0 node in bucket 0"
        );
    }

    #[test]
    fn locality_score_of_edgeless_graphs_is_one() {
        for n in [0usize, 1, 5] {
            let g = crate::Csr::empty(n);
            for window in [0usize, 1, 1024] {
                let l = locality_score(&g, window);
                assert_eq!(l, 1.0, "edgeless n={n} window={window}");
            }
        }
        assert!(degree_histogram_log2(&crate::Csr::empty(0)).is_empty());
    }

    #[test]
    fn partition_stats_of_empty_and_singleton_assignments() {
        let empty = PartitionStats::of(&[]);
        assert_eq!(
            empty,
            PartitionStats {
                count: 0,
                mean_size: 0.0,
                stddev_size: 0.0,
                max_size: 0
            }
        );
        let one = PartitionStats::of(&[0]);
        assert_eq!(one.count, 1);
        assert_eq!(one.mean_size, 1.0);
        assert_eq!(one.stddev_size, 0.0);
        assert_eq!(one.max_size, 1);
    }

    #[test]
    fn partition_stats_counts_nonempty() {
        let s = PartitionStats::of(&[0, 0, 2, 2, 2, 5]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max_size, 3);
        assert!((s.mean_size - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let g = GraphBuilder::new(5)
            .star(0, &[1, 2, 3, 4])
            .build()
            .expect("valid");
        let h = degree_histogram_log2(&g);
        // Four leaves with degree 1 in bucket 0, the hub (degree 4) in bucket 2.
        assert_eq!(h[0], 4);
        assert_eq!(h[2], 1);
    }

    #[test]
    fn locality_score_of_path_is_one() {
        let g = GraphBuilder::new(4)
            .path(&[0, 1, 2, 3])
            .build()
            .expect("valid");
        assert_eq!(locality_score(&g, 1), 1.0);
        let shuffled = GraphBuilder::new(4)
            .path(&[0, 2, 1, 3])
            .build()
            .expect("valid");
        assert!(locality_score(&shuffled, 1) < 1.0);
    }
}
