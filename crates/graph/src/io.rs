//! Edge-list file I/O.
//!
//! The reproduction synthesizes its datasets, but a downstream user will
//! want to feed real graphs in. This module reads the two formats the
//! paper's dataset sources use — SNAP-style whitespace-separated edge
//! lists (with `#` comments) and simple CSV pairs — and writes them back
//! out, so results can be reproduced on the genuine inputs when available.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::csr::{Csr, NodeId};
use crate::{EdgeList, GraphError, Result};

/// Options for [`load_edge_list`].
#[derive(Debug, Clone, Copy)]
pub struct LoadOptions {
    /// Add the reverse of every edge (GNN aggregation usually wants the
    /// symmetric closure).
    pub symmetrize: bool,
    /// Drop self-loops.
    pub drop_self_loops: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            symmetrize: true,
            drop_self_loops: true,
        }
    }
}

/// Reads an edge list from a reader: one `src dst` pair per line,
/// whitespace- or comma-separated; lines starting with `#` or `%` are
/// comments. Node ids may be arbitrary `u64` values — they are densely
/// remapped to `0..n` in first-appearance order.
pub fn read_edge_list<R: std::io::Read>(reader: R, options: &LoadOptions) -> Result<Csr> {
    let mut remap: std::collections::HashMap<u64, NodeId> = std::collections::HashMap::new();
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let intern = |raw: u64, remap: &mut std::collections::HashMap<u64, NodeId>| -> NodeId {
        let next = remap.len() as NodeId;
        *remap.entry(raw).or_insert(next)
    };

    for (line_no, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| GraphError::InvalidParameters {
            reason: format!("I/O error on line {}: {e}", line_no + 1),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed
            .split(|c: char| c.is_whitespace() || c == ',')
            .filter(|s| !s.is_empty());
        let (a, b) = match (parts.next(), parts.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::InvalidParameters {
                    reason: format!("line {} has fewer than two fields", line_no + 1),
                })
            }
        };
        let parse = |s: &str| -> Result<u64> {
            s.parse::<u64>().map_err(|_| GraphError::InvalidParameters {
                reason: format!("line {}: '{s}' is not a node id", line_no + 1),
            })
        };
        let u = intern(parse(a)?, &mut remap);
        let v = intern(parse(b)?, &mut remap);
        edges.push((u, v));
    }

    let mut el = EdgeList::with_capacity(remap.len(), edges.len() * 2);
    for (u, v) in edges {
        el.push(u, v);
    }
    if options.drop_self_loops {
        el.remove_self_loops();
    }
    if options.symmetrize {
        el.symmetrize();
    } else {
        el.dedup();
    }
    el.into_csr()
}

/// Reads an edge-list file; see [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P, options: &LoadOptions) -> Result<Csr> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| GraphError::InvalidParameters {
        reason: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    read_edge_list(file, options)
}

/// Writes a graph as a SNAP-style edge list (one directed edge per line).
pub fn save_edge_list<P: AsRef<Path>>(graph: &Csr, path: P) -> Result<()> {
    let file = std::fs::File::create(path.as_ref()).map_err(|e| GraphError::InvalidParameters {
        reason: format!("cannot create {}: {e}", path.as_ref().display()),
    })?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# nodes {} edges {}",
        graph.num_nodes(),
        graph.num_edges()
    )
    .and_then(|_| {
        for (u, v) in graph.edges() {
            writeln!(w, "{u}\t{v}")?;
        }
        Ok(())
    })
    .map_err(|e| GraphError::InvalidParameters {
        reason: format!("write failed: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let input = "# comment\n% another\n0 1\n1\t2\n\n2,0\n";
        let g = read_edge_list(input.as_bytes(), &LoadOptions::default()).expect("parses");
        assert_eq!(g.num_nodes(), 3);
        // Triangle symmetrized: 6 directed edges.
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_symmetric());
    }

    #[test]
    fn remaps_sparse_ids() {
        let input = "1000000 5\n5 70000\n";
        let g = read_edge_list(input.as_bytes(), &LoadOptions::default()).expect("parses");
        assert_eq!(g.num_nodes(), 3, "raw ids are densified");
    }

    #[test]
    fn directed_mode_and_self_loops() {
        let input = "0 1\n1 1\n";
        let opts = LoadOptions {
            symmetrize: false,
            drop_self_loops: false,
        };
        let g = read_edge_list(input.as_bytes(), &opts).expect("parses");
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_symmetric());
        let opts = LoadOptions {
            symmetrize: false,
            drop_self_loops: true,
        };
        let g = read_edge_list(input.as_bytes(), &opts).expect("parses");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes(), &LoadOptions::default()).is_err());
        assert!(read_edge_list("42\n".as_bytes(), &LoadOptions::default()).is_err());
    }

    #[test]
    fn roundtrip_through_file() {
        let g = crate::GraphBuilder::new(5)
            .clique(&[0, 1, 2])
            .undirected_edge(3, 4)
            .build()
            .expect("valid");
        let dir = std::env::temp_dir().join("gnnadvisor_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("roundtrip.el");
        save_edge_list(&g, &path).expect("saves");
        let back = load_edge_list(
            &path,
            &LoadOptions {
                symmetrize: false,
                drop_self_loops: false,
            },
        )
        .expect("loads");
        assert_eq!(back.num_edges(), g.num_edges());
        assert_eq!(back.num_nodes(), g.num_nodes());
        // Same degree sequence (ids may be remapped by first appearance).
        let degs = |g: &Csr| {
            let mut d: Vec<usize> = (0..g.num_nodes() as u32).map(|v| g.degree(v)).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degs(&back), degs(&g));
        std::fs::remove_file(path).ok();
    }
}
