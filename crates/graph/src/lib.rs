//! Graph substrate for the GNNAdvisor reproduction.
//!
//! This crate provides everything the runtime needs to know about the *input
//! graph* side of a GNN workload:
//!
//! - [`Csr`]: a compressed-sparse-row adjacency structure, the canonical
//!   in-memory representation consumed by every aggregation kernel.
//! - [`coo::EdgeList`]: a mutable edge-list builder that is finalized into a
//!   [`Csr`].
//! - [`generators`]: seeded synthetic graph generators reproducing the
//!   structural classes of the paper's Table 1 datasets (power-law community
//!   graphs, batched small dense graphs, Erdős–Rényi, R-MAT).
//! - [`community`]: Louvain modularity-maximizing community detection
//!   (Section 6.1, step 1 of node renumbering).
//! - [`reorder`]: Reverse Cuthill–McKee traversal and the full
//!   community-aware node-renumbering pipeline (Section 6.1).
//! - [`stats`]: degree and locality statistics used by the input extractor
//!   (Section 4.1) and by the analytical model's `alpha` parameter.
//! - [`sample`]: seeded neighbor fan-out and layer-wise sampling producing
//!   per-mini-batch [`SampledBlock`] sub-CSRs for sampling-based training.
//! - [`dynamic`]: seeded edge/node update streams and [`DeltaCsr`], an
//!   incrementally maintained CSR with copy-on-write snapshots for serving
//!   queries while the graph mutates.
//!
//! All generators and algorithms are deterministic: given the same seed and
//! input they produce byte-identical output, which the simulator upstream
//! relies on for reproducible experiment tables.

pub mod builder;
pub mod community;
pub mod coo;
pub mod csr;
pub mod dynamic;
pub mod generators;
pub mod io;
pub mod reorder;
pub mod sample;
pub mod stats;

pub use builder::GraphBuilder;
pub use coo::EdgeList;
pub use csr::{Csr, NodeId};
pub use dynamic::{
    generate_updates, DeltaCsr, GraphSnapshot, UpdateEvent, UpdateKind, UpdateStreamConfig,
};
pub use reorder::permutation::Permutation;
pub use sample::{sample_block, sample_epoch, SampleConfig, SampleStrategy, SampledBlock};

/// Errors produced while constructing or transforming graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node id `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph.
        num_nodes: u64,
    },
    /// A CSR row-pointer array was not monotonically non-decreasing or did
    /// not start at zero / end at `num_edges`.
    MalformedRowPtr {
        /// Index of the first offending entry.
        index: usize,
    },
    /// A permutation was not a bijection over `0..n`.
    InvalidPermutation {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// The requested generator parameters are inconsistent (e.g. more edges
    /// than the graph can hold).
    InvalidParameters {
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl core::fmt::Display for GraphError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::MalformedRowPtr { index } => {
                write!(f, "malformed CSR row pointer at index {index}")
            }
            GraphError::InvalidPermutation { reason } => {
                write!(f, "invalid permutation: {reason}")
            }
            GraphError::InvalidParameters { reason } => {
                write!(f, "invalid generator parameters: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Crate-local result alias.
pub type Result<T> = core::result::Result<T, GraphError>;
