//! Deterministic Louvain community detection.
//!
//! Two-phase iteration: (1) local moving — greedily move each node to the
//! neighboring community with the best modularity gain until no move helps;
//! (2) aggregation — collapse communities into super-nodes with weighted
//! edges and repeat. Terminates when a full pass yields no gain.
//!
//! The implementation is single-threaded and visits nodes in id order, so
//! the output is deterministic — a requirement for the reproducible
//! experiment tables downstream.

use crate::csr::{Csr, NodeId};

/// Tuning knobs for [`louvain`].
#[derive(Debug, Clone, Copy)]
pub struct LouvainConfig {
    /// Minimum modularity gain for a node move to be applied. Guards
    /// against floating-point jitter cycles.
    pub min_gain: f64,
    /// Maximum local-moving sweeps per level.
    pub max_sweeps: usize,
    /// Maximum aggregation levels.
    pub max_levels: usize,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        Self {
            min_gain: 1e-7,
            max_sweeps: 16,
            max_levels: 16,
        }
    }
}

/// Result of community detection.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community id per node, densely renumbered `0..num_communities`.
    pub community_of: Vec<u32>,
    /// Number of communities.
    pub num_communities: usize,
    /// Final modularity of the partition.
    pub modularity: f64,
    /// Aggregation levels performed.
    pub levels: usize,
}

/// Weighted graph used internally for aggregated levels.
struct WeightedGraph {
    /// Adjacency as (neighbor, weight) lists.
    adj: Vec<Vec<(u32, f64)>>,
    /// Self-loop weight per node (intra-community weight after aggregation).
    self_loop: Vec<f64>,
    /// Total edge weight counting both directions plus 2x self loops
    /// (`2m` in modularity formulas).
    total_weight: f64,
}

impl WeightedGraph {
    fn from_csr(graph: &Csr) -> Self {
        let n = graph.num_nodes();
        let mut adj = Vec::with_capacity(n);
        let mut self_loop = vec![0.0; n];
        let mut total = 0.0;
        for v in 0..n as NodeId {
            let mut list = Vec::with_capacity(graph.degree(v));
            for &u in graph.neighbors(v) {
                if u == v {
                    self_loop[v as usize] += 1.0;
                } else {
                    list.push((u, 1.0));
                }
                total += 1.0;
            }
            adj.push(list);
        }
        Self {
            adj,
            self_loop,
            total_weight: total,
        }
    }

    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Weighted degree (including self-loop both ways, matching `2m`
    /// bookkeeping).
    fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[v].iter().map(|&(_, w)| w).sum::<f64>() + 2.0 * self.self_loop[v]
    }
}

/// Runs Louvain on a symmetric graph.
pub fn louvain(graph: &Csr, config: &LouvainConfig) -> LouvainResult {
    let n = graph.num_nodes();
    if n == 0 {
        return LouvainResult {
            community_of: Vec::new(),
            num_communities: 0,
            modularity: 0.0,
            levels: 0,
        };
    }
    let mut wg = WeightedGraph::from_csr(graph);
    // community_of maps original nodes to current-level communities.
    let mut community_of: Vec<u32> = (0..n as u32).collect();
    let mut levels = 0usize;

    for _level in 0..config.max_levels {
        let (level_assign, improved) = local_moving(&wg, config);
        if !improved {
            break;
        }
        levels += 1;
        // Densify level ids so they double as next-level node ids, then
        // compose the mapping for original nodes.
        let (dense_assign, num_comm) = densify(&level_assign);
        for c in community_of.iter_mut() {
            *c = dense_assign[*c as usize];
        }
        wg = aggregate(&wg, &dense_assign, num_comm);
        if wg.num_nodes() <= 1 {
            break;
        }
    }

    // Dense renumber of community ids.
    let (community_of, num_communities) = densify(&community_of);
    let q = super::modularity::modularity(graph, &community_of);
    LouvainResult {
        community_of,
        num_communities,
        modularity: q,
        levels,
    }
}

/// Phase 1: greedy local moving. Returns (assignment over current-level
/// nodes, whether any move happened).
fn local_moving(wg: &WeightedGraph, config: &LouvainConfig) -> (Vec<u32>, bool) {
    let n = wg.num_nodes();
    let two_m = wg.total_weight.max(1.0);
    let mut assign: Vec<u32> = (0..n as u32).collect();
    // Sum of weighted degrees per community.
    let mut sigma_tot: Vec<f64> = (0..n).map(|v| wg.weighted_degree(v)).collect();
    let node_degree: Vec<f64> = (0..n).map(|v| wg.weighted_degree(v)).collect();

    let mut improved_any = false;
    let mut neighbor_weight: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for _sweep in 0..config.max_sweeps {
        let mut moved = false;
        for v in 0..n {
            let current = assign[v];
            neighbor_weight.clear();
            for &(u, w) in &wg.adj[v] {
                *neighbor_weight.entry(assign[u as usize]).or_insert(0.0) += w;
            }
            // Remove v from its community.
            sigma_tot[current as usize] -= node_degree[v];
            let w_current = neighbor_weight.get(&current).copied().unwrap_or(0.0);

            // Gain of joining community c: k_{v,c} - k_v * sigma_c / 2m
            // (constant factors dropped; comparisons are unaffected).
            let mut best = current;
            let mut best_gain = w_current - node_degree[v] * sigma_tot[current as usize] / two_m;
            // Iterate candidate communities in sorted order for determinism.
            let mut candidates: Vec<_> = neighbor_weight.iter().map(|(&c, &w)| (c, w)).collect();
            candidates.sort_unstable_by_key(|a| a.0);
            for (c, w) in candidates {
                if c == current {
                    continue;
                }
                let gain = w - node_degree[v] * sigma_tot[c as usize] / two_m;
                if gain > best_gain + config.min_gain {
                    best_gain = gain;
                    best = c;
                }
            }
            sigma_tot[best as usize] += node_degree[v];
            if best != current {
                assign[v] = best;
                moved = true;
                improved_any = true;
            }
        }
        if !moved {
            break;
        }
    }
    (assign, improved_any)
}

/// Phase 2: collapse communities into super-nodes. `assign` must already be
/// dense over `0..num_comm`.
fn aggregate(wg: &WeightedGraph, assign: &[u32], num_comm: usize) -> WeightedGraph {
    let mut adj_maps: Vec<std::collections::HashMap<u32, f64>> =
        vec![std::collections::HashMap::new(); num_comm];
    let mut self_loop = vec![0.0; num_comm];
    let mut total = 0.0;
    for v in 0..wg.num_nodes() {
        let cv = assign[v];
        self_loop[cv as usize] += wg.self_loop[v];
        total += 2.0 * wg.self_loop[v];
        for &(u, w) in &wg.adj[v] {
            let cu = assign[u as usize];
            total += w;
            if cu == cv {
                // Each intra edge appears twice (symmetric adj); self-loop
                // weight counts each undirected edge once.
                self_loop[cv as usize] += w / 2.0;
            } else {
                *adj_maps[cv as usize].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let adj = adj_maps
        .into_iter()
        .map(|m| {
            let mut list: Vec<_> = m.into_iter().collect();
            list.sort_unstable_by_key(|a| a.0);
            list
        })
        .collect();
    WeightedGraph {
        adj,
        self_loop,
        total_weight: total,
    }
}

/// Renumbers arbitrary ids to dense `0..k`, preserving first-appearance
/// order. Returns the dense assignment and `k`.
fn densify(assign: &[u32]) -> (Vec<u32>, usize) {
    let mut map = std::collections::HashMap::new();
    let mut next = 0u32;
    let dense = assign
        .iter()
        .map(|&c| {
            *map.entry(c).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();
    (dense, next as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{community_graph, CommunityParams};
    use crate::GraphBuilder;

    #[test]
    fn two_cliques_separate() {
        let g = GraphBuilder::new(8)
            .clique(&[0, 1, 2, 3])
            .clique(&[4, 5, 6, 7])
            .undirected_edge(3, 4)
            .build()
            .expect("valid");
        let r = louvain(&g, &LouvainConfig::default());
        assert_eq!(r.num_communities, 2);
        assert_eq!(r.community_of[0], r.community_of[3]);
        assert_eq!(r.community_of[4], r.community_of[7]);
        assert_ne!(r.community_of[0], r.community_of[4]);
        assert!(r.modularity > 0.3, "Q = {}", r.modularity);
    }

    #[test]
    fn recovers_planted_communities_well() {
        let params = CommunityParams {
            num_nodes: 1_500,
            num_edges: 30_000,
            mean_community: 50,
            community_size_cv: 0.2,
            inter_fraction: 0.05,
            shuffle_ids: true,
        };
        let (g, truth) = community_graph(&params, 17).expect("valid");
        let r = louvain(&g, &LouvainConfig::default());
        // Louvain may merge or split relative to ground truth; require a
        // community count in the right ballpark and strong modularity.
        assert!(r.modularity > 0.5, "Q = {}", r.modularity);
        let truth_count = crate::stats::PartitionStats::of(&truth).count;
        assert!(
            r.num_communities >= truth_count / 4 && r.num_communities <= truth_count * 4,
            "found {} communities vs planted {}",
            r.num_communities,
            truth_count
        );
    }

    #[test]
    fn louvain_beats_identity_partition() {
        let params = CommunityParams {
            num_nodes: 600,
            ..Default::default()
        };
        let (g, _) = community_graph(&params, 3).expect("valid");
        let r = louvain(&g, &LouvainConfig::default());
        let identity: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let q_identity = super::super::modularity::modularity(&g, &identity);
        assert!(r.modularity > q_identity);
    }

    #[test]
    fn deterministic() {
        let params = CommunityParams {
            num_nodes: 400,
            ..Default::default()
        };
        let (g, _) = community_graph(&params, 5).expect("valid");
        let a = louvain(&g, &LouvainConfig::default());
        let b = louvain(&g, &LouvainConfig::default());
        assert_eq!(a.community_of, b.community_of);
    }

    #[test]
    fn empty_and_singleton() {
        let r = louvain(&Csr::empty(0), &LouvainConfig::default());
        assert_eq!(r.num_communities, 0);
        let r = louvain(&Csr::empty(1), &LouvainConfig::default());
        assert_eq!(r.num_communities, 1);
        assert_eq!(r.community_of, vec![0]);
    }

    #[test]
    fn community_ids_are_dense() {
        let params = CommunityParams {
            num_nodes: 300,
            ..Default::default()
        };
        let (g, _) = community_graph(&params, 8).expect("valid");
        let r = louvain(&g, &LouvainConfig::default());
        let max = r.community_of.iter().copied().max().unwrap_or(0) as usize;
        assert_eq!(max + 1, r.num_communities);
    }
}
