//! Community detection (Section 6.1, step 1 of node renumbering).
//!
//! The paper identifies "the communities that can maximize the overall
//! modularity of the graph" citing Rabbit Order; we implement the Louvain
//! method, the canonical modularity-maximizing algorithm of that family,
//! in a deterministic single-threaded form (node visit order is fixed, so
//! results are reproducible across runs).

pub mod louvain;
pub mod modularity;

pub use louvain::{louvain, LouvainConfig, LouvainResult};
pub use modularity::modularity;
